//! Quickstart: generate a small historical voter archive, build a
//! labeled test dataset from it and print its headline statistics.
//!
//! Run with:
//! ```sh
//! cargo run --release -p nc-suite --example quickstart
//! ```

use nc_suite::core::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use nc_suite::core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_suite::core::plausibility::PlausibilityScorer;
use nc_suite::core::record::DedupPolicy;
use nc_suite::core::stats;
use nc_suite::votergen::config::GeneratorConfig;

fn main() {
    // 1. Configure a small synthetic archive: 2,000 voters over the
    //    first 12 snapshots of the 2008–2020 calendar.
    let config = GenerationConfig {
        generator: GeneratorConfig {
            seed: 2021,
            initial_population: 2_000,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots: 12,
    };

    // 2. Run the pipeline: simulate, import, dedup, version.
    let outcome = TestDataGenerator::run(config);
    let store = &outcome.store;

    println!("== generation ==");
    println!("rows imported      : {}", store.rows_imported());
    println!("records kept       : {}", store.record_count());
    println!("duplicate clusters : {}", store.cluster_count());
    let row = stats::generation_table_row(store, DedupPolicy::Trimmed.label());
    println!("duplicate pairs    : {}", row.duplicate_pairs);
    println!(
        "avg / max cluster  : {:.2} / {}",
        row.avg_cluster_size, row.max_cluster_size
    );
    println!(
        "removed as dups    : {} rows ({:.1} %)",
        row.removed_records,
        100.0 * row.removed_record_rate
    );

    // 3. Score plausibility (gold-standard soundness) and heterogeneity
    //    (dirtiness) for every cluster.
    let plaus = PlausibilityScorer::new();
    let first_rows: Vec<_> = store
        .cluster_ids()
        .iter()
        .filter_map(|(ncid, _)| store.cluster_rows(ncid).into_iter().next())
        .collect();
    let weights = AttributeWeights::from_rows(Scope::Person, first_rows.iter());
    let het = HeterogeneityScorer::new(weights);

    let mut plaus_dist = stats::ScoreDistribution::new(20);
    let mut het_dist = stats::ScoreDistribution::new(20);
    for (ncid, _) in store.cluster_ids() {
        let rows = store.cluster_rows(&ncid);
        plaus_dist.observe(plaus.cluster(&rows));
        if rows.len() >= 2 {
            het_dist.observe(het.cluster(&rows));
        }
    }

    println!("\n== quality scores ==");
    println!(
        "plausibility  : mean {:.3}, min {:.3}, {:.1} % of clusters at 1.0",
        plaus_dist.mean(),
        plaus_dist.min,
        100.0 * plaus_dist.fraction_at_least(1.0)
    );
    println!(
        "heterogeneity : mean {:.3}, max {:.3} (clusters with >= 2 records)",
        het_dist.mean(),
        het_dist.max
    );
    println!(
        "\nknown-unsound clusters injected by the simulator: {}",
        outcome.unsound_ncids.len()
    );
    println!("published version: {:?}", outcome.versions.current().map(|v| v.number));
}
