//! Privacy-preserving linkage export: carve a labeled test dataset and
//! publish it as keyed CLK encodings instead of plaintext — locally via
//! [`nc_suite::serve::carve::render_encoded_lines`] and over HTTP via
//! `POST /carve … encode=clk`. Then show that the encoded space is
//! still useful: encoded Dice tracks plaintext q-gram Dice, and
//! bit-sampling blocking over record CLKs recovers the gold duplicate
//! pairs without ever seeing a name.
//!
//! Run with:
//! ```sh
//! cargo run --release -p nc-suite --example pprl_export
//! ```

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use nc_suite::core::cluster::ClusterStore;
use nc_suite::core::customize::{customize, CustomizeParams};
use nc_suite::core::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use nc_suite::core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_suite::core::record::DedupPolicy;
use nc_suite::detect::bitsample::BitSampleBlocker;
use nc_suite::detect::dataset::Pair;
use nc_suite::detect::sink::QualitySink;
use nc_suite::pprl::encode::{normalize_into, plaintext_qgram_dice};
use nc_suite::pprl::kernels::dice_bitset;
use nc_suite::pprl::{Bitset, EncodeScratch, EncodingParams, RecordEncoder};
use nc_suite::serve::carve::render_encoded_lines;
use nc_suite::serve::{Server, ServeConfig, ServeSnapshot, ServeState, SnapshotRegistry};
use nc_suite::votergen::config::GeneratorConfig;

fn build_store(seed: u64, population: usize, snapshots: usize) -> ClusterStore {
    TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed,
            initial_population: population,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots,
    })
    .store
}

fn scorer_for(store: &ClusterStore) -> HeterogeneityScorer {
    let firsts: Vec<_> = store
        .cluster_ids()
        .iter()
        .filter_map(|(n, _)| store.cluster_rows(n).into_iter().next())
        .collect();
    HeterogeneityScorer::new(AttributeWeights::from_rows(Scope::Person, firsts.iter()))
}

/// One scripted request, printed the way a `curl` user would see it.
fn transcript(addr: SocketAddr, target: &str) -> String {
    let raw = format!("GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("recv");
    let text = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("http response");
    assert!(head.starts_with("HTTP/1.1 2"), "request {target} failed:\n{head}");

    println!("$ curl -s 'http://{addr}{target}'");
    for line in head.lines() {
        if line.starts_with("HTTP/") || line.starts_with("X-") {
            println!("  {line}");
        }
    }
    for line in body.lines().take(2) {
        let mut shown = line.to_string();
        if shown.len() > 100 {
            shown.truncate(100);
            shown.push('…');
        }
        println!("  {shown}");
    }
    let omitted = body.lines().count().saturating_sub(2);
    if omitted > 0 {
        println!("  … ({omitted} more lines)");
    }
    println!();
    body.to_string()
}

fn main() {
    // 1. Build the archive and carve an NC2-dirtiness dataset from it.
    println!("building the voter archive …");
    let store = build_store(2021, 1_000, 8);
    let scorer = scorer_for(&store);
    let carved = customize(&store, &scorer, &CustomizeParams::nc2(200, 40, 7));
    println!(
        "carved {} records in {} clusters ({} duplicate pairs)\n",
        carved.record_count(),
        carved.clusters.len(),
        carved.duplicate_pairs()
    );

    // 2. Encode the carve under a data-custodian key. Same labels, no
    //    plaintext: each line carries the gold cluster, a keyed NCID
    //    token, the record-level CLK and per-field encodings.
    let encoding = EncodingParams {
        key: 2021,
        ..Default::default()
    };
    let lines = render_encoded_lines(&carved, &encoding);
    println!("encoded export under {}:", encoding.canonical());
    for line in lines.iter().take(2) {
        let mut shown = line.clone();
        if shown.len() > 100 {
            shown.truncate(100);
            shown.push('…');
        }
        println!("  {shown}");
    }
    println!("  … ({} more lines)\n", lines.len().saturating_sub(2));

    // 3. The encoded space preserves similarity: Dice over CLK bits
    //    tracks Dice over plaintext q-gram sets.
    let encoder = RecordEncoder::new(encoding);
    let (mut norm_a, mut norm_b) = (String::new(), String::new());
    normalize_into("SCARBOROUGH", &mut norm_a);
    normalize_into("SCARBOROUGH", &mut norm_b); // identical
    let mut clk_a = Bitset::zero(encoding.bits);
    let mut clk_b = Bitset::zero(encoding.bits);
    encoder.encode_value(0, &norm_a, &mut clk_a);
    encoder.encode_value(0, &norm_b, &mut clk_b);
    assert_eq!(dice_bitset(&clk_a, &clk_b), 1.0);
    normalize_into("SCARBROUGH", &mut norm_b); // one deletion
    clk_b.clear();
    encoder.encode_value(0, &norm_b, &mut clk_b);
    let encoded_sim = dice_bitset(&clk_a, &clk_b);
    let plain_sim = plaintext_qgram_dice(&norm_a, &norm_b, encoding.q as usize);
    println!(
        "encoded Dice({norm_a}, {norm_b}) = {encoded_sim:.3} (plaintext q-gram Dice {plain_sim:.3})"
    );
    assert!((encoded_sim - plain_sim).abs() <= 0.15);

    // 4. Blocking still works without plaintext: bit-sampling buckets
    //    over the record CLKs recover the carve's gold duplicate pairs.
    let mut scratch = EncodeScratch::new();
    let mut clks: Vec<Vec<u64>> = Vec::new();
    let mut gold: HashSet<Pair> = HashSet::new();
    for c in &carved.clusters {
        let first = clks.len();
        for record in &c.records {
            clks.push(encoder.encode_row(record, &mut scratch).record_clk.words().to_vec());
        }
        for a in first..clks.len() {
            for b in (a + 1)..clks.len() {
                gold.insert(Pair::new(a, b));
            }
        }
    }
    // NC2 duplicates are much dirtier than single-typo pairs (whole
    // fields change between registration snapshots), so recall needs a
    // more forgiving geometry than the default: shorter signatures,
    // more bands.
    let blocker = BitSampleBlocker {
        bands: 48,
        band_bits: 8,
        ..Default::default()
    };
    let mut sink = QualitySink::new(&gold);
    blocker.stream_into(&clks, &mut sink);
    println!(
        "encoded blocking: {}/{} gold pairs found (completeness {:.3})\n",
        sink.gold_hits(),
        gold.len(),
        sink.completeness()
    );
    assert!(sink.completeness() >= 0.8, "encoded blocking lost the gold pairs");

    // 5. The same export over HTTP: `encode=clk` on any carve endpoint
    //    switches the response to encoded lines, keyed separately in
    //    the carve cache (plaintext warm entries never answer encoded
    //    requests).
    let registry = SnapshotRegistry::new(ServeSnapshot::capture(&store, 1));
    let state = Arc::new(ServeState::new(Arc::new(registry), ServeConfig::default()));
    let server = Server::spawn(Arc::clone(&state)).expect("bind ephemeral port");
    let addr = server.addr();
    println!("serving on http://{addr}\n");

    transcript(addr, "/datasets/nc2?sample=200&output=40&seed=7&page_size=3");
    let served = transcript(
        addr,
        "/datasets/nc2?sample=200&output=40&seed=7&encode=clk&encode_key=2021",
    );
    assert_eq!(
        served.lines().collect::<Vec<_>>(),
        lines.iter().map(String::as_str).collect::<Vec<_>>(),
        "HTTP export matches the local encode bit for bit"
    );

    server.shutdown();
    println!("server shut down cleanly; encoded export verified bit-identical");
}
