//! Customize three datasets of increasing dirtiness (the paper's
//! NC1/NC2/NC3) and evaluate three duplicate-detection pipelines on
//! them — a miniature of Section 6.5 / Figure 5.
//!
//! Run with:
//! ```sh
//! cargo run --release -p nc-suite --example customize_and_detect
//! ```

use nc_suite::bridge;
use nc_suite::core::customize::{customize, CustomizeParams};
use nc_suite::core::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use nc_suite::core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_suite::core::record::DedupPolicy;
use nc_suite::detect::blocking::SortedNeighborhood;
use nc_suite::detect::eval::{best_f1, linspace, score_candidates, threshold_sweep};
use nc_suite::detect::matcher::{MeasureKind, RecordMatcher};
use nc_suite::votergen::config::GeneratorConfig;

fn main() {
    // Build the full dataset once.
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed: 99,
            initial_population: 2_500,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots: 14,
    });
    let store = &outcome.store;
    println!(
        "full dataset: {} records in {} clusters",
        store.record_count(),
        store.cluster_count()
    );

    // Heterogeneity scorer with entropy weights from one record per
    // cluster (Section 6.3).
    let firsts: Vec<_> = store
        .cluster_ids()
        .iter()
        .filter_map(|(n, _)| store.cluster_rows(n).into_iter().next())
        .collect();
    let weights = AttributeWeights::from_rows(Scope::Person, firsts.iter());
    let scorer = HeterogeneityScorer::new(weights);

    let presets = [
        ("NC1", CustomizeParams::nc1(2_000, 400, 1)),
        ("NC2", CustomizeParams::nc2(2_000, 400, 1)),
        ("NC3", CustomizeParams::nc3(2_000, 400, 1)),
    ];
    let attrs = Scope::Person.attrs();

    for (name, params) in presets {
        let custom = customize(store, &scorer, &params);
        let data = bridge::dataset_from_custom(&custom, attrs);
        println!(
            "\n== {name} (heterogeneity {:.2}..{:.2}) — {} records, {} clusters, {} pairs ==",
            params.h_low,
            params.h_high,
            data.len(),
            custom.clusters.len(),
            custom.duplicate_pairs()
        );

        // The paper's blocking: multi-pass SNM over the five most unique
        // attributes, window 20.
        let blocker = SortedNeighborhood::multi_pass(data.top_entropy_attrs(5));
        let entropy_weights = data.entropy_weights();
        let name_group = bridge::name_group_positions(attrs);
        let gold = data.gold_pairs();

        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}",
            "measure", "best thr", "precision", "recall", "F1"
        );
        for kind in MeasureKind::ALL {
            let matcher = RecordMatcher::with_kind(kind, entropy_weights.clone(), name_group.clone());
            let scored = score_candidates(&data, &blocker, &matcher);
            let sweep = threshold_sweep(&scored, &gold, &linspace(0.3, 0.95, 40));
            if let Some(best) = best_f1(&sweep) {
                println!(
                    "{:<12} {:>10.2} {:>10.3} {:>10.3} {:>10.3}",
                    kind.label(),
                    best.threshold,
                    best.prf.precision,
                    best.prf.recall,
                    best.prf.f1
                );
            }
        }
    }

    println!("\nExpected shape (paper, Figure 5): F1 degrades and the choice of");
    println!("threshold/measure grows more important from NC1 to NC3.");
}
