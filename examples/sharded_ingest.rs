//! Sharded, WAL-backed ingest: partition an archive over N shards,
//! crash, recover, resume and publish — the `nc-shard` quickstart.
//!
//! The engine splits the cluster store into `--shards N` hash
//! partitions, write-ahead logs every row per shard, and commits each
//! snapshot through an atomic manifest. This example ingests half an
//! archive, "crashes" (drops the engine and tears the last WAL lines),
//! reopens to show exact-loss recovery, resumes over the full archive,
//! and proves the final store is identical to an unsharded import —
//! the contract that lets scoring and carving run unchanged on shards.
//!
//! Run with:
//! ```sh
//! cargo run --release -p nc-suite --example sharded_ingest -- --shards 4
//! ```

use nc_suite::core::cluster::ClusterStore;
use nc_suite::core::import::import_snapshot;
use nc_suite::core::record::DedupPolicy;
use nc_suite::core::tsv::{self, ImportOptions};
use nc_suite::docstore::faults::{self, Fault};
use nc_suite::shard::{shard_of, ShardEngine, ShardEngineConfig};
use nc_suite::votergen::config::GeneratorConfig;
use nc_suite::votergen::registry::Registry;
use nc_suite::votergen::snapshot::standard_calendar;

fn main() {
    let mut shards = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shards takes a number")
            }
            other => panic!("unknown flag {other}; usage: sharded_ingest [--shards N]"),
        }
    }
    let base = std::env::temp_dir().join("ncvoter_sharded_ingest_example");
    let _ = std::fs::remove_dir_all(&base);
    let archive = base.join("archive");
    let state = base.join("state");

    // 1. Publish six snapshots as TSV files, and build the unsharded
    //    reference store the sharded result must match exactly.
    let mut registry = Registry::new(GeneratorConfig {
        seed: 42,
        initial_population: 600,
        ..Default::default()
    });
    let mut reference = ClusterStore::new();
    for info in standard_calendar().iter().take(6) {
        let snapshot = registry.generate_snapshot(info);
        tsv::write_snapshot(&archive, &snapshot).expect("write snapshot");
        import_snapshot(&mut reference, &snapshot, DedupPolicy::Trimmed, 1);
    }

    // 2. Ingest the first half of the archive through the shard engine:
    //    every row is WAL-logged on its shard before it is applied.
    let config = ShardEngineConfig::new(shards, DedupPolicy::Trimmed, 1);
    let half = base.join("half");
    for path in tsv::archive_files(&archive).expect("list").into_iter().take(3) {
        std::fs::create_dir_all(&half).expect("mkdir");
        std::fs::copy(&path, half.join(path.file_name().unwrap())).expect("copy");
    }
    let mut engine = ShardEngine::open(&state, config).expect("open engine");
    let outcome = engine
        .ingest_archive(&half, &ImportOptions::strict())
        .expect("ingest half");
    println!(
        "partial ingest : {} snapshots over {} shards, {} clusters",
        outcome.stats.len(),
        shards,
        engine.store().cluster_count()
    );
    drop(engine); // "crash"

    // 3. Tear the tail of every shard's log, as a real crash would.
    for shard in 0..shards {
        let dir = state.join(format!("shard-{shard}"));
        let mut segments: Vec<_> = std::fs::read_dir(&dir)
            .expect("read shard dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        segments.sort();
        let last = segments.last().expect("segment");
        faults::inject(last, &Fault::AppendPartial(b"TORN-MID-ROW".to_vec())).expect("tear");
    }

    // 4. Reopen: recovery truncates the torn tails with exact loss
    //    accounting and replays every committed snapshot.
    let mut engine = ShardEngine::open(&state, config).expect("recover");
    let recovery = engine.recovery();
    println!(
        "recovery       : {} snapshots replayed, {} torn tails, {} bytes dropped",
        recovery.snapshots_applied, recovery.torn_tails, recovery.bytes_discarded
    );

    // 5. Resume over the full archive — committed snapshots are skipped.
    let resumed = engine
        .ingest_archive(&archive, &ImportOptions::strict())
        .expect("resume");
    println!(
        "resumed ingest : {} snapshots skipped, {} ingested",
        resumed.resumed,
        resumed.stats.len()
    );

    // 6. The sharded store is identical to the unsharded import: same
    //    clusters, same founding order, same rows.
    let published = engine.publish(1);
    let plain: Vec<(String, Vec<_>)> = reference
        .cluster_ids()
        .into_iter()
        .map(|(ncid, _)| {
            let rows = reference.cluster_rows(&ncid);
            (ncid, rows)
        })
        .collect();
    assert_eq!(published.clusters(), &plain[..], "sharded == unsharded");
    let sample = &plain[0].0;
    println!(
        "published      : {} clusters, {} records — identical to the \
         unsharded store (cluster {} lives on shard {})",
        published.cluster_count(),
        published.record_count(),
        sample,
        shard_of(sample, shards)
    );

    std::fs::remove_dir_all(&base).ok();
}
