//! Build a test dataset end to end, compare all four dedup policies
//! (the paper's Table 2), publish incremental versions and persist the
//! cluster store to disk.
//!
//! Run with:
//! ```sh
//! cargo run --release -p nc-suite --example build_test_dataset [population] [snapshots]
//! ```

use std::collections::HashSet;

use nc_suite::core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_suite::core::record::DedupPolicy;
use nc_suite::core::stats;
use nc_suite::docstore::persist;
use nc_suite::votergen::config::GeneratorConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let population: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_500);
    let snapshots: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    // --- Table 2: one run per dedup policy over the same archive. ---
    println!("== dedup policies (population {population}, {snapshots} snapshots) ==");
    println!(
        "{:<12} {:>9} {:>10} {:>8} {:>6} {:>10} {:>8}",
        "policy", "records", "dup pairs", "avg", "max", "removed", "rate"
    );
    for policy in DedupPolicy::ALL {
        let outcome = TestDataGenerator::run(GenerationConfig {
            generator: GeneratorConfig {
                seed: 7,
                initial_population: population,
                ..Default::default()
            },
            policy,
            snapshots,
        });
        let row = stats::generation_table_row(&outcome.store, policy.label());
        println!(
            "{:<12} {:>9} {:>10} {:>8.2} {:>6} {:>10} {:>7.1}%",
            row.policy,
            row.records,
            row.duplicate_pairs,
            row.avg_cluster_size,
            row.max_cluster_size,
            row.removed_records,
            100.0 * row.removed_record_rate
        );
    }

    // --- Incremental build with per-snapshot versions (Figure 2). ---
    let outcome = TestDataGenerator::run_incremental(GenerationConfig {
        generator: GeneratorConfig {
            seed: 7,
            initial_population: population,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots,
    });

    println!("\n== version history ==");
    for v in outcome.versions.history() {
        println!(
            "version {:>2}: {:>8} records, {:>7} clusters (snapshots: {})",
            v.number,
            v.records_total,
            v.clusters_total,
            v.snapshots.join(", ")
        );
    }

    // Reconstruct an old version and restrict to a snapshot subset.
    let v1 = outcome.versions.reconstruct(&outcome.store, 1);
    let v1_records: usize = v1.iter().map(|(_, r)| r.len()).sum();
    println!("\nreconstructed version 1: {v1_records} records in {} clusters", v1.len());

    if let Some(first) = outcome.imports.first() {
        let only: HashSet<String> = [first.date.clone()].into();
        let sub = nc_suite::core::version::VersionManager::restrict_to_snapshots(
            &outcome.store,
            &only,
        );
        let n: usize = sub.iter().map(|(_, r)| r.len()).sum();
        println!("records contained in snapshot {}: {n}", first.date);
    }

    // --- Persist the cluster documents to disk. ---
    let dir = std::env::temp_dir().join("ncvoter_testdata_example");
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join("clusters.jsonl");
    persist::save(outcome.store.collection(), &path).expect("persist clusters");
    let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("\npersisted cluster store to {} ({size} bytes)", path.display());

    let reloaded = persist::load("clusters", &path).expect("reload clusters");
    assert_eq!(reloaded.len(), outcome.store.cluster_count());
    println!("reloaded {} cluster documents — round trip OK", reloaded.len());
}
