//! Work with an on-disk TSV archive and repair unsound clusters.
//!
//! This example exercises the two workflow pieces around the core
//! pipeline: (1) the register's native interchange format — snapshots
//! are written as `VR_Snapshot_<date>.tsv` files and re-imported from
//! the archive directory — and (2) Section 3.1.1's remove/repair
//! actions driven by the plausibility scores.
//!
//! Run with:
//! ```sh
//! cargo run --release -p nc-suite --example archive_and_repair
//! ```

use nc_suite::core::cluster::ClusterStore;
use nc_suite::core::plausibility::PlausibilityScorer;
use nc_suite::core::record::DedupPolicy;
use nc_suite::core::repair::{filter_clusters, repair_all};
use nc_suite::core::tsv;
use nc_suite::votergen::config::GeneratorConfig;
use nc_suite::votergen::registry::Registry;
use nc_suite::votergen::snapshot::standard_calendar;

fn main() {
    // Simulate a registry with aggressive NCID reuse so the archive
    // contains unsound clusters worth repairing.
    let mut registry = Registry::new(GeneratorConfig {
        seed: 31,
        initial_population: 800,
        removal_rate: 0.10,
        removed_retention_years: 1,
        ncid_reuse_rate: 0.5,
        ..Default::default()
    });

    // 1. Publish the first ten snapshots as TSV files.
    let dir = std::env::temp_dir().join("ncvoter_archive_example");
    let _ = std::fs::remove_dir_all(&dir);
    let calendar = standard_calendar();
    for info in calendar.iter().take(10) {
        let snapshot = registry.generate_snapshot(info);
        let path = tsv::write_snapshot(&dir, &snapshot).expect("write snapshot");
        println!("wrote {} ({} rows)", path.display(), snapshot.rows.len());
    }

    // 2. Import the archive directory (files are sorted by date, so
    //    belatedly published snapshots would land in the right order).
    let mut store = ClusterStore::new();
    let stats = tsv::import_archive_dir(&mut store, &dir, DedupPolicy::Trimmed, 1)
        .expect("import archive");
    println!(
        "\nimported {} snapshots: {} rows -> {} records in {} clusters",
        stats.len(),
        store.rows_imported(),
        store.record_count(),
        store.cluster_count()
    );

    // 3. Score plausibility and apply the two §3.1.1 actions.
    let scorer = PlausibilityScorer::new();
    let clusters: Vec<(String, Vec<_>)> = store
        .cluster_ids()
        .into_iter()
        .map(|(ncid, _)| {
            let rows = store.cluster_rows(&ncid);
            (ncid, rows)
        })
        .collect();

    let known_unsound = registry.unsound_ncids();
    println!(
        "simulator injected {} reused NCIDs (ground-truth unsound clusters)",
        known_unsound.len()
    );

    // Remove: drop clusters below a plausibility threshold.
    let (kept, removed) = filter_clusters(&scorer, clusters.clone(), 0.8);
    println!("\nremove action : {removed} clusters dropped, {} kept", kept.len());

    // Repair: split incoherent clusters into plausibility components.
    let (repaired, splits) = repair_all(&scorer, clusters, 0.8);
    println!(
        "repair action : {splits} clusters split -> {} clusters total (no record lost)",
        repaired.len()
    );

    // The repaired gold standard keeps every record.
    let records_after: usize = repaired.iter().map(|(_, r)| r.len()).sum();
    assert_eq!(records_after as u64, store.record_count());
    println!("\nrecords before repair: {}", store.record_count());
    println!("records after  repair: {records_after} (identical — repair only relabels)");

    std::fs::remove_dir_all(&dir).ok();
}
