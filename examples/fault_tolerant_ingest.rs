//! Fault-tolerant archive ingest: quarantine, checkpoints, salvage.
//!
//! This example damages an on-disk TSV archive the way real registry
//! exports get damaged — torn lines, garbage sectors — and shows the
//! three robustness layers working together:
//!
//! 1. **Quarantine import**: malformed lines are diverted to a sink
//!    file (with provenance) instead of aborting the whole ingest.
//! 2. **Checkpointed runs**: a manifest + store checkpoint after every
//!    snapshot lets an interrupted import resume where it stopped.
//! 3. **Salvage**: a persisted store truncated by a crash recovers
//!    every intact document and reports exactly what was lost.
//!
//! Run with:
//! ```sh
//! cargo run --release -p nc-suite --example fault_tolerant_ingest
//! ```

use nc_suite::core::checkpoint;
use nc_suite::core::record::DedupPolicy;
use nc_suite::core::tsv::{self, ImportOptions};
use nc_suite::docstore::faults::{self, Fault};
use nc_suite::docstore::persist;
use nc_suite::votergen::config::GeneratorConfig;
use nc_suite::votergen::registry::Registry;
use nc_suite::votergen::snapshot::standard_calendar;

fn main() {
    let base = std::env::temp_dir().join("ncvoter_fault_ingest_example");
    let _ = std::fs::remove_dir_all(&base);
    let archive = base.join("archive");
    let state = base.join("state");
    let sink = base.join("quarantine.tsv");

    // 1. Publish six snapshots as TSV files.
    let mut registry = Registry::new(GeneratorConfig {
        seed: 77,
        initial_population: 500,
        ..Default::default()
    });
    for info in standard_calendar().iter().take(6) {
        let snapshot = registry.generate_snapshot(info);
        tsv::write_snapshot(&archive, &snapshot).expect("write snapshot");
    }

    // 2. Damage the archive: garbage a sector of one file and tear its
    //    final line, as if a transfer had been cut off.
    let files = tsv::archive_files(&archive).expect("list archive");
    let victim = &files[2];
    let text = std::fs::read_to_string(victim).expect("read victim");
    let mut lines: Vec<&str> = text.lines().collect();
    let mid = lines.len() / 2;
    lines[mid] = "#### unreadable sector ####";
    std::fs::write(victim, lines.join("\n") + "\n").expect("rewrite victim");
    faults::inject(victim, &Fault::AppendPartial(b"TORN".to_vec())).expect("tear line");
    println!("damaged {}", victim.display());

    // 3. Strict import fails fast — the historical contract.
    let mut strict_store = nc_suite::core::cluster::ClusterStore::new();
    let err = tsv::import_archive_dir(&mut strict_store, &archive, DedupPolicy::Trimmed, 1)
        .expect_err("strict import must fail");
    println!("strict import  : failed fast as expected ({err})");

    // 4. Quarantine import finishes, diverting the bad lines. The error
    //    budget still caps how much damage we silently tolerate.
    let options = ImportOptions::quarantine().with_sink(&sink).with_budget(100);
    let outcome = checkpoint::import_archive_dir_resumable(
        &archive,
        &state,
        DedupPolicy::Trimmed,
        1,
        &options,
    )
    .expect("quarantine import");
    println!(
        "quarantine run : {} snapshots, {} records, {} lines quarantined",
        outcome.stats.len(),
        outcome.store.record_count(),
        outcome.quarantine.lines_quarantined
    );
    println!("quarantine sink: {}", sink.display());

    // 5. Resume: a second run with the same parameters skips everything
    //    already checkpointed.
    let resumed = checkpoint::import_archive_dir_resumable(
        &archive,
        &state,
        DedupPolicy::Trimmed,
        1,
        &options,
    )
    .expect("resume");
    println!(
        "resumed run    : {} snapshots skipped, {} imported (stats identical: {})",
        resumed.resumed_snapshots,
        resumed.imported_snapshots,
        resumed.stats == outcome.stats
    );

    // 6. Crash-safety: truncate the persisted store mid-file and salvage
    //    the intact prefix.
    let store_file = checkpoint::store_path(&state);
    let bytes = std::fs::read(&store_file).expect("read store");
    std::fs::write(&store_file, &bytes[..bytes.len() * 2 / 3]).expect("truncate store");
    let salvaged = persist::salvage("clusters", &store_file).expect("salvage");
    println!(
        "salvage        : {} documents recovered, {} lines / {} bytes lost ({})",
        salvaged.report.docs_recovered,
        salvaged.report.lines_dropped,
        salvaged.report.bytes_dropped,
        salvaged
            .report
            .detail
            .as_deref()
            .unwrap_or("file intact")
    );

    // 7. And the next resumable run notices the damaged checkpoint and
    //    rebuilds from the archive instead of trusting it.
    let rebuilt = checkpoint::import_archive_dir_resumable(
        &archive,
        &state,
        DedupPolicy::Trimmed,
        1,
        &options,
    )
    .expect("rebuild");
    println!(
        "rebuild        : checkpoint discarded ({}), stats identical: {}",
        rebuilt.checkpoint_discarded.as_deref().unwrap_or("-"),
        rebuilt.stats == outcome.stats
    );
    assert_eq!(rebuilt.stats, outcome.stats);

    std::fs::remove_dir_all(&base).ok();
}
