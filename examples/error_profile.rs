//! Analyze the error-type diversity of the generated NC data and of
//! the Census-like comparator — a miniature of Section 6.4 / Table 4.
//!
//! Run with:
//! ```sh
//! cargo run --release -p nc-suite --example error_profile
//! ```

use nc_suite::analysis::report::{analyze, AnalysisConfig, ErrorProfile};
use nc_suite::analysis::singleton::SingletonConfig;
use nc_suite::bridge;
use nc_suite::core::heterogeneity::Scope;
use nc_suite::core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_suite::core::record::DedupPolicy;
use nc_suite::datasets::census;
use nc_suite::votergen::config::GeneratorConfig;

fn print_profile(title: &str, profile: &ErrorProfile) {
    println!("\n== {title} ({} records, {} duplicate pairs) ==", profile.records, profile.duplicate_pairs);
    println!(
        "{:<18} {:>10} {:>9}  most common attribute",
        "error type", "freq", "perc."
    );
    for stat in &profile.stats {
        println!(
            "{:<18} {:>10} {:>8.2}%  {}",
            stat.error_type.label(),
            stat.count,
            100.0 * stat.percentage,
            stat.most_common_attr.as_deref().unwrap_or("-")
        );
    }
}

fn main() {
    // NC data: generate and project to the person attributes.
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed: 5,
            initial_population: 2_000,
            ..Default::default()
        },
        policy: DedupPolicy::PersonData,
        snapshots: 10,
    });
    let attrs = Scope::Person.attrs();
    let nc_data = bridge::dataset_from_store(&outcome.store, attrs);
    let nc_profile = analyze(&nc_data, &bridge::nc_analysis_config(attrs));
    print_profile("NC (synthetic archive)", &nc_profile);

    // Census comparator.
    let census_data = census::generate(5);
    let census_cfg = AnalysisConfig {
        singleton: SingletonConfig {
            numeric_ranges: vec![],
            alpha_attrs: vec![0, 1, 2],
        },
        confusable_pairs: vec![(0, 1), (1, 2), (0, 2)],
        analyzed_attrs: vec![],
        threads: 0,
    };
    let census_profile = analyze(&census_data, &census_cfg);
    print_profile("Census (comparator)", &census_profile);

    println!("\nExpected shape (paper, Table 4): the comparator shows far higher");
    println!("error *percentages*, the NC data far higher absolute counts and");
    println!("error classes (OCR, multi-attribute) the comparators lack.");
}
