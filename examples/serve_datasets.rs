//! Serve carved test datasets over HTTP: build a small archive, publish
//! two store versions into the carving service, and run a scripted
//! client transcript against it (the same endpoints a `curl` user
//! would hit). Doubles as the CI smoke test for `nc-serve`.
//!
//! Run with:
//! ```sh
//! cargo run --release -p nc-suite --example serve_datasets
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use nc_suite::core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_suite::core::record::DedupPolicy;
use nc_suite::serve::{Server, ServeConfig, ServeSnapshot, ServeState, SnapshotRegistry};
use nc_suite::votergen::config::GeneratorConfig;

fn build_store(snapshots: usize) -> nc_suite::core::cluster::ClusterStore {
    TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed: 2021,
            initial_population: 1_000,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots,
    })
    .store
}

/// One scripted request: print the request line, send it, print the
/// interesting response headers and the first lines of the body.
fn transcript(addr: SocketAddr, method: &str, target: &str, form: Option<&str>) {
    let raw = match form {
        Some(body) => format!(
            "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
        None => format!("{method} {target} HTTP/1.1\r\nHost: localhost\r\n\r\n"),
    };
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("recv");
    let text = String::from_utf8_lossy(&response);
    let (head, body) = text.split_once("\r\n\r\n").expect("http response");
    assert!(
        head.starts_with("HTTP/1.1 2"),
        "request {target} failed:\n{head}"
    );

    match form {
        Some(body) => println!("$ curl -s -d '{body}' http://{addr}{target}"),
        None if method == "GET" => println!("$ curl -s http://{addr}{target}"),
        None => println!("$ curl -s -X {method} http://{addr}{target}"),
    }
    for line in head.lines() {
        let keep = line.starts_with("HTTP/")
            || line.starts_with("X-")
            || line.starts_with("Content-Type");
        if keep {
            println!("  {line}");
        }
    }
    for line in body.lines().take(3) {
        let mut shown = line.to_string();
        if shown.len() > 100 {
            shown.truncate(100);
            shown.push('…');
        }
        println!("  {shown}");
    }
    let omitted = body.lines().count().saturating_sub(3);
    if omitted > 0 {
        println!("  … ({omitted} more lines)");
    }
    println!();
}

fn main() {
    // 1. Build the archive and publish its first version to the service.
    println!("building the voter archive …\n");
    let store_v1 = build_store(8);
    let registry = SnapshotRegistry::new(ServeSnapshot::capture(&store_v1, 1));
    let state = Arc::new(ServeState::new(Arc::new(registry), ServeConfig::default()));
    let server = Server::spawn(Arc::clone(&state)).expect("bind ephemeral port");
    let addr = server.addr();
    println!("serving on http://{addr}\n");

    // 2. The client transcript.
    transcript(addr, "GET", "/healthz", None);
    transcript(addr, "GET", "/datasets/nc1?sample=400&output=25&seed=7&page_size=5", None);
    // The same carve again: answered from the cache (X-Cache: hit).
    transcript(addr, "GET", "/datasets/nc1?sample=400&output=25&seed=7&page_size=5", None);
    // Explicit bounds via POST, pinned to version 1.
    transcript(
        addr,
        "POST",
        "/carve",
        Some("version=1&h_low=0.2&h_high=0.6&sample=400&output=25&seed=7&page_size=5"),
    );

    // 3. Four more snapshots arrive: publish version 2. Carves keep
    //    working throughout; version 1 stays pinnable.
    println!("publishing version 2 (four more snapshots) …\n");
    let store_v2 = build_store(12);
    state.registry().publish(ServeSnapshot::capture(&store_v2, 2));

    transcript(addr, "GET", "/datasets/nc2?sample=400&output=25&seed=7&page_size=5", None);
    transcript(
        addr,
        "GET",
        "/datasets/nc2?sample=400&output=25&seed=7&page_size=5&version=1",
        None,
    );
    transcript(addr, "GET", "/metrics", None);

    // 4. Graceful shutdown: drain in-flight requests, join the workers.
    server.shutdown();
    let stats = state.engine().cache_stats();
    assert_eq!(state.metrics().requests_total(), 7, "all requests served");
    assert!(stats.hits >= 1, "the repeated carve must hit the cache");
    println!(
        "server shut down cleanly after {} requests ({} cache hits, {} misses)",
        state.metrics().requests_total(),
        stats.hits,
        stats.misses
    );
}
