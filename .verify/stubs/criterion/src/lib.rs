//! Offline stub of `criterion` 0.5: benches compile and smoke-run
//! (each closure executed a handful of times, wall-clock printed); no
//! statistics, reports, or CLI. Real measurements require the real
//! crate on a networked runner.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark manager (stub).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let _ = self;
        BenchmarkGroup {
            name: name.to_string(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Bench a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one("", id, f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Requested sample count (ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Requested measurement time (ignored by the stub).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Bench a function in this group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), f);
        self
    }

    /// Bench a function with an input value.
    pub fn bench_with_input<I: Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) {
    let mut b = Bencher { iters: 3 };
    let start = Instant::now();
    f(&mut b);
    eprintln!(
        "stub-bench {group}/{id}: {:.3} ms ({} iters)",
        start.elapsed().as_secs_f64() * 1e3,
        b.iters
    );
}

/// Per-benchmark timing driver.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Run the routine a fixed small number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            black_box(routine());
        }
    }
}

/// Benchmark identifier combining a name and a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Collect benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point calling every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
