//! Offline stub of `crossbeam` 0.8 over the standard library.
//!
//! Covers the subset the workspace uses: `channel::bounded` (over
//! `std::sync::mpsc::sync_channel`) and `thread::scope`/`Scope::spawn`
//! (over `std::thread::scope`). One semantic difference: a panicking
//! scoped thread aborts the whole scope with a propagated panic rather
//! than surfacing as `Err` from `scope` — callers here always `expect`
//! the result, so behaviour under panic is equivalent in practice.

/// Multi-producer multi-consumer-ish channels (stub: mpsc).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side disconnected.
    pub type SendError<T> = mpsc::SendError<T>;
    /// Error returned when the sending side disconnected.
    pub type RecvError = mpsc::RecvError;
    /// Error returned by [`Sender::try_send`]. The std variants
    /// (`Full(T)` / `Disconnected(T)`) match crossbeam's by name, so
    /// callers can pattern-match identically against both crates.
    pub type TrySendError<T> = mpsc::TrySendError<T>;

    impl<T> Sender<T> {
        /// Blocking send.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Nonblocking send: `Err(Full)` when the channel is at
        /// capacity instead of blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Iterate until the channel disconnects.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped threads (stub: `std::thread::scope`).
pub mod thread {
    use std::thread as stdthread;

    /// Scope handle passed to the closure and to spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives the scope so it
        /// can spawn further threads (crossbeam signature).
        pub fn spawn<F, T>(&self, f: F) -> stdthread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned.
    ///
    /// All spawned threads are joined before this returns. Returns
    /// `Ok` always; a panicking child propagates its panic instead of
    /// producing `Err` (see module docs).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}
