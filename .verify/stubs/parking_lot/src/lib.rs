//! Offline stub of `parking_lot` over `std::sync` (poisoning unwrapped).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::RwLock` lookalike backed by `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared lock (never poisons: unwraps).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap()
    }

    /// Exclusive lock (never poisons: unwraps).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap()
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap()
    }
}

/// `parking_lot::Mutex` lookalike backed by `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock (never poisons: unwraps).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap()
    }
}
