//! Offline stub of `serde` 1.x: full trait *surface* for the subset the
//! workspace compiles against, with no working data model. Derived
//! impls and `serde_json` calls type-check but fail at runtime with a
//! "offline stub" error — tests that round-trip JSON are expected to
//! fail under this stub and are tracked in `.verify/README.md`.

use std::fmt::Display;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization half.
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Output side of serialization.
pub trait Serializer: Sized {
    /// Success value.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Serialize a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
}

/// Serialization error plumbing.
pub mod ser {
    use super::Display;

    /// Serialization errors constructible from a message.
    pub trait Error: Sized {
        /// Build an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization half.
pub trait Deserialize<'de>: Sized {
    /// Deserialize from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Owned-deserializable marker (real serde: blanket over lifetimes).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Input side of deserialization.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Drive the visitor from self-describing input.
    fn deserialize_any<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Deserialization visitor plumbing.
pub mod de {
    use super::{Deserialize, Display};
    use std::fmt;

    /// Deserialization errors constructible from a message.
    pub trait Error: Sized {
        /// Build an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Visitor over a self-describing input.
    pub trait Visitor<'de>: Sized {
        /// Value produced by this visitor.
        type Value;

        /// What this visitor expects, for error messages.
        fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

        /// Visit a unit/null.
        fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
            Err(E::custom("unexpected unit"))
        }
        /// Visit a boolean.
        fn visit_bool<E: Error>(self, _v: bool) -> Result<Self::Value, E> {
            Err(E::custom("unexpected bool"))
        }
        /// Visit a signed integer.
        fn visit_i64<E: Error>(self, _v: i64) -> Result<Self::Value, E> {
            Err(E::custom("unexpected i64"))
        }
        /// Visit an unsigned integer.
        fn visit_u64<E: Error>(self, _v: u64) -> Result<Self::Value, E> {
            Err(E::custom("unexpected u64"))
        }
        /// Visit a float.
        fn visit_f64<E: Error>(self, _v: f64) -> Result<Self::Value, E> {
            Err(E::custom("unexpected f64"))
        }
        /// Visit a borrowed string.
        fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
            Err(E::custom("unexpected str"))
        }
        /// Visit an owned string.
        fn visit_string<E: Error>(self, _v: String) -> Result<Self::Value, E> {
            Err(E::custom("unexpected string"))
        }
        /// Visit a sequence.
        fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
            Err(<A::Error as Error>::custom("unexpected seq"))
        }
        /// Visit a map.
        fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
            Err(<A::Error as Error>::custom("unexpected map"))
        }
    }

    /// Access to the elements of a sequence being deserialized.
    pub trait SeqAccess<'de> {
        /// Error type.
        type Error: Error;

        /// Next element, if any.
        fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;

        /// Number of remaining elements, if known.
        fn size_hint(&self) -> Option<usize> {
            None
        }
    }

    /// Access to the entries of a map being deserialized.
    pub trait MapAccess<'de> {
        /// Error type.
        type Error: Error;

        /// Next key/value entry, if any.
        fn next_entry<K, V>(&mut self) -> Result<Option<(K, V)>, Self::Error>
        where
            K: Deserialize<'de>,
            V: Deserialize<'de>;
    }
}

macro_rules! stub_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
                Err(<S::Error as ser::Error>::custom("offline serde stub"))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
                Err(<D::Error as de::Error>::custom("offline serde stub"))
            }
        }
    )*};
}
stub_impls!(
    bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char, String
);

impl Serialize for str {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom("offline serde stub"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom("offline serde stub"))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom("offline serde stub"))
    }
}

impl<K: Serialize, V: Serialize, S2> Serialize for std::collections::HashMap<K, V, S2> {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<'de, K, V, S2> Deserialize<'de> for std::collections::HashMap<K, V, S2>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S2: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom("offline serde stub"))
    }
}
