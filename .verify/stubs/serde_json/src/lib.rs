//! Offline stub of `serde_json`: signatures only; every call fails at
//! runtime with an "offline stub" error.

use std::fmt;

/// JSON error type (stub).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON (stub: always errors).
pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error("to_string unavailable offline".into()))
}

/// Serialize to pretty JSON (stub: always errors).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error("to_string_pretty unavailable offline".into()))
}

/// Deserialize from JSON text (stub: always errors).
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error("from_str unavailable offline".into()))
}
