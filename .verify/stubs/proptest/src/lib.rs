//! Offline miniature of `proptest` 1.x for network-less verification.
//!
//! Unlike the other stubs this one is functional: `proptest!` expands
//! to a deterministic loop of 24 generated cases per test, strategies
//! generate real values (including a small regex-pattern generator for
//! the `"[A-Z]{1,3}"`-style string strategies the workspace uses), and
//! `prop_assert*` maps to `assert*`. No shrinking, no persistence —
//! a failing case panics with the generated inputs in the message.

/// Deterministic per-test seed derived from the test name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h | 1
}

/// SplitMix64 step shared by every strategy.
pub fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Core strategy abstraction.
pub mod strategy {
    use super::next_u64;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Generate one value, advancing `rng`.
        fn gen_value(&self, rng: &mut u64) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values passing `f` (stub: regenerates, panics
        /// after 1000 rejections).
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen_value(&self, rng: &mut u64) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut u64) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.gen_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive candidates");
        }
    }

    /// Constant strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut u64) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed arms (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Fn(&mut u64) -> V>>,
    }

    impl<V> Union<V> {
        /// Build from pre-boxed arms.
        pub fn new(arms: Vec<Box<dyn Fn(&mut u64) -> V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut u64) -> V {
            let i = (next_u64(rng) % self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    /// Box a strategy into a `Union` arm.
    pub fn boxed_arm<S: Strategy + 'static>(s: S) -> Box<dyn Fn(&mut u64) -> S::Value> {
        Box::new(move |rng| s.gen_value(rng))
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut u64) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (next_u64(rng) as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut u64) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty range strategy");
                    let span = (b as i128 - a as i128) as u128 + 1;
                    let v = (next_u64(rng) as u128) % span;
                    (a as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut u64) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (next_u64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    /// String-literal strategies generate from the literal as a regex.
    impl Strategy for &str {
        type Value = String;
        fn gen_value(&self, rng: &mut u64) -> String {
            super::minire::generate(self, rng)
                .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut u64) -> Self::Value {
                    ($(self.$n.gen_value(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

/// Tiny regex-subset *generator*: literals, `.`, `[...]` classes with
/// ranges and escapes, and `{n}` / `{m,n}` / `?` / `*` / `+`
/// quantifiers. Enough for every string strategy in this workspace.
pub mod minire {
    use super::next_u64;

    struct Unit {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn printable() -> Vec<char> {
        (32u8..=126).map(|b| b as char).collect()
    }

    fn parse(pattern: &str) -> Result<Vec<Unit>, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut units = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = match chars[i] {
                '.' => {
                    i += 1;
                    printable()
                }
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            *chars.get(i).ok_or("dangling escape in class")?
                        } else {
                            chars[i]
                        };
                        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) != Some(&']') {
                            let hi = *chars.get(i + 2).ok_or("dangling range in class")?;
                            if lo as u32 > hi as u32 {
                                return Err(format!("bad range {lo}-{hi}"));
                            }
                            for c in lo as u32..=hi as u32 {
                                set.push(char::from_u32(c).unwrap());
                            }
                            i += 3;
                        } else {
                            set.push(lo);
                            i += 1;
                        }
                    }
                    if i >= chars.len() {
                        return Err("unterminated class".into());
                    }
                    i += 1; // ']'
                    set
                }
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).ok_or("dangling escape")?;
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            if set.is_empty() {
                return Err("empty character class".into());
            }
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or("unterminated quantifier")?
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().map_err(|_| "bad quantifier")?,
                            n.trim().parse().map_err(|_| "bad quantifier")?,
                        ),
                        None => {
                            let n: usize = body.trim().parse().map_err(|_| "bad quantifier")?;
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            if min > max {
                return Err("quantifier min > max".into());
            }
            units.push(Unit {
                chars: set,
                min,
                max,
            });
        }
        Ok(units)
    }

    /// Generate one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut u64) -> Result<String, String> {
        let units = parse(pattern)?;
        let mut out = String::new();
        for u in &units {
            let count = u.min + (next_u64(rng) % (u.max - u.min + 1) as u64) as usize;
            for _ in 0..count {
                let i = (next_u64(rng) % u.chars.len() as u64) as usize;
                out.push(u.chars[i]);
            }
        }
        Ok(out)
    }
}

/// `proptest::string`.
pub mod string {
    use super::strategy::Strategy;

    /// A compiled regex string strategy.
    pub struct RegexStrategy(String);

    impl Strategy for RegexStrategy {
        type Value = String;
        fn gen_value(&self, rng: &mut u64) -> String {
            super::minire::generate(&self.0, rng)
                .unwrap_or_else(|e| panic!("bad regex strategy {:?}: {e}", self.0))
        }
    }

    /// Strategy generating strings matching `pattern`.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, String> {
        // Validate eagerly so `.unwrap()` surfaces bad patterns here.
        super::minire::generate(pattern, &mut 1)?;
        Ok(RegexStrategy(pattern.to_string()))
    }
}

/// `proptest::collection`.
pub mod collection {
    use super::next_u64;
    use super::strategy::Strategy;
    use std::collections::BTreeMap;

    /// Size specification for collection strategies.
    pub trait SizeRange {
        /// Pick a size.
        fn pick(&self, rng: &mut u64) -> usize;
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut u64) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (next_u64(rng) % (self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut u64) -> usize {
            *self
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut u64) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        value: V,
        size: R,
    }

    impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn gen_value(&self, rng: &mut u64) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.gen_value(rng), self.value.gen_value(rng)))
                .collect()
        }
    }

    /// Map of up to `size` entries (duplicate keys collapse).
    pub fn btree_map<K: Strategy, V: Strategy, R: SizeRange>(
        key: K,
        value: V,
        size: R,
    ) -> BTreeMapStrategy<K, V, R> {
        BTreeMapStrategy { key, value, size }
    }
}

/// `proptest::char`.
pub mod char {
    use super::next_u64;
    use super::strategy::Strategy;

    /// See [`range`].
    pub struct CharRange(u32, u32);

    impl Strategy for CharRange {
        type Value = char;
        fn gen_value(&self, rng: &mut u64) -> char {
            let span = (self.1 - self.0 + 1) as u64;
            char::from_u32(self.0 + (next_u64(rng) % span) as u32).unwrap()
        }
    }

    /// Chars in `start..=end`.
    pub fn range(start: char, end: char) -> CharRange {
        assert!(start <= end, "empty char range");
        CharRange(start as u32, end as u32)
    }
}

/// `proptest::arbitrary` (subset).
pub mod arbitrary {
    use super::next_u64;
    use super::strategy::Strategy;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Sample one arbitrary value.
        fn arbitrary(rng: &mut u64) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut u64) -> bool {
            next_u64(rng) & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut u64) -> $t {
                    next_u64(rng) as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut u64) -> f64 {
            (next_u64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// See [`any`].
    pub struct AnyStrategy<A>(core::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn gen_value(&self, rng: &mut u64) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(core::marker::PhantomData)
    }
}

/// `proptest::test_runner` (subset).
pub mod test_runner {
    /// Runner configuration (stub: case count ignored, 24 cases run).
    #[derive(Debug, Clone, Default)]
    pub struct ProptestConfig {
        /// Requested number of cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// The macro-and-names prelude.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Entry point: expands each test to a 24-case deterministic loop.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { $($rest)* }
    };
    ($( $(#[$attr:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __pt_rng: u64 = $crate::seed_for(stringify!($name));
                for __pt_case in 0..24u32 {
                    let _ = __pt_case;
                    $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut __pt_rng);)*
                    let __pt_run = move || { $body };
                    __pt_run();
                }
            }
        )+
    };
}

/// `prop_assert!` → `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` → `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` → `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// `prop_assume!`: skip the rest of the current case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// `prop_oneof!`: uniform choice among arms of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed_arm($arm)),+])
    };
}
