//! Offline stub of `rand` 0.8 for network-less verification builds.
//!
//! API-compatible with the subset this workspace uses (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! `seq::SliceRandom::{shuffle, choose}`). The generator is a
//! SplitMix64, so streams differ from the real `StdRng` (ChaCha12) —
//! seed-determinism and distribution-shape properties still hold.

/// Core RNG abstraction: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
    /// Build from OS entropy (stubbed: fixed seed).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E3779B97F4A7C15)
    }
}

/// Values samplable uniformly from an `RngCore`.
pub trait Standard2: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard2 for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard2 for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard2 for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable between two bounds. The single generic
/// `SampleRange` impl below mirrors real rand's blanket impl so
/// integer-literal inference behaves identically.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
        assert!(lo < hi, "empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges samplable uniformly.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (a, b) = self.into_inner();
        assert!(a <= b, "empty range");
        T::sample_between(rng, a, b, true)
    }
}

/// High-level sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard2>(&mut self) -> T {
        T::sample(self)
    }
    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stub standard RNG (SplitMix64; the real one is ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Stub small RNG (same engine as [`StdRng`] here).
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling/choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly choose one element.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}
