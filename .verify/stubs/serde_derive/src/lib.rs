//! Offline stub of `serde_derive`: emits trivial always-`Err` impls so
//! derived types type-check against the stub `serde` traits. No `syn`
//! dependency — the type name is scraped from the raw token stream.

use proc_macro::{TokenStream, TokenTree};

/// Find the identifier following the `struct`/`enum` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            _ => {}
        }
    }
    panic!("serde_derive stub: no struct/enum name found");
}

/// Stub `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize<S: serde::Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {{\n\
                 Err(<S::Error as serde::ser::Error>::custom(\"offline serde stub\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Stub `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {{\n\
                 Err(<D::Error as serde::de::Error>::custom(\"offline serde stub\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
