//! Property-based tests for the document store: path access laws,
//! filter/index agreement and total-order invariants.

use nc_docstore::prelude::*;
use proptest::prelude::*;

fn scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::from),
    ]
}

fn field_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

proptest! {
    /// set_path followed by get_path returns the value just written.
    #[test]
    fn set_then_get_round_trips(
        segs in proptest::collection::vec(field_name(), 1..4),
        value in scalar_value(),
    ) {
        let path = segs.join(".");
        let mut doc = Document::new();
        prop_assert!(doc.set_path(&path, value.clone()));
        let got = doc.get_path(&path).expect("just set");
        prop_assert!(got.query_eq(&value) || (got.is_null() && value.is_null()));
    }

    /// Writing one path never clobbers a sibling path.
    #[test]
    fn sibling_paths_are_independent(
        a in field_name(),
        b in field_name(),
        va in scalar_value(),
        vb in scalar_value(),
    ) {
        prop_assume!(a != b);
        let mut doc = Document::new();
        doc.set_path(&a, va.clone());
        doc.set_path(&b, vb);
        let got = doc.get_path(&a).expect("still present");
        prop_assert!(got.query_eq(&va) || (got.is_null() && va.is_null()));
    }

    /// total_cmp is a total order: antisymmetric and transitive on
    /// random triples.
    #[test]
    fn total_cmp_laws(
        a in scalar_value(),
        b in scalar_value(),
        c in scalar_value(),
    ) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    /// Equal values (by query semantics) hash identically.
    #[test]
    fn query_eq_implies_hash_eq(a in scalar_value(), b in scalar_value()) {
        if a.query_eq(&b) {
            prop_assert_eq!(a.stable_hash(), b.stable_hash());
        }
    }

    /// An indexed equality find returns exactly what a full scan does.
    #[test]
    fn indexed_find_agrees_with_scan(
        values in proptest::collection::vec("[A-D]", 1..40),
        probe in "[A-E]",
    ) {
        let mut indexed = Collection::new("i");
        indexed.create_index("k", IndexKind::Hash);
        let mut plain = Collection::new("p");
        for v in &values {
            indexed.insert(doc! { "k" => v.as_str() });
            plain.insert(doc! { "k" => v.as_str() });
        }
        let filter = Filter::eq("k", probe.as_str());
        let from_index: Vec<i64> =
            indexed.find(&filter).iter().filter_map(|d| d.get_i64("_id")).collect();
        let from_scan: Vec<i64> =
            plain.find(&filter).iter().filter_map(|d| d.get_i64("_id")).collect();
        prop_assert_eq!(from_index, from_scan);
    }

    /// Range finds via an ordered index agree with scans.
    #[test]
    fn range_find_agrees_with_scan(
        values in proptest::collection::vec(-50i64..50, 1..40),
        lo in -60i64..60,
        len in 0i64..40,
    ) {
        let hi = lo + len;
        let mut indexed = Collection::new("i");
        indexed.create_index("k", IndexKind::Ordered);
        let mut plain = Collection::new("p");
        for v in &values {
            indexed.insert(doc! { "k" => *v });
            plain.insert(doc! { "k" => *v });
        }
        let filter = Filter::between("k", lo, hi);
        let a: Vec<i64> = indexed.find(&filter).iter().filter_map(|d| d.get_i64("_id")).collect();
        let b: Vec<i64> = plain.find(&filter).iter().filter_map(|d| d.get_i64("_id")).collect();
        prop_assert_eq!(a, b);
    }

    /// Delete removes exactly the targeted document from finds.
    #[test]
    fn delete_removes_from_results(values in proptest::collection::vec("[A-C]", 2..20)) {
        let mut coll = Collection::new("d");
        coll.create_index("k", IndexKind::Hash);
        let ids: Vec<DocId> = values.iter().map(|v| coll.insert(doc! { "k" => v.as_str() })).collect();
        let victim = ids[0];
        let victim_key = values[0].clone();
        coll.delete(victim);
        let hits = coll.find_ids(&Filter::eq("k", victim_key.as_str()));
        prop_assert!(!hits.contains(&victim));
        prop_assert_eq!(coll.len(), values.len() - 1);
    }

    /// Filter::Not is an involution over random documents.
    #[test]
    fn not_not_is_identity(v in scalar_value(), probe in scalar_value()) {
        let doc = doc! { "k" => v };
        let f = Filter::eq("k", probe);
        let nn = Filter::not(Filter::not(f.clone()));
        prop_assert_eq!(f.matches(&doc), nn.matches(&doc));
    }

    /// Serde round trips preserve documents.
    #[test]
    fn serde_round_trip(
        fields in proptest::collection::btree_map(field_name(), scalar_value(), 0..6),
    ) {
        let mut doc = Document::new();
        for (k, v) in &fields {
            doc.set(k.clone(), v.clone());
        }
        let json = serde_json::to_string(&doc).unwrap();
        let back: Document = serde_json::from_str(&json).unwrap();
        // NaN never appears (range-constrained floats), so equality holds.
        prop_assert_eq!(doc, back);
    }
}
