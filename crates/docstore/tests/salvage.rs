//! Property tests for the salvage path: a persisted collection
//! truncated at *any* byte offset never panics on load and loses at
//! most the final partial document — with the loss reported accurately.

use std::path::PathBuf;

use proptest::prelude::*;

use nc_docstore::persist::{salvage, save, FooterStatus};
use nc_docstore::prelude::*;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nc_salvage_prop_{}_{}", std::process::id(), name))
}

fn build_collection(n: usize) -> Collection {
    let mut c = Collection::new("v");
    for i in 0..n {
        c.insert(doc! {
            "i" => i as i64,
            "name" => format!("VOTER_{i}"),
            "nested" => doc! { "x" => (i as f64) * 0.5 },
        });
    }
    c
}

/// Byte offsets at which each line of `bytes` ends (newline included).
fn line_ends(bytes: &[u8]) -> Vec<usize> {
    bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_loses_at_most_the_final_partial_document(
        n in 1usize..12,
        cut in 0.0f64..1.0,
    ) {
        let c = build_collection(n);
        let path = tmp("trunc");
        save(&c, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        let k = ((cut * full.len() as f64) as usize).min(full.len());
        std::fs::write(&path, &full[..k]).unwrap();

        let s = salvage("v", &path).unwrap();

        // Every data line (all lines except the trailing footer) that
        // survived the cut in full must be recovered; the line the cut
        // landed in is the only one that may be lost.
        let ends = line_ends(&full);
        let data_lines = ends.len() - 1; // the last line is the footer
        prop_assert_eq!(data_lines, n);
        let expected_docs = ends[..data_lines].iter().filter(|&&e| e <= k).count();
        prop_assert_eq!(s.collection.len(), expected_docs);
        prop_assert_eq!(s.report.docs_recovered, expected_docs);

        // Loss accounting: bytes from the last intact line boundary to
        // the (truncated) EOF, and at most one torn line.
        let boundary = ends.iter().copied().filter(|&e| e <= k).max().unwrap_or(0);
        prop_assert_eq!(s.report.bytes_dropped, (k - boundary) as u64);
        prop_assert!(s.report.lines_dropped <= 1);
        prop_assert_eq!(s.report.lines_dropped, usize::from(k > boundary));

        // The footer cannot survive a real truncation.
        if k == full.len() {
            prop_assert_eq!(s.report.footer, FooterStatus::Valid);
            prop_assert!(s.report.is_clean());
        } else {
            prop_assert_eq!(s.report.footer, FooterStatus::Missing);
            prop_assert_eq!(s.report.detail.is_some(), k > boundary);
        }

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn arbitrary_single_byte_corruption_never_panics(
        n in 1usize..8,
        offset in 0usize..4096,
        flip in 0u8..8,
    ) {
        let c = build_collection(n);
        let path = tmp("flip");
        save(&c, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let at = offset % bytes.len();
        bytes[at] ^= 1 << flip;
        std::fs::write(&path, &bytes).unwrap();

        // Salvage must never panic or error on a read-able file, and it
        // can only ever recover documents the file actually held.
        let s = salvage("v", &path).unwrap();
        prop_assert!(s.collection.len() <= n);
        // Whatever strict load says, it must not panic either.
        let _ = nc_docstore::persist::load("v", &path);

        std::fs::remove_file(&path).unwrap();
    }
}
