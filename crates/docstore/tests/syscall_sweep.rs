//! Crash-at-every-K syscall sweep over [`nc_docstore::persist`]'s
//! atomic save protocol.
//!
//! The claim under test: `save` is `tmp + fsync + rename + dir-fsync`,
//! so a crash at *any* mutating syscall leaves the target file either
//! bit-exactly its previous contents or bit-exactly the new ones —
//! never a third state. The sweep first runs a save fault-free through
//! a recording [`FaultVfs`] to learn the syscall trace, then re-runs
//! it with `crash_at(K)` for every `K`, asserting the invariant at
//! each prefix. (Known stub failure offline: serialization needs the
//! real `serde_json`; see `.verify/README.md`.)

use std::fs;
use std::path::PathBuf;

use nc_docstore::collection::Collection;
use nc_docstore::doc;
use nc_docstore::persist::{load, salvage, save_with};
use nc_vfs::fault::{FaultVfs, InjectedFault};
use nc_vfs::StdVfs;

fn tmp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("nc_persist_sweep_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn collection(tag: &str, n: usize) -> Collection {
    let mut c = Collection::new("sweep");
    for i in 0..n {
        c.insert(doc! { "tag" => tag, "i" => i as i64 });
    }
    c
}

#[test]
fn crash_at_every_syscall_recovers_old_or_new_bit_exactly() {
    let dir = tmp_dir("crash");
    let path = dir.join("coll.jsonl");
    let tmp = dir.join("coll.jsonl.tmp");
    let old = collection("old", 3);
    let new = collection("new", 5);

    save_with(&old, &path, &StdVfs).unwrap();
    let old_bytes = fs::read(&path).unwrap();

    // Learn the syscall trace of the overwrite, fault-free.
    let recorder = FaultVfs::recorder();
    save_with(&new, &path, &recorder).unwrap();
    let new_bytes = fs::read(&path).unwrap();
    assert_ne!(old_bytes, new_bytes);
    let total = recorder.ops();
    let trace = recorder.trace();
    let rename_idx = trace
        .iter()
        .find(|r| r.op == "rename")
        .expect("atomic save must rename")
        .index;
    assert!(
        trace.iter().any(|r| r.op == "sync_file") && trace.iter().any(|r| r.op == "sync_dir"),
        "protocol must fsync both file and directory: {trace:?}"
    );

    let (mut saw_old, mut saw_new) = (0u64, 0u64);
    for k in 0..total {
        fs::write(&path, &old_bytes).unwrap();
        let _ = fs::remove_file(&tmp);

        let vfs = FaultVfs::crash_at(k);
        save_with(&new, &path, &vfs).unwrap_err();
        assert!(vfs.crashed(), "crash point {k} must have fired");

        let after = fs::read(&path).unwrap();
        if k <= rename_idx {
            assert_eq!(after, old_bytes, "crash at {k}: rename never ran, old state");
            saw_old += 1;
        } else {
            assert_eq!(after, new_bytes, "crash at {k}: rename committed, new state");
            saw_new += 1;
        }
        // Whichever side of the commit point, the file loads strictly.
        let loaded = load("sweep", &path).unwrap();
        assert!(loaded.len() == old.len() || loaded.len() == new.len());
    }
    assert!(saw_old > 0 && saw_new > 0, "sweep crossed the commit point");
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn single_faults_fail_the_save_but_never_corrupt_the_target() {
    let dir = tmp_dir("single");
    let path = dir.join("coll.jsonl");
    let tmp = dir.join("coll.jsonl.tmp");
    let old = collection("old", 4);
    let new = collection("new", 6);

    save_with(&old, &path, &StdVfs).unwrap();
    let old_bytes = fs::read(&path).unwrap();
    let recorder = FaultVfs::recorder();
    save_with(&new, &path, &recorder).unwrap();
    let new_bytes = fs::read(&path).unwrap();
    let total = recorder.ops();
    let rename_idx = recorder
        .trace()
        .iter()
        .find(|r| r.op == "rename")
        .unwrap()
        .index;

    for fault in [
        InjectedFault::Eio,
        InjectedFault::Enospc,
        InjectedFault::ShortWrite,
        InjectedFault::SyncFail,
        InjectedFault::RenameFail,
    ] {
        for k in 0..total {
            fs::write(&path, &old_bytes).unwrap();
            let _ = fs::remove_file(&tmp);
            let vfs = FaultVfs::recorder().fail_op(k, fault);
            save_with(&new, &path, &vfs).unwrap_err();
            let after = fs::read(&path).unwrap();
            if k <= rename_idx {
                assert_eq!(after, old_bytes, "{fault:?} at {k} must not touch the target");
            } else {
                // Only the post-rename dir-fsync can fail here: the
                // data committed, the error reports the lost durability.
                assert_eq!(after, new_bytes, "{fault:?} at {k}: rename already committed");
            }
            load("sweep", &path).unwrap();
        }
    }
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn torn_tmp_from_short_write_is_salvageable_and_target_untouched() {
    let dir = tmp_dir("torn");
    let path = dir.join("coll.jsonl");
    let tmp = dir.join("coll.jsonl.tmp");
    let old = collection("old", 2);
    let new = collection("new", 64);

    save_with(&old, &path, &StdVfs).unwrap();
    let old_bytes = fs::read(&path).unwrap();

    // Tear the first data write of the tmp file (op 0 is the create).
    let vfs = FaultVfs::recorder().fail_op(1, InjectedFault::ShortWrite);
    let err = save_with(&new, &path, &vfs).unwrap_err();
    assert!(err.to_string().contains("os error 28"), "ENOSPC: {err}");

    assert_eq!(fs::read(&path).unwrap(), old_bytes, "target untouched");
    // The torn tmp is damaged but salvage never panics and recovers
    // only intact prefix lines.
    if tmp.exists() {
        let s = salvage("sweep", &tmp).unwrap();
        assert!(s.collection.len() < 64);
        assert!(s.report.bytes_dropped > 0 || s.report.footer != nc_docstore::persist::FooterStatus::Valid);
    }
    fs::remove_dir_all(dir).unwrap();
}
