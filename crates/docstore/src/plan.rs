//! Access planning: which conjuncts of a [`Filter`](crate::query::Filter)
//! an index can serve, and why the rest fall back to a scan.
//!
//! [`Collection::plan`](crate::collection::Collection::plan) is the public
//! face of the index-selection logic that `find`/`find_ids` have always
//! used internally. It returns both the candidate posting list (exactly
//! what the private fast path computes) and one [`ConjunctDecision`] per
//! leaf conjunct so callers — the nc-query explain endpoint, the
//! `/metrics` indexed-vs-scanned counters — can report *why* an access
//! path was chosen without re-deriving index rules.

use crate::collection::DocId;
use crate::query::Filter;
use crate::value::Value;

/// Why a conjunct could not be answered from an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanReason {
    /// No index exists on the conjunct's path.
    NoIndex,
    /// The path has a hash index, which cannot answer range predicates.
    RangeOnHashIndex,
    /// The predicate shape is not indexable (`ne`, `in`, `exists`,
    /// `contains`, `or`, `not`). The label names the shape.
    UnsupportedPredicate(&'static str),
}

impl ScanReason {
    /// Stable, lowercase label for explain output and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            ScanReason::NoIndex => "no-index",
            ScanReason::RangeOnHashIndex => "range-on-hash-index",
            ScanReason::UnsupportedPredicate(_) => "unsupported-predicate",
        }
    }
}

/// How one leaf conjunct is answered.
#[derive(Debug, Clone, PartialEq)]
pub enum ConjunctAccess {
    /// Served by an equality posting-list lookup.
    IndexedEq {
        /// Length of the posting list the index returned.
        postings: usize,
    },
    /// Served by an ordered-index range lookup (bounds are a superset of
    /// the true predicate; the residual `matches` pass tightens them).
    IndexedRange {
        /// Length of the posting list the index returned.
        postings: usize,
    },
    /// Evaluated only by the residual scan/filter pass.
    Scanned(ScanReason),
}

/// The planner's verdict on one leaf conjunct of a filter.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctDecision {
    /// Human-readable rendering of the conjunct (`age >= 40`).
    pub conjunct: String,
    /// The dotted path the conjunct constrains, when it has one.
    pub path: Option<String>,
    /// The chosen access method.
    pub access: ConjunctAccess,
}

impl ConjunctDecision {
    /// Whether an index serves this conjunct.
    pub fn is_indexed(&self) -> bool {
        !matches!(self.access, ConjunctAccess::Scanned(_))
    }
}

/// The access plan for one filter: candidate ids (when any index
/// applies) plus the per-conjunct decision list.
#[derive(Debug, Clone, Default)]
pub struct AccessPlan {
    /// Candidate document ids from posting-list intersection, ordered by
    /// `_id`; `None` means no index applies and only a full scan will
    /// do. Candidates are a superset of the true matches — callers
    /// always re-filter.
    pub candidates: Option<Vec<DocId>>,
    /// One decision per leaf conjunct, in filter order.
    pub decisions: Vec<ConjunctDecision>,
}

impl AccessPlan {
    /// Number of conjuncts served from an index.
    pub fn indexed_conjuncts(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_indexed()).count()
    }

    /// Number of conjuncts left to the residual scan pass.
    pub fn scanned_conjuncts(&self) -> usize {
        self.decisions.len() - self.indexed_conjuncts()
    }

    /// Whether executing this plan reads every document.
    pub fn is_full_scan(&self) -> bool {
        self.candidates.is_none()
    }

    /// Estimated rows the executor will touch: the candidate-list length
    /// when indexed, or `total` documents on a full scan.
    pub fn estimated_rows(&self, total: usize) -> usize {
        match &self.candidates {
            Some(ids) => ids.len(),
            None => total,
        }
    }
}

/// Compact single-line rendering of a filter leaf for explain output.
pub(crate) fn describe_conjunct(f: &Filter) -> String {
    match f {
        Filter::True => "true".into(),
        Filter::Eq(p, v) => format!("{p} == {}", fmt_value(v)),
        Filter::Ne(p, v) => format!("{p} != {}", fmt_value(v)),
        Filter::Gt(p, v) => format!("{p} > {}", fmt_value(v)),
        Filter::Gte(p, v) => format!("{p} >= {}", fmt_value(v)),
        Filter::Lt(p, v) => format!("{p} < {}", fmt_value(v)),
        Filter::Lte(p, v) => format!("{p} <= {}", fmt_value(v)),
        Filter::In(p, vs) => format!("{p} in [{} values]", vs.len()),
        Filter::Exists(p) => format!("exists({p})"),
        Filter::Contains(p, s) => format!("contains({p}, {})", fmt_value(&Value::Str(s.clone()))),
        Filter::And(fs) => format!("and[{}]", fs.len()),
        Filter::Or(fs) => format!("or[{}]", fs.len()),
        Filter::Not(_) => "not(..)".into(),
    }
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("{s:?}"),
        other => {
            let mut s = String::new();
            other.render_json(&mut s);
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::doc;
    use crate::index::IndexKind;

    fn indexed() -> Collection {
        let mut c = Collection::new("t");
        for i in 0..20_i64 {
            c.insert(doc! {
                "name" => if i % 2 == 0 { "SMITH" } else { "JONES" },
                "age" => 20 + i,
                "county" => format!("C{}", i % 4),
            });
        }
        c.create_index("name", IndexKind::Hash);
        c.create_index("age", IndexKind::Ordered);
        c
    }

    #[test]
    fn plan_reports_indexed_conjuncts() {
        let c = indexed();
        let f = Filter::and(vec![
            Filter::eq("name", "SMITH"),
            Filter::between("age", 22_i64, 27_i64),
        ]);
        let plan = c.plan(&f);
        assert!(!plan.is_full_scan());
        assert_eq!(plan.indexed_conjuncts(), 3, "eq + gte + lte");
        assert_eq!(plan.scanned_conjuncts(), 0);
        // Candidates agree with the private fast path used by find_ids.
        assert!(plan.candidates.is_some());
        let matched = c.find_ids(&f);
        for id in &matched {
            assert!(plan.candidates.as_ref().unwrap().contains(id));
        }
    }

    #[test]
    fn plan_names_scan_reasons() {
        let c = indexed();
        let f = Filter::and(vec![
            Filter::eq("county", "C1"),                   // no index
            Filter::gt("name", "A"),                      // range on hash index
            Filter::Contains("name".into(), "MIT".into()), // unsupported shape
        ]);
        let plan = c.plan(&f);
        assert!(plan.is_full_scan(), "no conjunct is indexable");
        let reasons: Vec<ScanReason> = plan
            .decisions
            .iter()
            .map(|d| match d.access {
                ConjunctAccess::Scanned(r) => r,
                _ => panic!("expected scan decision, got {d:?}"),
            })
            .collect();
        assert_eq!(
            reasons,
            vec![
                ScanReason::NoIndex,
                ScanReason::RangeOnHashIndex,
                ScanReason::UnsupportedPredicate("contains"),
            ]
        );
        assert_eq!(plan.estimated_rows(c.len()), c.len());
    }

    #[test]
    fn plan_treats_disjunctions_as_one_scanned_conjunct() {
        let c = indexed();
        let f = Filter::or(vec![Filter::eq("name", "SMITH"), Filter::eq("name", "JONES")]);
        let plan = c.plan(&f);
        assert!(plan.is_full_scan());
        assert_eq!(plan.decisions.len(), 1);
        assert_eq!(plan.decisions[0].conjunct, "or[2]");
    }

    #[test]
    fn estimated_rows_tracks_candidates() {
        let c = indexed();
        let f = Filter::eq("name", "SMITH");
        let plan = c.plan(&f);
        assert_eq!(plan.estimated_rows(c.len()), 10);
        assert_eq!(plan.candidates.as_ref().unwrap().len(), 10);
    }
}
