//! Declarative filters over documents.

use crate::value::{Document, Value};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A predicate over a [`Document`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Filter {
    /// Always true.
    True,
    /// Path value equals the operand (numeric cross-type equality).
    Eq(String, Value),
    /// Path value differs from the operand (absent fields match).
    Ne(String, Value),
    /// Path value strictly greater than the operand.
    Gt(String, Value),
    /// Path value greater than or equal to the operand.
    Gte(String, Value),
    /// Path value strictly less than the operand.
    Lt(String, Value),
    /// Path value less than or equal to the operand.
    Lte(String, Value),
    /// Path value is a member of the operand list.
    In(String, Vec<Value>),
    /// The path resolves to some value (including `Null`).
    Exists(String),
    /// String value at the path contains the operand as a substring.
    Contains(String, String),
    /// All sub-filters hold.
    And(Vec<Filter>),
    /// At least one sub-filter holds.
    Or(Vec<Filter>),
    /// The sub-filter does not hold.
    Not(Box<Filter>),
}

impl Filter {
    /// `path == value`.
    pub fn eq(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Eq(path.into(), value.into())
    }
    /// `path != value`.
    pub fn ne(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Ne(path.into(), value.into())
    }
    /// `path > value`.
    pub fn gt(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Gt(path.into(), value.into())
    }
    /// `path >= value`.
    pub fn gte(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Gte(path.into(), value.into())
    }
    /// `path < value`.
    pub fn lt(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Lt(path.into(), value.into())
    }
    /// `path <= value`.
    pub fn lte(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Lte(path.into(), value.into())
    }
    /// `value ∈ list`.
    pub fn is_in(path: impl Into<String>, values: Vec<Value>) -> Self {
        Filter::In(path.into(), values)
    }
    /// Conjunction.
    pub fn and(filters: Vec<Filter>) -> Self {
        Filter::And(filters)
    }
    /// Disjunction.
    pub fn or(filters: Vec<Filter>) -> Self {
        Filter::Or(filters)
    }
    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(filter: Filter) -> Self {
        Filter::Not(Box::new(filter))
    }
    /// Numeric/lexicographic range: `lo <= path <= hi`.
    pub fn between(path: &str, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Filter::And(vec![Filter::gte(path, lo), Filter::lte(path, hi)])
    }

    /// Evaluate against a document.
    pub fn matches(&self, doc: &Document) -> bool {
        fn cmp(doc: &Document, path: &str, v: &Value) -> Option<Ordering> {
            doc.get_path(path).map(|x| x.total_cmp(v))
        }
        match self {
            Filter::True => true,
            Filter::Eq(p, v) => cmp(doc, p, v) == Some(Ordering::Equal),
            Filter::Ne(p, v) => cmp(doc, p, v) != Some(Ordering::Equal),
            Filter::Gt(p, v) => cmp(doc, p, v) == Some(Ordering::Greater),
            Filter::Gte(p, v) => matches!(cmp(doc, p, v), Some(Ordering::Greater | Ordering::Equal)),
            Filter::Lt(p, v) => cmp(doc, p, v) == Some(Ordering::Less),
            Filter::Lte(p, v) => matches!(cmp(doc, p, v), Some(Ordering::Less | Ordering::Equal)),
            Filter::In(p, vs) => doc
                .get_path(p)
                .is_some_and(|x| vs.iter().any(|v| x.query_eq(v))),
            Filter::Exists(p) => doc.get_path(p).is_some(),
            Filter::Contains(p, s) => doc.get_str(p).is_some_and(|x| x.contains(s.as_str())),
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
        }
    }

    /// If this filter (or a conjunct of it) pins `path` to a single
    /// equality value, return that value — used for index selection.
    pub fn equality_on(&self, path: &str) -> Option<&Value> {
        match self {
            Filter::Eq(p, v) if p == path => Some(v),
            Filter::And(fs) => fs.iter().find_map(|f| f.equality_on(path)),
            _ => None,
        }
    }

    /// If this filter (or a conjunct) constrains `path` to a closed range
    /// `[lo, hi]` (from `Gte`/`Lte`/`Eq` conjuncts), return the bounds —
    /// used for ordered-index selection.
    pub fn range_on(&self, path: &str) -> Option<(Option<&Value>, Option<&Value>)> {
        fn collect<'a>(
            f: &'a Filter,
            path: &str,
            lo: &mut Option<&'a Value>,
            hi: &mut Option<&'a Value>,
        ) {
            match f {
                Filter::Eq(p, v) if p == path => {
                    *lo = Some(v);
                    *hi = Some(v);
                }
                Filter::Gte(p, v) | Filter::Gt(p, v) if p == path
                    && lo.is_none_or(|cur| v.total_cmp(cur) == Ordering::Greater) => {
                        *lo = Some(v);
                    }
                Filter::Lte(p, v) | Filter::Lt(p, v) if p == path
                    && hi.is_none_or(|cur| v.total_cmp(cur) == Ordering::Less) => {
                        *hi = Some(v);
                    }
                Filter::And(fs) => {
                    for f in fs {
                        collect(f, path, lo, hi);
                    }
                }
                _ => {}
            }
        }
        let mut lo = None;
        let mut hi = None;
        collect(self, path, &mut lo, &mut hi);
        if lo.is_none() && hi.is_none() {
            None
        } else {
            Some((lo, hi))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    fn d() -> Document {
        doc! {
            "name" => "SMITH",
            "age" => 44_i64,
            "tags" => vec!["a", "b"],
            "nested" => doc! { "x" => 1.5 },
        }
    }

    #[test]
    fn eq_ne() {
        assert!(Filter::eq("name", "SMITH").matches(&d()));
        assert!(!Filter::eq("name", "JONES").matches(&d()));
        assert!(Filter::ne("name", "JONES").matches(&d()));
        // Absent field: Eq fails, Ne succeeds.
        assert!(!Filter::eq("absent", 1_i64).matches(&d()));
        assert!(Filter::ne("absent", 1_i64).matches(&d()));
    }

    #[test]
    fn ordering_comparisons() {
        assert!(Filter::gt("age", 40_i64).matches(&d()));
        assert!(!Filter::gt("age", 44_i64).matches(&d()));
        assert!(Filter::gte("age", 44_i64).matches(&d()));
        assert!(Filter::lt("age", 45_i64).matches(&d()));
        assert!(Filter::lte("age", 44_i64).matches(&d()));
        // Cross-type numeric comparison.
        assert!(Filter::gt("nested.x", 1_i64).matches(&d()));
    }

    #[test]
    fn in_exists_contains() {
        assert!(Filter::is_in("age", vec![Value::Int(44), Value::Int(50)]).matches(&d()));
        assert!(!Filter::is_in("age", vec![Value::Int(50)]).matches(&d()));
        assert!(Filter::Exists("nested.x".into()).matches(&d()));
        assert!(!Filter::Exists("nested.y".into()).matches(&d()));
        assert!(Filter::Contains("name".into(), "MIT".into()).matches(&d()));
        assert!(!Filter::Contains("name".into(), "ZZZ".into()).matches(&d()));
    }

    #[test]
    fn boolean_combinators() {
        let f = Filter::and(vec![Filter::eq("name", "SMITH"), Filter::gt("age", 40_i64)]);
        assert!(f.matches(&d()));
        let g = Filter::or(vec![Filter::eq("name", "JONES"), Filter::gt("age", 40_i64)]);
        assert!(g.matches(&d()));
        assert!(!Filter::not(g).matches(&d()));
        assert!(Filter::True.matches(&d()));
        assert!(Filter::and(vec![]).matches(&d()));
        assert!(!Filter::or(vec![]).matches(&d()));
    }

    #[test]
    fn between_is_inclusive() {
        assert!(Filter::between("age", 44_i64, 44_i64).matches(&d()));
        assert!(Filter::between("age", 40_i64, 50_i64).matches(&d()));
        assert!(!Filter::between("age", 45_i64, 50_i64).matches(&d()));
    }

    #[test]
    fn equality_extraction() {
        let f = Filter::and(vec![Filter::eq("name", "SMITH"), Filter::gt("age", 40_i64)]);
        assert_eq!(f.equality_on("name"), Some(&Value::Str("SMITH".into())));
        assert_eq!(f.equality_on("age"), None);
    }

    #[test]
    fn range_extraction() {
        let f = Filter::and(vec![
            Filter::gte("age", 40_i64),
            Filter::lte("age", 50_i64),
            Filter::eq("name", "SMITH"),
        ]);
        let (lo, hi) = f.range_on("age").unwrap();
        assert_eq!(lo, Some(&Value::Int(40)));
        assert_eq!(hi, Some(&Value::Int(50)));
        assert!(f.range_on("zzz").is_none());
    }
}
