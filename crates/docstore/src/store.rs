//! A thread-safe container of named collections.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::collection::Collection;
use crate::persist::{self, PersistError, SalvageReport};

/// A database: a set of named [`Collection`]s behind reader/writer locks.
///
/// Collections are created lazily on first access. Each collection has
/// its own lock so that independent collections can be written in
/// parallel (the paper's update process imports several snapshots
/// concurrently).
#[derive(Debug, Default)]
pub struct DocStore {
    collections: RwLock<HashMap<String, Arc<RwLock<Collection>>>>,
}

impl DocStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (or create) the collection with the given name.
    pub fn collection(&self, name: &str) -> Arc<RwLock<Collection>> {
        if let Some(c) = self.collections.read().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.collections.write();
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(RwLock::new(Collection::new(name)))),
        )
    }

    /// Names of all existing collections, sorted.
    pub fn collection_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.collections.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Drop a collection. Returns `true` if it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        self.collections.write().remove(name).is_some()
    }

    /// Persist every collection into `dir` as `<name>.jsonl`.
    ///
    /// Crash-safe end to end: each file is saved atomically
    /// (temp + fsync + rename), and after the batch of renames the
    /// directory itself is fsynced once more so that none of the
    /// renames can be lost to a crash — `save` syncs the directory per
    /// file, but a directory entry written between two saves could
    /// otherwise still be sitting in a dirty directory block when the
    /// last save returns.
    pub fn save_all(&self, dir: &Path) -> Result<(), PersistError> {
        std::fs::create_dir_all(dir)?;
        for name in self.collection_names() {
            let coll = self.collection(&name);
            let coll = coll.read();
            persist::save(&coll, &dir.join(format!("{name}.jsonl")))?;
        }
        persist::sync_dir(dir)?;
        Ok(())
    }

    /// Load every `*.jsonl` file in `dir` as a collection.
    ///
    /// Loading is strict: a single damaged file fails the whole load.
    /// Use [`DocStore::salvage_all`] to recover what is intact instead.
    pub fn load_all(dir: &Path) -> Result<Self, PersistError> {
        let store = Self::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "jsonl") {
                let name = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("unnamed")
                    .to_owned();
                let coll = persist::load(&name, &path)?;
                store
                    .collections
                    .write()
                    .insert(name, Arc::new(RwLock::new(coll)));
            }
        }
        Ok(store)
    }

    /// Salvage every `*.jsonl` file in `dir`: each collection keeps its
    /// intact prefix, and the per-collection [`SalvageReport`]s say
    /// exactly what (if anything) was dropped. Only failing to read the
    /// directory or a file at all is an error.
    pub fn salvage_all(dir: &Path) -> Result<(Self, Vec<(String, SalvageReport)>), PersistError> {
        let store = Self::new();
        let mut reports = Vec::new();
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        files.sort();
        for path in files {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("unnamed")
                .to_owned();
            let salvage = persist::salvage(&name, &path)?;
            reports.push((name.clone(), salvage.report));
            store
                .collections
                .write()
                .insert(name, Arc::new(RwLock::new(salvage.collection)));
        }
        Ok((store, reports))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;
    use crate::query::Filter;

    #[test]
    fn lazily_creates_collections() {
        let store = DocStore::new();
        assert!(store.collection_names().is_empty());
        store.collection("a").write().insert(doc! { "x" => 1_i64 });
        store.collection("b");
        assert_eq!(store.collection_names(), vec!["a", "b"]);
    }

    #[test]
    fn collection_handles_are_shared() {
        let store = DocStore::new();
        let h1 = store.collection("shared");
        let h2 = store.collection("shared");
        h1.write().insert(doc! { "x" => 1_i64 });
        assert_eq!(h2.read().len(), 1);
    }

    #[test]
    fn drop_collection_works() {
        let store = DocStore::new();
        store.collection("gone");
        assert!(store.drop_collection("gone"));
        assert!(!store.drop_collection("gone"));
    }

    #[test]
    fn concurrent_writes_to_distinct_collections() {
        let store = Arc::new(DocStore::new());
        let mut handles = Vec::new();
        for i in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let coll = store.collection(&format!("c{i}"));
                for j in 0..100_i64 {
                    coll.write().insert(doc! { "j" => j });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4 {
            assert_eq!(store.collection(&format!("c{i}")).read().len(), 100);
        }
    }

    #[test]
    fn save_and_load_all() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("nc_docstore_store_{}", std::process::id()));
        let store = DocStore::new();
        store.collection("x").write().insert(doc! { "v" => "one" });
        store.collection("y").write().insert(doc! { "v" => "two" });
        store.save_all(&dir).unwrap();

        let loaded = DocStore::load_all(&dir).unwrap();
        assert_eq!(loaded.collection_names(), vec!["x", "y"]);
        let y = loaded.collection("y");
        let y = y.read();
        assert!(y.find_one(&Filter::eq("v", "two")).is_some());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn salvage_all_recovers_intact_collections() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("nc_docstore_salvage_{}", std::process::id()));
        let store = DocStore::new();
        store.collection("ok").write().insert(doc! { "v" => "fine" });
        store.collection("hurt").write().insert(doc! { "v" => "gone" });
        store.save_all(&dir).unwrap();

        // Tear the second collection's file mid-line.
        let hurt = dir.join("hurt.jsonl");
        let bytes = std::fs::read(&hurt).unwrap();
        std::fs::write(&hurt, &bytes[..bytes.len() / 2]).unwrap();

        assert!(DocStore::load_all(&dir).is_err(), "strict load must fail");
        let (salvaged, reports) = DocStore::salvage_all(&dir).unwrap();
        assert_eq!(salvaged.collection_names(), vec!["hurt", "ok"]);
        let by_name: HashMap<_, _> = reports.into_iter().collect();
        assert!(by_name["ok"].is_clean());
        assert!(!by_name["hurt"].is_clean());
        assert_eq!(salvaged.collection("ok").read().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
