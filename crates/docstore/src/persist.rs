//! File persistence for collections (JSON-lines snapshots).
//!
//! The format is one JSON document per line; the `_id` field stored in
//! each document is preserved on load, as is the id counter, so ids
//! remain stable across save/load cycles.
//!
//! # Durability
//!
//! [`save`] is crash-safe: the collection is written to a temporary
//! file in the same directory, fsynced, and renamed over the target, so
//! a crash mid-save never tears an existing file — readers observe
//! either the old or the new contents. Every data line carries a
//! CRC-32 suffix (`\t#crc:xxxxxxxx`) and the file ends with a footer
//! record holding the document count and a running checksum, so
//! truncation, torn writes, and bit rot are all detectable.
//!
//! [`load`] is strict: any checksum mismatch, missing footer, or count
//! drift is an error. [`salvage`] is the recovery path: it loads every
//! intact prefix line of a damaged file and reports exactly what was
//! dropped ([`SalvageReport`]). Files written before checksums existed
//! (plain JSON lines) still load through both paths.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use nc_vfs::{StdVfs, Vfs};

use crate::collection::Collection;
use crate::crc32::{crc32, Crc32};
use crate::value::Document;

/// Prefix of the footer line closing a checksummed file.
const FOOTER_PREFIX: &str = "#nc-footer:";

/// Separator between a data line's JSON body and its checksum. JSON
/// escapes raw tabs inside strings, so the last tab on a line always
/// belongs to the suffix.
const CRC_SEP: &str = "\t#crc:";

/// Errors produced by persistence operations.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A line could not be parsed as a document.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// A stored document is missing its `_id`.
    MissingId {
        /// 1-based line number.
        line: usize,
    },
    /// A data line's CRC-32 suffix does not match its contents.
    Checksum {
        /// 1-based line number.
        line: usize,
    },
    /// A checksummed file is missing its footer, or the footer's count
    /// or running checksum disagrees with the data lines (truncated or
    /// torn file).
    Truncated {
        /// Document count promised by the footer, if one was readable.
        expected: Option<u64>,
        /// Intact documents actually present.
        found: u64,
    },
    /// The file structure is invalid (e.g. data after the footer, or an
    /// unreadable footer).
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            PersistError::MissingId { line } => {
                write!(f, "document on line {line} has no _id")
            }
            PersistError::Checksum { line } => {
                write!(f, "checksum mismatch on line {line}")
            }
            PersistError::Truncated { expected, found } => match expected {
                Some(n) => write!(f, "truncated file: footer promises {n} documents, found {found}"),
                None => write!(f, "truncated file: no valid footer after {found} documents"),
            },
            PersistError::Corrupt { line, message } => {
                write!(f, "corrupt file at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// The footer record closing every file written by [`save`].
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct Footer {
    /// Number of data lines in the file.
    count: u64,
    /// Running CRC-32 (hex) over every data line's JSON body + `\n`.
    crc: String,
}

/// Fsync a directory, making previously renamed or created entries in
/// it durable. Best-effort on the open: not every filesystem permits
/// opening a directory, and on those the rename durability the caller
/// wants cannot be had anyway — but an fsync that *was* issued and
/// failed is a real error and is reported.
pub fn sync_dir(dir: &Path) -> std::io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Append the CRC-32 suffix framing [`save`] uses to one line body:
/// `<body>\t#crc:xxxxxxxx`. The body must not contain a newline. Other
/// log formats (the nc-shard WAL) reuse this framing so one torn-tail
/// recovery discipline covers every file the workspace writes.
pub fn frame_line(body: &str) -> String {
    debug_assert!(!body.contains('\n'), "framed bodies are single lines");
    format!("{body}{CRC_SEP}{:08x}", crc32(body.as_bytes()))
}

/// Recover the body of a line written by [`frame_line`]; `None` when
/// the suffix is missing, malformed, or does not match the body (a
/// torn or corrupted line).
pub fn read_framed(line: &str) -> Option<&str> {
    let (body, crc) = split_checksum(line)?;
    (crc32(body.as_bytes()) == crc).then_some(body)
}

/// Write a collection to `path` as checksummed JSON lines (ascending
/// `_id`), atomically.
///
/// The data is first written to a sibling temporary file, fsynced, and
/// renamed into place, so an interrupted save never corrupts a
/// previously saved file.
pub fn save(collection: &Collection, path: &Path) -> Result<(), PersistError> {
    save_with(collection, path, &StdVfs)
}

/// [`save`], with every mutating syscall issued through `vfs`.
///
/// This is the injectable form the fault sweeps drive: a
/// [`nc_vfs::FaultVfs`] crashed at any operation K must leave `path`
/// loading as either its previous contents or the new ones — the
/// atomic tmp + fsync + rename protocol guarantees there is no third
/// state, and `crates/docstore/tests/syscall_sweep.rs` proves it for
/// every K.
pub fn save_with(collection: &Collection, path: &Path, vfs: &dyn Vfs) -> Result<(), PersistError> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("collection.jsonl");
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    let mut w = BufWriter::new(vfs.create(&tmp)?);
    let mut running = Crc32::new();
    let mut count: u64 = 0;
    for (_, doc) in collection.iter_ordered() {
        let json = serde_json::to_string(doc)
            .map_err(|e| PersistError::Parse { line: 0, message: e.to_string() })?;
        running.update(json.as_bytes());
        running.update(b"\n");
        let line_crc = crc32(json.as_bytes());
        w.write_all(json.as_bytes())?;
        writeln!(w, "{CRC_SEP}{line_crc:08x}")?;
        count += 1;
    }
    let footer = Footer {
        count,
        crc: format!("{:08x}", running.finalize()),
    };
    let footer_json = serde_json::to_string(&footer)
        .map_err(|e| PersistError::Parse { line: 0, message: e.to_string() })?;
    writeln!(w, "{FOOTER_PREFIX}{footer_json}")?;
    w.flush()?;
    let mut file = w.into_inner().map_err(|e| PersistError::Io(e.into_error()))?;
    file.sync_file()?;
    drop(file);
    vfs.rename(&tmp, path)?;
    // Make the rename itself durable.
    if let Some(parent) = path.parent() {
        vfs.sync_dir(parent)?;
    }
    Ok(())
}

/// Split a data line into its JSON body and CRC-32 suffix, if it has one.
fn split_checksum(line: &str) -> Option<(&str, u32)> {
    let idx = line.rfind(CRC_SEP)?;
    let body = &line[..idx];
    let hex = &line[idx + CRC_SEP.len()..];
    if hex.len() != 8 {
        return None;
    }
    u32::from_str_radix(hex, 16).ok().map(|crc| (body, crc))
}

/// Parse one JSON body into `(id, document)`.
fn parse_doc(body: &str, line: usize) -> Result<(u64, Document), PersistError> {
    let doc: Document = serde_json::from_str(body).map_err(|e| PersistError::Parse {
        line,
        message: e.to_string(),
    })?;
    let id = doc
        .get_i64("_id")
        .and_then(|v| u64::try_from(v).ok())
        .ok_or(PersistError::MissingId { line })?;
    Ok((id, doc))
}

/// Rebuild a collection from `(id, doc)` pairs, preserving ids.
fn rebuild(name: &str, mut docs: Vec<(u64, Document)>) -> Collection {
    docs.sort_by_key(|(id, _)| *id);
    // Rebuild by inserting in id order; pad gaps so ids are preserved.
    let mut coll = Collection::new(name);
    let mut next = 0u64;
    for (id, doc) in docs {
        while next < id {
            let filler = coll.insert(Document::new());
            coll.delete(filler);
            next += 1;
        }
        let got = coll.insert(doc);
        debug_assert_eq!(got, id);
        next = id + 1;
    }
    coll
}

/// Load a collection from a JSON-lines file written by [`save`].
///
/// Documents are re-inserted preserving their `_id`s; the collection's id
/// counter resumes after the maximum loaded id. Declared indexes must be
/// re-created by the caller (index definitions are not persisted).
///
/// Loading is strict: a checksummed file with any damaged line, a
/// missing footer, or a count/checksum drift fails with the precise
/// error. Use [`salvage`] to recover the intact prefix of a damaged
/// file. Legacy files without checksums load unverified.
pub fn load(name: &str, path: &Path) -> Result<Collection, PersistError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut docs: Vec<(u64, Document)> = Vec::new();
    let mut running = Crc32::new();
    let mut data_count: u64 = 0;
    let mut checksummed = false;
    let mut footer: Option<Footer> = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if footer.is_some() {
            return Err(PersistError::Corrupt {
                line: lineno,
                message: "content after footer".into(),
            });
        }
        if let Some(rest) = line.strip_prefix(FOOTER_PREFIX) {
            let f: Footer = serde_json::from_str(rest).map_err(|e| PersistError::Corrupt {
                line: lineno,
                message: format!("unreadable footer: {e}"),
            })?;
            footer = Some(f);
            checksummed = true;
            continue;
        }
        let body = match split_checksum(&line) {
            Some((body, crc)) => {
                checksummed = true;
                if crc32(body.as_bytes()) != crc {
                    return Err(PersistError::Checksum { line: lineno });
                }
                body
            }
            None => line.as_str(),
        };
        running.update(body.as_bytes());
        running.update(b"\n");
        data_count += 1;
        docs.push(parse_doc(body, lineno)?);
    }
    if checksummed {
        let ok = footer.as_ref().is_some_and(|f| {
            f.count == data_count && f.crc == format!("{:08x}", running.finalize())
        });
        if !ok {
            return Err(PersistError::Truncated {
                expected: footer.map(|f| f.count),
                found: data_count,
            });
        }
    }
    Ok(rebuild(name, docs))
}

/// Integrity of the footer observed by [`salvage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FooterStatus {
    /// Footer present and consistent with the recovered documents: the
    /// file is complete.
    Valid,
    /// No footer reached (truncated file, or a pre-checksum legacy file).
    Missing,
    /// Footer present but inconsistent (count or checksum drift).
    Invalid,
}

/// What [`salvage`] recovered — and, precisely, what it did not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Documents recovered from the intact prefix.
    pub docs_recovered: usize,
    /// Non-empty lines dropped from the first damaged line to EOF
    /// (includes a torn trailing line with no newline).
    pub lines_dropped: usize,
    /// Bytes dropped from the first damaged byte offset to EOF.
    pub bytes_dropped: u64,
    /// Footer integrity.
    pub footer: FooterStatus,
    /// Human-readable description of the first damage encountered.
    pub detail: Option<String>,
}

impl SalvageReport {
    /// Whether the file was fully intact (nothing dropped, footer valid
    /// or legacy-complete).
    pub fn is_clean(&self) -> bool {
        self.lines_dropped == 0 && self.bytes_dropped == 0 && self.footer != FooterStatus::Invalid
    }
}

/// A salvaged collection plus the loss report.
#[derive(Debug)]
pub struct Salvage {
    /// The recovered collection (intact prefix documents).
    pub collection: Collection,
    /// Exactly what was recovered and what was dropped.
    pub report: SalvageReport,
}

/// Recover the intact prefix of a (possibly damaged) collection file.
///
/// Every line up to the first checksum failure, parse failure, torn
/// line, or invalid UTF-8 is loaded; everything from the first damaged
/// byte onward is dropped and accounted for in the [`SalvageReport`].
/// A file truncated at an arbitrary byte offset therefore loses at most
/// the final partial line. Never panics on any input; the only error is
/// failing to read the file at all.
pub fn salvage(name: &str, path: &Path) -> Result<Salvage, PersistError> {
    let bytes = std::fs::read(path)?;
    let mut docs: Vec<(u64, Document)> = Vec::new();
    let mut running = Crc32::new();
    let mut data_count: u64 = 0;
    let mut pos: usize = 0;
    let mut lineno: usize = 0;
    let mut footer_status = FooterStatus::Missing;
    let mut footer_seen = false;
    // (byte offset, reason) of the first damage, if any.
    let mut failure: Option<(usize, String)> = None;

    while pos < bytes.len() {
        let Some(rel) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            lineno += 1;
            failure = Some((pos, format!("line {lineno}: torn trailing line (no newline)")));
            break;
        };
        let line_end = pos + rel;
        lineno += 1;
        let Ok(line) = std::str::from_utf8(&bytes[pos..line_end]) else {
            failure = Some((pos, format!("line {lineno}: invalid utf-8")));
            break;
        };
        if line.trim().is_empty() {
            pos = line_end + 1;
            continue;
        }
        if footer_seen {
            failure = Some((pos, format!("line {lineno}: content after footer")));
            break;
        }
        if let Some(rest) = line.strip_prefix(FOOTER_PREFIX) {
            footer_seen = true;
            footer_status = match serde_json::from_str::<Footer>(rest) {
                Ok(f)
                    if f.count == data_count
                        && f.crc == format!("{:08x}", running.finalize()) =>
                {
                    FooterStatus::Valid
                }
                _ => FooterStatus::Invalid,
            };
            pos = line_end + 1;
            continue;
        }
        let body = match split_checksum(line) {
            Some((body, crc)) => {
                if crc32(body.as_bytes()) != crc {
                    failure = Some((pos, format!("line {lineno}: checksum mismatch")));
                    break;
                }
                body
            }
            None => line,
        };
        match parse_doc(body, lineno) {
            Ok(pair) => {
                running.update(body.as_bytes());
                running.update(b"\n");
                data_count += 1;
                docs.push(pair);
            }
            Err(e) => {
                failure = Some((pos, format!("{e}")));
                break;
            }
        }
        pos = line_end + 1;
    }

    let (lines_dropped, bytes_dropped, detail) = match failure {
        Some((offset, reason)) => {
            let dropped = bytes[offset..]
                .split(|&b| b == b'\n')
                .filter(|chunk| chunk.iter().any(|b| !b.is_ascii_whitespace()))
                .count();
            (dropped, (bytes.len() - offset) as u64, Some(reason))
        }
        None => (0, 0, None),
    };
    Ok(Salvage {
        collection: rebuild(name, docs),
        report: SalvageReport {
            docs_recovered: docs_count(data_count),
            lines_dropped,
            bytes_dropped,
            footer: footer_status,
            detail,
        },
    })
}

/// `u64` data-line count as `usize` (cannot realistically overflow).
fn docs_count(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;
    use crate::query::Filter;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nc_docstore_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn round_trip_preserves_documents_and_ids() {
        let mut c = Collection::new("v");
        c.insert(doc! { "name" => "A", "n" => 1_i64 });
        c.insert(doc! { "name" => "B", "nested" => doc! { "x" => 2.5 } });
        let path = tmp("round_trip");
        save(&c, &path).unwrap();
        let loaded = load("v", &path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded.find_one(&Filter::eq("name", "B")).unwrap().get_f64("nested.x"),
            Some(2.5)
        );
        assert_eq!(
            loaded.find_one(&Filter::eq("name", "A")).unwrap().get_i64("_id"),
            Some(0)
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn round_trip_with_deleted_gaps() {
        let mut c = Collection::new("v");
        c.insert(doc! { "name" => "A" });
        c.insert(doc! { "name" => "B" });
        c.insert(doc! { "name" => "C" });
        c.delete(1);
        let path = tmp("gaps");
        save(&c, &path).unwrap();
        let loaded = load("v", &path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded.find_one(&Filter::eq("name", "C")).unwrap().get_i64("_id"),
            Some(2)
        );
        // New inserts continue after the max id.
        let mut loaded = loaded;
        let id = loaded.insert(doc! { "name" => "D" });
        assert_eq!(id, 3);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load("v", Path::new("/nonexistent/nc_docstore.jsonl")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json\n").unwrap();
        let err = load("v", &path).unwrap_err();
        assert!(matches!(err, PersistError::Parse { line: 1, .. }), "{err}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn load_rejects_missing_id() {
        let path = tmp("noid");
        std::fs::write(&path, "{\"name\":\"A\"}\n").unwrap();
        let err = load("v", &path).unwrap_err();
        assert!(matches!(err, PersistError::MissingId { line: 1 }), "{err}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_file_loads_empty_collection() {
        let path = tmp("empty");
        std::fs::write(&path, "").unwrap();
        let loaded = load("v", &path).unwrap();
        assert!(loaded.is_empty());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn legacy_plain_jsonl_still_loads() {
        let path = tmp("legacy");
        std::fs::write(&path, "{\"_id\":0,\"name\":\"A\"}\n{\"_id\":1,\"name\":\"B\"}\n").unwrap();
        let loaded = load("v", &path).unwrap();
        assert_eq!(loaded.len(), 2);
        let s = salvage("v", &path).unwrap();
        assert_eq!(s.collection.len(), 2);
        assert_eq!(s.report.footer, FooterStatus::Missing);
        assert!(s.report.lines_dropped == 0 && s.report.bytes_dropped == 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn saved_files_carry_checksums_and_footer() {
        let mut c = Collection::new("v");
        c.insert(doc! { "name" => "A" });
        let path = tmp("format");
        save(&c, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(CRC_SEP), "{}", lines[0]);
        assert!(lines[1].starts_with(FOOTER_PREFIX), "{}", lines[1]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn save_is_atomic_no_tmp_left_behind() {
        let mut c = Collection::new("v");
        c.insert(doc! { "k" => 1_i64 });
        let path = tmp("atomic");
        save(&c, &path).unwrap();
        let tmp_path = path.with_file_name(format!(
            "{}.tmp",
            path.file_name().unwrap().to_str().unwrap()
        ));
        assert!(!tmp_path.exists());
        // Overwriting an existing file also goes through the tmp path.
        save(&c, &path).unwrap();
        assert!(!tmp_path.exists());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn strict_load_detects_bit_flip() {
        let mut c = Collection::new("v");
        c.insert(doc! { "name" => "AAAA" });
        c.insert(doc! { "name" => "BBBB" });
        let path = tmp("bitflip");
        save(&c, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside the first line's JSON body.
        let flip_at = bytes.iter().position(|&b| b == b'A').unwrap();
        bytes[flip_at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = load("v", &path).unwrap_err();
        assert!(matches!(err, PersistError::Checksum { line: 1 }), "{err}");
        // Salvage drops the damaged line and everything after it.
        let s = salvage("v", &path).unwrap();
        assert_eq!(s.collection.len(), 0);
        assert_eq!(s.report.lines_dropped, 3);
        assert!(s.report.detail.is_some());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn strict_load_detects_truncation() {
        let mut c = Collection::new("v");
        for i in 0..10_i64 {
            c.insert(doc! { "i" => i });
        }
        let path = tmp("trunc_strict");
        save(&c, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load("v", &path).unwrap_err();
        assert!(
            matches!(err, PersistError::Truncated { .. } | PersistError::Checksum { .. }),
            "{err}"
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn salvage_recovers_prefix_of_truncated_file() {
        let mut c = Collection::new("v");
        for i in 0..10_i64 {
            c.insert(doc! { "i" => i });
        }
        let path = tmp("trunc_salvage");
        save(&c, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut in the middle of a line somewhere past the first few docs.
        std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();
        let s = salvage("v", &path).unwrap();
        assert!(s.collection.len() >= 5, "recovered {}", s.collection.len());
        assert!(s.collection.len() < 10);
        assert_eq!(s.report.footer, FooterStatus::Missing);
        assert!(s.report.bytes_dropped > 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn salvage_of_intact_file_is_clean() {
        let mut c = Collection::new("v");
        c.insert(doc! { "x" => 1_i64 });
        let path = tmp("clean");
        save(&c, &path).unwrap();
        let s = salvage("v", &path).unwrap();
        assert_eq!(s.report.footer, FooterStatus::Valid);
        assert!(s.report.is_clean());
        assert_eq!(s.report.docs_recovered, 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn footer_count_drift_detected() {
        let mut c = Collection::new("v");
        c.insert(doc! { "x" => 1_i64 });
        c.insert(doc! { "y" => 2_i64 });
        let path = tmp("drift");
        save(&c, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Remove the first data line but keep the footer.
        let without_first: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, without_first).unwrap();
        let err = load("v", &path).unwrap_err();
        assert!(matches!(err, PersistError::Truncated { expected: Some(2), found: 1 }), "{err}");
        let s = salvage("v", &path).unwrap();
        assert_eq!(s.report.footer, FooterStatus::Invalid);
        assert_eq!(s.collection.len(), 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn frame_line_round_trips_and_rejects_damage() {
        let framed = frame_line("R\t17\tsome\ttsv\tpayload");
        assert_eq!(read_framed(&framed), Some("R\t17\tsome\ttsv\tpayload"));
        // A framed empty body survives too.
        assert_eq!(read_framed(&frame_line("")), Some(""));
        // Any flipped byte in body or suffix invalidates the line.
        for i in 0..framed.len() {
            let mut bytes = framed.clone().into_bytes();
            bytes[i] ^= 0x01;
            if let Ok(tampered) = String::from_utf8(bytes) {
                assert_eq!(read_framed(&tampered), None, "flip at {i}");
            }
        }
        // Truncations lose the suffix or corrupt it.
        for cut in 0..framed.len() {
            assert_eq!(read_framed(&framed[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn sync_dir_succeeds_on_real_directory() {
        let dir = std::env::temp_dir();
        sync_dir(&dir).unwrap();
        // A nonexistent path is best-effort (open fails → Ok).
        sync_dir(Path::new("/nonexistent/nc_docstore_sync")).unwrap();
    }

    #[test]
    fn salvage_never_panics_on_arbitrary_bytes() {
        let path = tmp("fuzzish");
        for garbage in [
            &b"\x00\xff\xfe"[..],
            b"{\"_id\":0}\nnot json at all",
            b"#nc-footer:{\"count\":5,\"crc\":\"00000000\"}\n",
            b"\n\n\n",
            b"{\"_id\":0}\t#crc:zzzzzzzz\n",
        ] {
            std::fs::write(&path, garbage).unwrap();
            let s = salvage("v", &path).unwrap();
            assert!(s.report.docs_recovered <= 1);
        }
        std::fs::remove_file(path).unwrap();
    }
}
