//! File persistence for collections (JSON-lines snapshots).
//!
//! The format is one JSON document per line; the `_id` field stored in
//! each document is preserved on load, as is the id counter, so ids
//! remain stable across save/load cycles.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::collection::Collection;
use crate::value::Document;

/// Errors produced by persistence operations.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A line could not be parsed as a document.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// A stored document is missing its `_id`.
    MissingId {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            PersistError::MissingId { line } => {
                write!(f, "document on line {line} has no _id")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Write a collection to `path` as JSON lines (ascending `_id`).
pub fn save(collection: &Collection, path: &Path) -> Result<(), PersistError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for (_, doc) in collection.iter_ordered() {
        let json = serde_json::to_string(doc)
            .map_err(|e| PersistError::Parse { line: 0, message: e.to_string() })?;
        w.write_all(json.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Load a collection from a JSON-lines file written by [`save`].
///
/// Documents are re-inserted preserving their `_id`s; the collection's id
/// counter resumes after the maximum loaded id. Declared indexes must be
/// re-created by the caller (index definitions are not persisted).
pub fn load(name: &str, path: &Path) -> Result<Collection, PersistError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut docs: Vec<(u64, Document)> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let doc: Document = serde_json::from_str(&line).map_err(|e| PersistError::Parse {
            line: i + 1,
            message: e.to_string(),
        })?;
        let id = doc
            .get_i64("_id")
            .and_then(|v| u64::try_from(v).ok())
            .ok_or(PersistError::MissingId { line: i + 1 })?;
        docs.push((id, doc));
    }
    docs.sort_by_key(|(id, _)| *id);

    // Rebuild by inserting in id order; pad gaps so ids are preserved.
    let mut coll = Collection::new(name);
    let mut next = 0u64;
    for (id, doc) in docs {
        while next < id {
            let filler = coll.insert(Document::new());
            coll.delete(filler);
            next += 1;
        }
        let got = coll.insert(doc);
        debug_assert_eq!(got, id);
        next = id + 1;
    }
    Ok(coll)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;
    use crate::query::Filter;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nc_docstore_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn round_trip_preserves_documents_and_ids() {
        let mut c = Collection::new("v");
        c.insert(doc! { "name" => "A", "n" => 1_i64 });
        c.insert(doc! { "name" => "B", "nested" => doc! { "x" => 2.5 } });
        let path = tmp("round_trip");
        save(&c, &path).unwrap();
        let loaded = load("v", &path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded.find_one(&Filter::eq("name", "B")).unwrap().get_f64("nested.x"),
            Some(2.5)
        );
        assert_eq!(
            loaded.find_one(&Filter::eq("name", "A")).unwrap().get_i64("_id"),
            Some(0)
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn round_trip_with_deleted_gaps() {
        let mut c = Collection::new("v");
        c.insert(doc! { "name" => "A" });
        c.insert(doc! { "name" => "B" });
        c.insert(doc! { "name" => "C" });
        c.delete(1);
        let path = tmp("gaps");
        save(&c, &path).unwrap();
        let loaded = load("v", &path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded.find_one(&Filter::eq("name", "C")).unwrap().get_i64("_id"),
            Some(2)
        );
        // New inserts continue after the max id.
        let mut loaded = loaded;
        let id = loaded.insert(doc! { "name" => "D" });
        assert_eq!(id, 3);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load("v", Path::new("/nonexistent/nc_docstore.jsonl")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json\n").unwrap();
        let err = load("v", &path).unwrap_err();
        assert!(matches!(err, PersistError::Parse { line: 1, .. }), "{err}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn load_rejects_missing_id() {
        let path = tmp("noid");
        std::fs::write(&path, "{\"name\":\"A\"}\n").unwrap();
        let err = load("v", &path).unwrap_err();
        assert!(matches!(err, PersistError::MissingId { line: 1 }), "{err}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_file_loads_empty_collection() {
        let path = tmp("empty");
        std::fs::write(&path, "").unwrap();
        let loaded = load("v", &path).unwrap();
        assert!(loaded.is_empty());
        std::fs::remove_file(path).unwrap();
    }
}
