//! CRC-32 (IEEE 802.3) checksums for the persistence layer.
//!
//! Persistence lines carry a per-line checksum so that torn writes and
//! bit rot are detected on load instead of silently corrupting
//! collections. The implementation is the standard reflected polynomial
//! `0xEDB88320` with a compile-time lookup table — no external crates.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the checksum value.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello world");
        for byte in 0..11 {
            for bit in 0..8u8 {
                let mut flipped = b"hello world".to_vec();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "byte {byte} bit {bit}");
            }
        }
    }
}
