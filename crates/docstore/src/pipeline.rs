//! A multi-stage aggregation pipeline.
//!
//! Models the MongoDB aggregation-pipeline feature the paper highlights
//! as the user's customization instrument: "multi-stage pipelines can be
//! used to transform documents into an aggregated result … filtering,
//! transformation, grouping and sorting".

use std::collections::HashMap;

use crate::collection::Collection;
use crate::query::Filter;
use crate::value::{Document, Value};

/// Aggregation accumulator used by [`Stage::Group`].
#[derive(Debug, Clone, PartialEq)]
pub enum Accumulator {
    /// Count of documents in the group.
    Count,
    /// Sum of a numeric path.
    Sum(String),
    /// Average of a numeric path.
    Avg(String),
    /// Minimum value at a path.
    Min(String),
    /// Maximum value at a path.
    Max(String),
    /// Collect the values at a path into an array.
    Push(String),
    /// First value encountered (by pipeline order).
    First(String),
}

/// A single pipeline stage.
#[derive(Debug, Clone)]
pub enum Stage {
    /// Keep documents matching the filter.
    Match(Filter),
    /// Keep only the listed (dotted) paths.
    Project(Vec<String>),
    /// Replace each document by one copy per element of the array at
    /// `path`, with the element substituted in place of the array.
    Unwind(String),
    /// Group by the value at `by`; produce one document per group with
    /// `_key` plus one field per named accumulator.
    Group {
        /// Grouping path; documents lacking it group under `Null`.
        by: String,
        /// `(output field, accumulator)` pairs.
        accumulators: Vec<(String, Accumulator)>,
    },
    /// Sort by the value at the path.
    Sort {
        /// Sorting path.
        by: String,
        /// Sort descending instead of ascending.
        descending: bool,
    },
    /// Skip the first `n` documents.
    Skip(usize),
    /// Keep at most `n` documents.
    Limit(usize),
    /// Replace the stream by a single `{ count: n }` document.
    Count,
}

impl Stage {
    /// Apply this stage to an explicit document stream. This is the
    /// same transform [`Pipeline::run_docs`] applies per stage; external
    /// executors (e.g. the carve-query planner) use it to interleave
    /// stages the docstore pipeline does not model, such as sampling,
    /// while keeping stage semantics identical by construction.
    pub fn apply(&self, docs: Vec<Document>) -> Vec<Document> {
        apply_stage(self, docs)
    }
}

/// An executable sequence of stages.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// Create an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a pipeline from an explicit stage list.
    pub fn from_stages(stages: Vec<Stage>) -> Self {
        Pipeline { stages }
    }

    /// Append a [`Stage::Match`].
    pub fn matching(mut self, filter: Filter) -> Self {
        self.stages.push(Stage::Match(filter));
        self
    }

    /// Append a [`Stage::Project`].
    pub fn project(mut self, paths: &[&str]) -> Self {
        self.stages
            .push(Stage::Project(paths.iter().map(|s| (*s).to_owned()).collect()));
        self
    }

    /// Append a [`Stage::Unwind`].
    pub fn unwind(mut self, path: &str) -> Self {
        self.stages.push(Stage::Unwind(path.to_owned()));
        self
    }

    /// Append a [`Stage::Group`].
    pub fn group(mut self, by: &str, accumulators: Vec<(String, Accumulator)>) -> Self {
        self.stages.push(Stage::Group {
            by: by.to_owned(),
            accumulators,
        });
        self
    }

    /// Append a [`Stage::Sort`].
    pub fn sort(mut self, by: &str, descending: bool) -> Self {
        self.stages.push(Stage::Sort {
            by: by.to_owned(),
            descending,
        });
        self
    }

    /// Append a [`Stage::Skip`].
    pub fn skip(mut self, n: usize) -> Self {
        self.stages.push(Stage::Skip(n));
        self
    }

    /// Append a [`Stage::Limit`].
    pub fn limit(mut self, n: usize) -> Self {
        self.stages.push(Stage::Limit(n));
        self
    }

    /// Append a [`Stage::Count`].
    pub fn count(mut self) -> Self {
        self.stages.push(Stage::Count);
        self
    }

    /// Run the pipeline over a collection.
    pub fn run(&self, collection: &Collection) -> Vec<Document> {
        // Push down a leading Match through the collection's indexes.
        let (mut docs, rest): (Vec<Document>, &[Stage]) = match self.stages.split_first() {
            Some((Stage::Match(f), rest)) => {
                (collection.find(f).into_iter().cloned().collect(), rest)
            }
            _ => (
                collection.iter_ordered().map(|(_, d)| d.clone()).collect(),
                &self.stages,
            ),
        };
        for stage in rest {
            docs = apply_stage(stage, docs);
        }
        docs
    }

    /// Run the pipeline over an explicit document stream.
    pub fn run_docs(&self, mut docs: Vec<Document>) -> Vec<Document> {
        for stage in &self.stages {
            docs = apply_stage(stage, docs);
        }
        docs
    }
}

fn apply_stage(stage: &Stage, docs: Vec<Document>) -> Vec<Document> {
    match stage {
        Stage::Match(f) => docs.into_iter().filter(|d| f.matches(d)).collect(),
        Stage::Project(paths) => {
            let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
            docs.iter().map(|d| d.project(&refs)).collect()
        }
        Stage::Unwind(path) => {
            let mut out = Vec::new();
            for doc in docs {
                match doc.get_path(path) {
                    Some(Value::Array(items)) => {
                        for item in items.clone() {
                            let mut copy = doc.clone();
                            copy.set_path(path, item);
                            out.push(copy);
                        }
                    }
                    // Non-arrays pass through unchanged (Mongo semantics).
                    Some(_) => out.push(doc),
                    None => {}
                }
            }
            out
        }
        Stage::Group { by, accumulators } => {
            #[derive(Default)]
            struct GroupState {
                key: Value,
                count: u64,
                sums: HashMap<String, f64>,
                mins: HashMap<String, Value>,
                maxs: HashMap<String, Value>,
                pushes: HashMap<String, Vec<Value>>,
                firsts: HashMap<String, Value>,
                avg_counts: HashMap<String, u64>,
            }
            let mut order: Vec<u64> = Vec::new();
            let mut groups: HashMap<u64, GroupState> = HashMap::new();
            for doc in &docs {
                let key = doc.get_path(by).cloned().unwrap_or(Value::Null);
                let h = key.stable_hash();
                let state = groups.entry(h).or_insert_with(|| {
                    order.push(h);
                    GroupState {
                        key: key.clone(),
                        ..Default::default()
                    }
                });
                state.count += 1;
                for (name, acc) in accumulators {
                    match acc {
                        Accumulator::Count => {}
                        Accumulator::Sum(p) | Accumulator::Avg(p) => {
                            if let Some(x) = doc.get_f64(p) {
                                *state.sums.entry(name.clone()).or_insert(0.0) += x;
                                *state.avg_counts.entry(name.clone()).or_insert(0) += 1;
                            }
                        }
                        Accumulator::Min(p) => {
                            if let Some(v) = doc.get_path(p) {
                                state
                                    .mins
                                    .entry(name.clone())
                                    .and_modify(|cur| {
                                        if v.total_cmp(cur) == std::cmp::Ordering::Less {
                                            *cur = v.clone();
                                        }
                                    })
                                    .or_insert_with(|| v.clone());
                            }
                        }
                        Accumulator::Max(p) => {
                            if let Some(v) = doc.get_path(p) {
                                state
                                    .maxs
                                    .entry(name.clone())
                                    .and_modify(|cur| {
                                        if v.total_cmp(cur) == std::cmp::Ordering::Greater {
                                            *cur = v.clone();
                                        }
                                    })
                                    .or_insert_with(|| v.clone());
                            }
                        }
                        Accumulator::Push(p) => {
                            if let Some(v) = doc.get_path(p) {
                                state.pushes.entry(name.clone()).or_default().push(v.clone());
                            }
                        }
                        Accumulator::First(p) => {
                            if let Some(v) = doc.get_path(p) {
                                state.firsts.entry(name.clone()).or_insert_with(|| v.clone());
                            }
                        }
                    }
                }
            }
            order
                .into_iter()
                .map(|h| {
                    let state = groups.remove(&h).expect("group exists");
                    let mut out = Document::new();
                    out.set("_key", state.key.clone());
                    for (name, acc) in accumulators {
                        let v = match acc {
                            Accumulator::Count => Value::Int(state.count as i64),
                            Accumulator::Sum(_) => {
                                Value::Float(state.sums.get(name).copied().unwrap_or(0.0))
                            }
                            Accumulator::Avg(_) => {
                                let n = state.avg_counts.get(name).copied().unwrap_or(0);
                                if n == 0 {
                                    Value::Null
                                } else {
                                    Value::Float(state.sums.get(name).copied().unwrap_or(0.0) / n as f64)
                                }
                            }
                            Accumulator::Min(_) => {
                                state.mins.get(name).cloned().unwrap_or(Value::Null)
                            }
                            Accumulator::Max(_) => {
                                state.maxs.get(name).cloned().unwrap_or(Value::Null)
                            }
                            Accumulator::Push(_) => {
                                Value::Array(state.pushes.get(name).cloned().unwrap_or_default())
                            }
                            Accumulator::First(_) => {
                                state.firsts.get(name).cloned().unwrap_or(Value::Null)
                            }
                        };
                        out.set(name.clone(), v);
                    }
                    out
                })
                .collect()
        }
        Stage::Sort { by, descending } => {
            let mut docs = docs;
            docs.sort_by(|a, b| {
                let va = a.get_path(by).cloned().unwrap_or(Value::Null);
                let vb = b.get_path(by).cloned().unwrap_or(Value::Null);
                let ord = va.total_cmp(&vb);
                if *descending {
                    ord.reverse()
                } else {
                    ord
                }
            });
            docs
        }
        Stage::Skip(n) => docs.into_iter().skip(*n).collect(),
        Stage::Limit(n) => docs.into_iter().take(*n).collect(),
        Stage::Count => {
            let mut d = Document::new();
            d.set("count", docs.len() as i64);
            vec![d]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    fn coll() -> Collection {
        let mut c = Collection::new("t");
        c.insert(doc! { "county" => "WAKE", "age" => 30_i64, "tags" => vec!["x", "y"] });
        c.insert(doc! { "county" => "WAKE", "age" => 50_i64, "tags" => vec!["z"] });
        c.insert(doc! { "county" => "DURHAM", "age" => 40_i64, "tags" => Vec::<&str>::new() });
        c
    }

    #[test]
    fn match_project() {
        let out = Pipeline::new()
            .matching(Filter::eq("county", "WAKE"))
            .project(&["age"])
            .run(&coll());
        assert_eq!(out.len(), 2);
        assert!(out[0].get_path("county").is_none());
        assert!(out[0].get_i64("age").is_some());
    }

    #[test]
    fn unwind_expands_arrays() {
        let out = Pipeline::new().unwind("tags").run(&coll());
        // 2 + 1 + 0 elements.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get_str("tags"), Some("x"));
        assert_eq!(out[1].get_str("tags"), Some("y"));
        assert_eq!(out[2].get_str("tags"), Some("z"));
    }

    #[test]
    fn group_accumulators() {
        let out = Pipeline::new()
            .group(
                "county",
                vec![
                    ("n".into(), Accumulator::Count),
                    ("total".into(), Accumulator::Sum("age".into())),
                    ("avg".into(), Accumulator::Avg("age".into())),
                    ("young".into(), Accumulator::Min("age".into())),
                    ("old".into(), Accumulator::Max("age".into())),
                    ("ages".into(), Accumulator::Push("age".into())),
                    ("first".into(), Accumulator::First("age".into())),
                ],
            )
            .sort("_key", false)
            .run(&coll());
        assert_eq!(out.len(), 2);
        let wake = out.iter().find(|d| d.get_str("_key") == Some("WAKE")).unwrap();
        assert_eq!(wake.get_i64("n"), Some(2));
        assert_eq!(wake.get_f64("total"), Some(80.0));
        assert_eq!(wake.get_f64("avg"), Some(40.0));
        assert_eq!(wake.get_i64("young"), Some(30));
        assert_eq!(wake.get_i64("old"), Some(50));
        assert_eq!(wake.get_array("ages").unwrap().len(), 2);
        assert_eq!(wake.get_i64("first"), Some(30));
    }

    #[test]
    fn sort_skip_limit() {
        let out = Pipeline::new()
            .sort("age", true)
            .skip(1)
            .limit(1)
            .run(&coll());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get_i64("age"), Some(40));
    }

    #[test]
    fn count_stage() {
        let out = Pipeline::new()
            .matching(Filter::gt("age", 35_i64))
            .count()
            .run(&coll());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get_i64("count"), Some(2));
    }

    #[test]
    fn group_missing_key_is_null() {
        let mut c = Collection::new("t");
        c.insert(doc! { "a" => 1_i64 });
        c.insert(doc! { "b" => 2_i64 });
        let out = Pipeline::new()
            .group("a", vec![("n".into(), Accumulator::Count)])
            .run(&c);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|d| d.get_path("_key") == Some(&Value::Null)));
    }

    #[test]
    fn run_docs_standalone() {
        let docs = vec![doc! { "x" => 2_i64 }, doc! { "x" => 1_i64 }];
        let out = Pipeline::new().sort("x", false).run_docs(docs);
        assert_eq!(out[0].get_i64("x"), Some(1));
    }
}
