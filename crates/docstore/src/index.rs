//! Secondary indexes over dotted paths.
//!
//! Two index kinds are supported: a hash index for equality lookups and
//! an ordered index for range scans. Index keys are the values found at
//! the indexed path; documents lacking the path are not indexed (sparse
//! semantics — essential for the voter data where most of the 90
//! attributes are missing in most records).

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::collection::DocId;
use crate::value::Value;

/// The kind of a secondary index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash index: O(1) equality lookups.
    Hash,
    /// Ordered index: range scans via a B-tree.
    Ordered,
}

/// An ordered key wrapper giving [`Value`] a total order for B-tree use.
#[derive(Debug, Clone)]
pub struct OrdKey(pub Value);

impl PartialEq for OrdKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for OrdKey {}
impl PartialOrd for OrdKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A secondary index instance.
#[derive(Debug)]
pub enum Index {
    /// Hash-based equality index (buckets by stable hash; collisions
    /// resolved by `query_eq`).
    Hash {
        /// stable_hash(value) → (value, posting list) entries.
        buckets: HashMap<u64, Vec<(Value, HashSet<DocId>)>>,
    },
    /// Ordered B-tree index.
    Ordered {
        /// value → posting list, ordered by `total_cmp`.
        tree: BTreeMap<OrdKey, HashSet<DocId>>,
    },
}

impl Index {
    /// Create an empty index of the given kind.
    pub fn new(kind: IndexKind) -> Self {
        match kind {
            IndexKind::Hash => Index::Hash {
                buckets: HashMap::new(),
            },
            IndexKind::Ordered => Index::Ordered {
                tree: BTreeMap::new(),
            },
        }
    }

    /// The index kind.
    pub fn kind(&self) -> IndexKind {
        match self {
            Index::Hash { .. } => IndexKind::Hash,
            Index::Ordered { .. } => IndexKind::Ordered,
        }
    }

    /// Add a (value, doc) posting.
    pub fn insert(&mut self, value: &Value, id: DocId) {
        match self {
            Index::Hash { buckets } => {
                let h = value.stable_hash();
                let bucket = buckets.entry(h).or_default();
                if let Some((_, ids)) = bucket.iter_mut().find(|(v, _)| v.query_eq(value)) {
                    ids.insert(id);
                } else {
                    bucket.push((value.clone(), HashSet::from([id])));
                }
            }
            Index::Ordered { tree } => {
                tree.entry(OrdKey(value.clone())).or_default().insert(id);
            }
        }
    }

    /// Remove a (value, doc) posting.
    pub fn remove(&mut self, value: &Value, id: DocId) {
        match self {
            Index::Hash { buckets } => {
                let h = value.stable_hash();
                if let Some(bucket) = buckets.get_mut(&h) {
                    if let Some((_, ids)) = bucket.iter_mut().find(|(v, _)| v.query_eq(value)) {
                        ids.remove(&id);
                    }
                    bucket.retain(|(_, ids)| !ids.is_empty());
                    if bucket.is_empty() {
                        buckets.remove(&h);
                    }
                }
            }
            Index::Ordered { tree } => {
                let key = OrdKey(value.clone());
                if let Some(ids) = tree.get_mut(&key) {
                    ids.remove(&id);
                    if ids.is_empty() {
                        tree.remove(&key);
                    }
                }
            }
        }
    }

    /// Equality lookup (works for both kinds).
    pub fn lookup_eq(&self, value: &Value) -> Vec<DocId> {
        let mut ids: Vec<DocId> = match self {
            Index::Hash { buckets } => buckets
                .get(&value.stable_hash())
                .into_iter()
                .flatten()
                .filter(|(v, _)| v.query_eq(value))
                .flat_map(|(_, ids)| ids.iter().copied())
                .collect(),
            Index::Ordered { tree } => tree
                .get(&OrdKey(value.clone()))
                .into_iter()
                .flat_map(|ids| ids.iter().copied())
                .collect(),
        };
        ids.sort_unstable();
        ids
    }

    /// Inclusive range lookup; only supported on ordered indexes.
    pub fn lookup_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Option<Vec<DocId>> {
        match self {
            Index::Hash { .. } => None,
            Index::Ordered { tree } => {
                use std::ops::Bound;
                let lo_b = lo.map_or(Bound::Unbounded, |v| Bound::Included(OrdKey(v.clone())));
                let hi_b = hi.map_or(Bound::Unbounded, |v| Bound::Included(OrdKey(v.clone())));
                let mut ids: Vec<DocId> = tree
                    .range((lo_b, hi_b))
                    .flat_map(|(_, ids)| ids.iter().copied())
                    .collect();
                ids.sort_unstable();
                ids
            }
            .into(),
        }
    }

    /// Number of distinct keys in the index.
    pub fn distinct_keys(&self) -> usize {
        match self {
            Index::Hash { buckets } => buckets.values().map(Vec::len).sum(),
            Index::Ordered { tree } => tree.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::Str(s.into())
    }

    #[test]
    fn hash_index_equality() {
        let mut ix = Index::new(IndexKind::Hash);
        ix.insert(&v("SMITH"), 1);
        ix.insert(&v("SMITH"), 2);
        ix.insert(&v("JONES"), 3);
        assert_eq!(ix.lookup_eq(&v("SMITH")), vec![1, 2]);
        assert_eq!(ix.lookup_eq(&v("JONES")), vec![3]);
        assert!(ix.lookup_eq(&v("NOPE")).is_empty());
        assert_eq!(ix.distinct_keys(), 2);
    }

    #[test]
    fn hash_index_removal() {
        let mut ix = Index::new(IndexKind::Hash);
        ix.insert(&v("A"), 1);
        ix.insert(&v("A"), 2);
        ix.remove(&v("A"), 1);
        assert_eq!(ix.lookup_eq(&v("A")), vec![2]);
        ix.remove(&v("A"), 2);
        assert!(ix.lookup_eq(&v("A")).is_empty());
        assert_eq!(ix.distinct_keys(), 0);
    }

    #[test]
    fn ordered_index_range() {
        let mut ix = Index::new(IndexKind::Ordered);
        for (i, age) in [30_i64, 40, 50, 60].iter().enumerate() {
            ix.insert(&Value::Int(*age), i as DocId);
        }
        let ids = ix.lookup_range(Some(&Value::Int(40)), Some(&Value::Int(50))).unwrap();
        assert_eq!(ids, vec![1, 2]);
        let all = ix.lookup_range(None, None).unwrap();
        assert_eq!(all, vec![0, 1, 2, 3]);
        let upper = ix.lookup_range(Some(&Value::Int(55)), None).unwrap();
        assert_eq!(upper, vec![3]);
    }

    #[test]
    fn ordered_index_eq_and_remove() {
        let mut ix = Index::new(IndexKind::Ordered);
        ix.insert(&Value::Int(5), 10);
        ix.insert(&Value::Int(5), 11);
        assert_eq!(ix.lookup_eq(&Value::Int(5)), vec![10, 11]);
        ix.remove(&Value::Int(5), 10);
        assert_eq!(ix.lookup_eq(&Value::Int(5)), vec![11]);
    }

    #[test]
    fn hash_index_refuses_range() {
        let ix = Index::new(IndexKind::Hash);
        assert!(ix.lookup_range(None, None).is_none());
    }

    #[test]
    fn cross_type_numeric_keys_unify() {
        let mut ix = Index::new(IndexKind::Hash);
        ix.insert(&Value::Int(3), 1);
        assert_eq!(ix.lookup_eq(&Value::Float(3.0)), vec![1]);
    }
}
