//! Document collections with CRUD and secondary indexes.

use std::collections::HashMap;

use crate::index::{Index, IndexKind};
use crate::query::Filter;
use crate::value::{Document, Value};

/// Identifier assigned to every stored document (the `_id` field).
pub type DocId = u64;

/// A named collection of documents.
///
/// Documents receive a monotonically increasing `_id` on insert. Indexes
/// declared via [`Collection::create_index`] are maintained on every
/// mutation and used automatically by [`Collection::find`] when a filter
/// pins the indexed path.
#[derive(Debug, Default)]
pub struct Collection {
    name: String,
    docs: HashMap<DocId, Document>,
    next_id: DocId,
    indexes: HashMap<String, Index>,
}

impl Collection {
    /// Create an empty collection.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            docs: HashMap::new(),
            next_id: 0,
            indexes: HashMap::new(),
        }
    }

    /// The collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Insert a document, assigning and returning its `_id`.
    pub fn insert(&mut self, mut doc: Document) -> DocId {
        let id = self.next_id;
        self.next_id += 1;
        doc.set("_id", id as i64);
        for (path, index) in &mut self.indexes {
            if let Some(v) = doc.get_path(path) {
                index.insert(v, id);
            }
        }
        self.docs.insert(id, doc);
        id
    }

    /// Fetch a document by id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.get(&id)
    }

    /// Replace the document with the given id. Returns `false` when the
    /// id is unknown.
    pub fn replace(&mut self, id: DocId, mut doc: Document) -> bool {
        if !self.docs.contains_key(&id) {
            return false;
        }
        doc.set("_id", id as i64);
        let old = self.docs.insert(id, doc).expect("checked above");
        let new = &self.docs[&id];
        for (path, index) in &mut self.indexes {
            let ov = old.get_path(path);
            let nv = new.get_path(path);
            match (ov, nv) {
                (Some(o), Some(n)) if o.query_eq(n) => {}
                (o, n) => {
                    if let Some(o) = o {
                        index.remove(o, id);
                    }
                    if let Some(n) = n {
                        index.insert(n, id);
                    }
                }
            }
        }
        true
    }

    /// Apply a mutation to the document with the given id. Index entries
    /// are kept consistent. Returns `false` when the id is unknown.
    pub fn update<F: FnOnce(&mut Document)>(&mut self, id: DocId, f: F) -> bool {
        let Some(doc) = self.docs.get(&id) else {
            return false;
        };
        let mut updated = doc.clone();
        f(&mut updated);
        self.replace(id, updated)
    }

    /// Delete a document. Returns the removed document.
    pub fn delete(&mut self, id: DocId) -> Option<Document> {
        let doc = self.docs.remove(&id)?;
        for (path, index) in &mut self.indexes {
            if let Some(v) = doc.get_path(path) {
                index.remove(v, id);
            }
        }
        Some(doc)
    }

    /// Declare a secondary index over `path`. Existing documents are
    /// indexed immediately. Re-declaring an existing path rebuilds it with
    /// the new kind.
    pub fn create_index(&mut self, path: impl Into<String>, kind: IndexKind) {
        let path = path.into();
        let mut index = Index::new(kind);
        for (&id, doc) in &self.docs {
            if let Some(v) = doc.get_path(&path) {
                index.insert(v, id);
            }
        }
        self.indexes.insert(path, index);
    }

    /// The paths that currently have indexes.
    pub fn indexed_paths(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.indexes.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Iterate over all documents (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.docs.values()
    }

    /// Iterate over `(id, document)` pairs in ascending id order.
    pub fn iter_ordered(&self) -> impl Iterator<Item = (DocId, &Document)> {
        let mut ids: Vec<DocId> = self.docs.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(move |id| (id, &self.docs[&id]))
    }

    /// Candidate document ids for a filter, using the best applicable
    /// index, or `None` when only a full scan will do.
    fn index_candidates(&self, filter: &Filter) -> Option<Vec<DocId>> {
        // Prefer an equality hit on any indexed path.
        for (path, index) in &self.indexes {
            if let Some(v) = filter.equality_on(path) {
                return Some(index.lookup_eq(v));
            }
        }
        // Fall back to a range on an ordered index.
        for (path, index) in &self.indexes {
            if index.kind() == IndexKind::Ordered {
                if let Some((lo, hi)) = filter.range_on(path) {
                    return index.lookup_range(lo, hi);
                }
            }
        }
        None
    }

    /// Find all documents matching `filter`, ordered by `_id`.
    pub fn find(&self, filter: &Filter) -> Vec<&Document> {
        match self.index_candidates(filter) {
            Some(ids) => ids
                .into_iter()
                .filter_map(|id| self.docs.get(&id))
                .filter(|d| filter.matches(d))
                .collect(),
            None => self
                .iter_ordered()
                .map(|(_, d)| d)
                .filter(|d| filter.matches(d))
                .collect(),
        }
    }

    /// Find matching document ids, ordered ascending.
    pub fn find_ids(&self, filter: &Filter) -> Vec<DocId> {
        match self.index_candidates(filter) {
            Some(ids) => ids
                .into_iter()
                .filter(|id| self.docs.get(id).is_some_and(|d| filter.matches(d)))
                .collect(),
            None => self
                .iter_ordered()
                .filter(|(_, d)| filter.matches(d))
                .map(|(id, _)| id)
                .collect(),
        }
    }

    /// Count matching documents.
    pub fn count(&self, filter: &Filter) -> usize {
        self.find_ids(filter).len()
    }

    /// First matching document, by ascending `_id`.
    pub fn find_one(&self, filter: &Filter) -> Option<&Document> {
        self.find_ids(filter)
            .first()
            .and_then(|id| self.docs.get(id))
    }

    /// Whether a document with an indexed `path == value` exists. This is
    /// the hot call of the dedup import path, so it avoids materializing
    /// posting lists when possible.
    pub fn exists_eq(&self, path: &str, value: &Value) -> bool {
        if let Some(index) = self.indexes.get(path) {
            !index.lookup_eq(value).is_empty()
        } else {
            self.docs
                .values()
                .any(|d| d.get_path(path).is_some_and(|v| v.query_eq(value)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    fn voters() -> Collection {
        let mut c = Collection::new("voters");
        c.insert(doc! { "ncid" => "A1", "name" => "SMITH", "age" => 40_i64 });
        c.insert(doc! { "ncid" => "A2", "name" => "JONES", "age" => 55_i64 });
        c.insert(doc! { "ncid" => "A3", "name" => "SMITH", "age" => 70_i64 });
        c
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let c = voters();
        let ids: Vec<i64> = c
            .iter_ordered()
            .map(|(_, d)| d.get_i64("_id").unwrap())
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn find_without_index_scans() {
        let c = voters();
        let hits = c.find(&Filter::eq("name", "SMITH"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn find_uses_hash_index() {
        let mut c = voters();
        c.create_index("name", IndexKind::Hash);
        let hits = c.find(&Filter::eq("name", "SMITH"));
        assert_eq!(hits.len(), 2);
        assert!(c.exists_eq("name", &Value::Str("JONES".into())));
        assert!(!c.exists_eq("name", &Value::Str("NOPE".into())));
    }

    #[test]
    fn find_uses_ordered_index_for_ranges() {
        let mut c = voters();
        c.create_index("age", IndexKind::Ordered);
        let hits = c.find(&Filter::between("age", 50_i64, 80_i64));
        assert_eq!(hits.len(), 2);
        let one = c.find(&Filter::and(vec![
            Filter::gte("age", 50_i64),
            Filter::lt("age", 60_i64),
        ]));
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].get_str("ncid"), Some("A2"));
    }

    #[test]
    fn update_maintains_indexes() {
        let mut c = voters();
        c.create_index("name", IndexKind::Hash);
        assert!(c.update(0, |d| {
            d.set("name", "WILLIAMS");
        }));
        assert_eq!(c.find(&Filter::eq("name", "SMITH")).len(), 1);
        assert_eq!(c.find(&Filter::eq("name", "WILLIAMS")).len(), 1);
        assert!(!c.update(999, |_| {}));
    }

    #[test]
    fn delete_maintains_indexes() {
        let mut c = voters();
        c.create_index("name", IndexKind::Hash);
        let removed = c.delete(0).unwrap();
        assert_eq!(removed.get_str("ncid"), Some("A1"));
        assert_eq!(c.find(&Filter::eq("name", "SMITH")).len(), 1);
        assert!(c.delete(0).is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn late_index_creation_indexes_existing_docs() {
        let mut c = voters();
        c.create_index("ncid", IndexKind::Hash);
        assert_eq!(c.find(&Filter::eq("ncid", "A2")).len(), 1);
        assert_eq!(c.indexed_paths(), vec!["ncid"]);
    }

    #[test]
    fn find_one_and_count() {
        let c = voters();
        assert_eq!(c.count(&Filter::eq("name", "SMITH")), 2);
        let first = c.find_one(&Filter::eq("name", "SMITH")).unwrap();
        assert_eq!(first.get_str("ncid"), Some("A1"));
        assert!(c.find_one(&Filter::eq("name", "NOPE")).is_none());
    }

    #[test]
    fn sparse_index_skips_docs_without_path() {
        let mut c = Collection::new("sparse");
        c.insert(doc! { "a" => 1_i64 });
        c.insert(doc! { "b" => 2_i64 });
        c.create_index("a", IndexKind::Hash);
        assert_eq!(c.find(&Filter::eq("a", 1_i64)).len(), 1);
        // The doc without "a" is still reachable by scan.
        assert_eq!(c.find(&Filter::eq("b", 2_i64)).len(), 1);
    }

    #[test]
    fn replace_rewrites_document() {
        let mut c = voters();
        assert!(c.replace(1, doc! { "ncid" => "B9" }));
        let d = c.get(1).unwrap();
        assert_eq!(d.get_str("ncid"), Some("B9"));
        assert_eq!(d.get_i64("_id"), Some(1));
        assert!(d.get_path("name").is_none());
    }
}
