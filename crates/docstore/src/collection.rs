//! Document collections with CRUD and secondary indexes.

use std::collections::HashMap;

use crate::index::{Index, IndexKind};
use crate::plan::{describe_conjunct, AccessPlan, ConjunctAccess, ConjunctDecision, ScanReason};
use crate::query::Filter;
use crate::value::{Document, Value};

/// Identifier assigned to every stored document (the `_id` field).
pub type DocId = u64;

/// A named collection of documents.
///
/// Documents receive a monotonically increasing `_id` on insert. Indexes
/// declared via [`Collection::create_index`] are maintained on every
/// mutation and used automatically by [`Collection::find`] when a filter
/// pins the indexed path.
#[derive(Debug, Default)]
pub struct Collection {
    name: String,
    docs: HashMap<DocId, Document>,
    next_id: DocId,
    indexes: HashMap<String, Index>,
}

impl Collection {
    /// Create an empty collection.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            docs: HashMap::new(),
            next_id: 0,
            indexes: HashMap::new(),
        }
    }

    /// The collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Insert a document, assigning and returning its `_id`.
    pub fn insert(&mut self, mut doc: Document) -> DocId {
        let id = self.next_id;
        self.next_id += 1;
        doc.set("_id", id as i64);
        for (path, index) in &mut self.indexes {
            if let Some(v) = doc.get_path(path) {
                index.insert(v, id);
            }
        }
        self.docs.insert(id, doc);
        id
    }

    /// Fetch a document by id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.get(&id)
    }

    /// Replace the document with the given id. Returns `false` when the
    /// id is unknown.
    pub fn replace(&mut self, id: DocId, mut doc: Document) -> bool {
        if !self.docs.contains_key(&id) {
            return false;
        }
        doc.set("_id", id as i64);
        let old = self.docs.insert(id, doc).expect("checked above");
        let new = &self.docs[&id];
        for (path, index) in &mut self.indexes {
            let ov = old.get_path(path);
            let nv = new.get_path(path);
            match (ov, nv) {
                (Some(o), Some(n)) if o.query_eq(n) => {}
                (o, n) => {
                    if let Some(o) = o {
                        index.remove(o, id);
                    }
                    if let Some(n) = n {
                        index.insert(n, id);
                    }
                }
            }
        }
        true
    }

    /// Apply a mutation to the document with the given id. Index entries
    /// are kept consistent. Returns `false` when the id is unknown.
    pub fn update<F: FnOnce(&mut Document)>(&mut self, id: DocId, f: F) -> bool {
        let Some(doc) = self.docs.get(&id) else {
            return false;
        };
        let mut updated = doc.clone();
        f(&mut updated);
        self.replace(id, updated)
    }

    /// Delete a document. Returns the removed document.
    pub fn delete(&mut self, id: DocId) -> Option<Document> {
        let doc = self.docs.remove(&id)?;
        for (path, index) in &mut self.indexes {
            if let Some(v) = doc.get_path(path) {
                index.remove(v, id);
            }
        }
        Some(doc)
    }

    /// Declare a secondary index over `path`. Existing documents are
    /// indexed immediately. Re-declaring an existing path rebuilds it with
    /// the new kind.
    pub fn create_index(&mut self, path: impl Into<String>, kind: IndexKind) {
        let path = path.into();
        let mut index = Index::new(kind);
        for (&id, doc) in &self.docs {
            if let Some(v) = doc.get_path(&path) {
                index.insert(v, id);
            }
        }
        self.indexes.insert(path, index);
    }

    /// The paths that currently have indexes.
    pub fn indexed_paths(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.indexes.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Iterate over all documents (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.docs.values()
    }

    /// Iterate over `(id, document)` pairs in ascending id order.
    pub fn iter_ordered(&self) -> impl Iterator<Item = (DocId, &Document)> {
        let mut ids: Vec<DocId> = self.docs.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(move |id| (id, &self.docs[&id]))
    }

    /// Candidate document ids for a filter, using every applicable
    /// index, or `None` when only a full scan will do.
    ///
    /// Each indexed path contributes one candidate list when the filter
    /// pins it with an equality (`equality_on` descends into `And`
    /// conjuncts at any depth) or, on an ordered index, a closed range
    /// (`range_on`, likewise conjunct-aware). Multiple lists — the
    /// dominant shape for carve filters like
    /// `and(eq(status), between(age))` — are intersected, so the
    /// residual `matches` pass only sees documents every indexed
    /// conjunct admits. Candidates are a superset of the true matches;
    /// callers always re-filter.
    fn index_candidates(&self, filter: &Filter) -> Option<Vec<DocId>> {
        let mut lists: Vec<Vec<DocId>> = Vec::new();
        for (path, index) in &self.indexes {
            if let Some(v) = filter.equality_on(path) {
                lists.push(index.lookup_eq(v));
            } else if index.kind() == IndexKind::Ordered {
                if let Some((lo, hi)) = filter.range_on(path) {
                    if let Some(ids) = index.lookup_range(lo, hi) {
                        lists.push(ids);
                    }
                }
            }
        }
        // Drive the intersection from the smallest list: `retain`
        // touches every element of it once per sibling list.
        lists.sort_by_key(Vec::len);
        let mut lists = lists.into_iter();
        let mut out = lists.next()?;
        for other in lists {
            // Posting lists come back sorted ascending, so candidates
            // stay ordered by `_id` through the intersection.
            let keep: std::collections::HashSet<DocId> = other.into_iter().collect();
            out.retain(|id| keep.contains(id));
            if out.is_empty() {
                break;
            }
        }
        Some(out)
    }

    /// Plan the access path for `filter`: the candidate posting list the
    /// private index-selection fast path would use (`None` = full scan),
    /// plus one [`ConjunctDecision`] per leaf conjunct explaining
    /// whether — and why not — an index serves it.
    ///
    /// `find`/`find_ids` share the same candidate computation, so a
    /// plan's `candidates` are exactly the documents a query would
    /// touch before the residual `matches` pass.
    pub fn plan(&self, filter: &Filter) -> AccessPlan {
        let mut decisions = Vec::new();
        self.collect_decisions(filter, &mut decisions);
        AccessPlan {
            candidates: self.index_candidates(filter),
            decisions,
        }
    }

    /// Walk `And` conjuncts (the only shape index selection descends)
    /// and record a decision for every leaf.
    fn collect_decisions(&self, filter: &Filter, out: &mut Vec<ConjunctDecision>) {
        match filter {
            Filter::And(fs) => {
                for f in fs {
                    self.collect_decisions(f, out);
                }
            }
            Filter::True => {}
            leaf => out.push(self.decide(leaf)),
        }
    }

    fn decide(&self, leaf: &Filter) -> ConjunctDecision {
        let conjunct = describe_conjunct(leaf);
        let (path, access) = match leaf {
            Filter::Eq(p, v) => (
                Some(p.clone()),
                match self.indexes.get(p) {
                    Some(ix) => ConjunctAccess::IndexedEq {
                        postings: ix.lookup_eq(v).len(),
                    },
                    None => ConjunctAccess::Scanned(ScanReason::NoIndex),
                },
            ),
            Filter::Gt(p, v) | Filter::Gte(p, v) => (
                Some(p.clone()),
                match self.indexes.get(p) {
                    Some(ix) if ix.kind() == IndexKind::Ordered => ConjunctAccess::IndexedRange {
                        postings: ix.lookup_range(Some(v), None).map_or(0, |ids| ids.len()),
                    },
                    Some(_) => ConjunctAccess::Scanned(ScanReason::RangeOnHashIndex),
                    None => ConjunctAccess::Scanned(ScanReason::NoIndex),
                },
            ),
            Filter::Lt(p, v) | Filter::Lte(p, v) => (
                Some(p.clone()),
                match self.indexes.get(p) {
                    Some(ix) if ix.kind() == IndexKind::Ordered => ConjunctAccess::IndexedRange {
                        postings: ix.lookup_range(None, Some(v)).map_or(0, |ids| ids.len()),
                    },
                    Some(_) => ConjunctAccess::Scanned(ScanReason::RangeOnHashIndex),
                    None => ConjunctAccess::Scanned(ScanReason::NoIndex),
                },
            ),
            Filter::Ne(p, _) => (
                Some(p.clone()),
                ConjunctAccess::Scanned(ScanReason::UnsupportedPredicate("ne")),
            ),
            Filter::In(p, _) => (
                Some(p.clone()),
                ConjunctAccess::Scanned(ScanReason::UnsupportedPredicate("in")),
            ),
            Filter::Exists(p) => (
                Some(p.clone()),
                ConjunctAccess::Scanned(ScanReason::UnsupportedPredicate("exists")),
            ),
            Filter::Contains(p, _) => (
                Some(p.clone()),
                ConjunctAccess::Scanned(ScanReason::UnsupportedPredicate("contains")),
            ),
            Filter::Or(_) => (
                None,
                ConjunctAccess::Scanned(ScanReason::UnsupportedPredicate("or")),
            ),
            Filter::Not(_) => (
                None,
                ConjunctAccess::Scanned(ScanReason::UnsupportedPredicate("not")),
            ),
            Filter::True | Filter::And(_) => unreachable!("handled by collect_decisions"),
        };
        ConjunctDecision {
            conjunct,
            path,
            access,
        }
    }

    /// Find all documents matching `filter`, ordered by `_id`.
    pub fn find(&self, filter: &Filter) -> Vec<&Document> {
        match self.index_candidates(filter) {
            Some(ids) => ids
                .into_iter()
                .filter_map(|id| self.docs.get(&id))
                .filter(|d| filter.matches(d))
                .collect(),
            None => self
                .iter_ordered()
                .map(|(_, d)| d)
                .filter(|d| filter.matches(d))
                .collect(),
        }
    }

    /// Find matching document ids, ordered ascending.
    pub fn find_ids(&self, filter: &Filter) -> Vec<DocId> {
        match self.index_candidates(filter) {
            Some(ids) => ids
                .into_iter()
                .filter(|id| self.docs.get(id).is_some_and(|d| filter.matches(d)))
                .collect(),
            None => self
                .iter_ordered()
                .filter(|(_, d)| filter.matches(d))
                .map(|(id, _)| id)
                .collect(),
        }
    }

    /// Count matching documents.
    pub fn count(&self, filter: &Filter) -> usize {
        self.find_ids(filter).len()
    }

    /// First matching document, by ascending `_id`.
    pub fn find_one(&self, filter: &Filter) -> Option<&Document> {
        self.find_ids(filter)
            .first()
            .and_then(|id| self.docs.get(id))
    }

    /// A read-only view of this collection. The view exposes the full
    /// query surface but no mutation, so it can be handed to snapshot
    /// and serving code as a compile-time guarantee that published data
    /// is never written through.
    pub fn view(&self) -> CollectionView<'_> {
        CollectionView { inner: self }
    }

    /// Whether a document with an indexed `path == value` exists. This is
    /// the hot call of the dedup import path, so it avoids materializing
    /// posting lists when possible.
    pub fn exists_eq(&self, path: &str, value: &Value) -> bool {
        if let Some(index) = self.indexes.get(path) {
            !index.lookup_eq(value).is_empty()
        } else {
            self.docs
                .values()
                .any(|d| d.get_path(path).is_some_and(|v| v.query_eq(value)))
        }
    }
}

/// A borrowed, read-only window onto a [`Collection`].
///
/// Every accessor forwards to the underlying collection; there is no
/// way to insert, update, delete or re-index through a view. Cluster
/// snapshots and the serving layer read through views so the type
/// system rules out accidental writes to published data.
#[derive(Debug, Clone, Copy)]
pub struct CollectionView<'a> {
    inner: &'a Collection,
}

impl<'a> CollectionView<'a> {
    /// The collection name.
    pub fn name(&self) -> &'a str {
        self.inner.name()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Fetch a document by id.
    pub fn get(&self, id: DocId) -> Option<&'a Document> {
        self.inner.get(id)
    }

    /// Find all documents matching `filter`, ordered by `_id`.
    pub fn find(&self, filter: &Filter) -> Vec<&'a Document> {
        self.inner.find(filter)
    }

    /// Find matching document ids, ordered ascending.
    pub fn find_ids(&self, filter: &Filter) -> Vec<DocId> {
        self.inner.find_ids(filter)
    }

    /// First matching document, by ascending `_id`.
    pub fn find_one(&self, filter: &Filter) -> Option<&'a Document> {
        self.inner.find_one(filter)
    }

    /// Count matching documents.
    pub fn count(&self, filter: &Filter) -> usize {
        self.inner.count(filter)
    }

    /// Whether a document with `path == value` exists.
    pub fn exists_eq(&self, path: &str, value: &Value) -> bool {
        self.inner.exists_eq(path, value)
    }

    /// The paths that currently have indexes.
    pub fn indexed_paths(&self) -> Vec<&'a str> {
        self.inner.indexed_paths()
    }

    /// Plan the access path for `filter` (see [`Collection::plan`]).
    pub fn plan(&self, filter: &Filter) -> AccessPlan {
        self.inner.plan(filter)
    }

    /// Iterate over `(id, document)` pairs in ascending id order.
    pub fn iter_ordered(&self) -> impl Iterator<Item = (DocId, &'a Document)> {
        self.inner.iter_ordered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    fn voters() -> Collection {
        let mut c = Collection::new("voters");
        c.insert(doc! { "ncid" => "A1", "name" => "SMITH", "age" => 40_i64 });
        c.insert(doc! { "ncid" => "A2", "name" => "JONES", "age" => 55_i64 });
        c.insert(doc! { "ncid" => "A3", "name" => "SMITH", "age" => 70_i64 });
        c
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let c = voters();
        let ids: Vec<i64> = c
            .iter_ordered()
            .map(|(_, d)| d.get_i64("_id").unwrap())
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn find_without_index_scans() {
        let c = voters();
        let hits = c.find(&Filter::eq("name", "SMITH"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn find_uses_hash_index() {
        let mut c = voters();
        c.create_index("name", IndexKind::Hash);
        let hits = c.find(&Filter::eq("name", "SMITH"));
        assert_eq!(hits.len(), 2);
        assert!(c.exists_eq("name", &Value::Str("JONES".into())));
        assert!(!c.exists_eq("name", &Value::Str("NOPE".into())));
    }

    #[test]
    fn find_uses_ordered_index_for_ranges() {
        let mut c = voters();
        c.create_index("age", IndexKind::Ordered);
        let hits = c.find(&Filter::between("age", 50_i64, 80_i64));
        assert_eq!(hits.len(), 2);
        let one = c.find(&Filter::and(vec![
            Filter::gte("age", 50_i64),
            Filter::lt("age", 60_i64),
        ]));
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].get_str("ncid"), Some("A2"));
    }

    #[test]
    fn update_maintains_indexes() {
        let mut c = voters();
        c.create_index("name", IndexKind::Hash);
        assert!(c.update(0, |d| {
            d.set("name", "WILLIAMS");
        }));
        assert_eq!(c.find(&Filter::eq("name", "SMITH")).len(), 1);
        assert_eq!(c.find(&Filter::eq("name", "WILLIAMS")).len(), 1);
        assert!(!c.update(999, |_| {}));
    }

    #[test]
    fn delete_maintains_indexes() {
        let mut c = voters();
        c.create_index("name", IndexKind::Hash);
        let removed = c.delete(0).unwrap();
        assert_eq!(removed.get_str("ncid"), Some("A1"));
        assert_eq!(c.find(&Filter::eq("name", "SMITH")).len(), 1);
        assert!(c.delete(0).is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn late_index_creation_indexes_existing_docs() {
        let mut c = voters();
        c.create_index("ncid", IndexKind::Hash);
        assert_eq!(c.find(&Filter::eq("ncid", "A2")).len(), 1);
        assert_eq!(c.indexed_paths(), vec!["ncid"]);
    }

    #[test]
    fn find_one_and_count() {
        let c = voters();
        assert_eq!(c.count(&Filter::eq("name", "SMITH")), 2);
        let first = c.find_one(&Filter::eq("name", "SMITH")).unwrap();
        assert_eq!(first.get_str("ncid"), Some("A1"));
        assert!(c.find_one(&Filter::eq("name", "NOPE")).is_none());
    }

    #[test]
    fn sparse_index_skips_docs_without_path() {
        let mut c = Collection::new("sparse");
        c.insert(doc! { "a" => 1_i64 });
        c.insert(doc! { "b" => 2_i64 });
        c.create_index("a", IndexKind::Hash);
        assert_eq!(c.find(&Filter::eq("a", 1_i64)).len(), 1);
        // The doc without "a" is still reachable by scan.
        assert_eq!(c.find(&Filter::eq("b", 2_i64)).len(), 1);
    }

    /// A bigger collection where every document has indexable fields, so
    /// conjunctive filters have non-trivial index selectivity.
    fn big() -> Collection {
        let mut c = Collection::new("big");
        for i in 0..40_i64 {
            c.insert(doc! {
                "name" => if i % 3 == 0 { "SMITH" } else { "JONES" },
                "age" => 20 + (i % 10),
                "county" => format!("C{}", i % 4),
            });
        }
        c
    }

    /// The satellite guarantee: for eq/range conjuncts nested inside
    /// `Filter::and` — the dominant predicate shape for carve filters —
    /// the indexed path and the unindexed scan path agree exactly.
    #[test]
    fn and_conjunct_index_path_agrees_with_scan_path() {
        let scan = big();
        let mut indexed = big();
        indexed.create_index("name", IndexKind::Hash);
        indexed.create_index("age", IndexKind::Ordered);
        indexed.create_index("county", IndexKind::Hash);

        let filters = vec![
            Filter::and(vec![Filter::eq("name", "SMITH"), Filter::between("age", 22_i64, 27_i64)]),
            Filter::and(vec![
                Filter::eq("county", "C1"),
                Filter::and(vec![Filter::eq("name", "JONES"), Filter::gte("age", 25_i64)]),
            ]),
            Filter::and(vec![Filter::gt("age", 23_i64), Filter::lt("age", 26_i64)]),
            Filter::and(vec![Filter::eq("name", "SMITH"), Filter::eq("county", "C0")]),
            // Contradictory conjuncts: the intersection must be empty.
            Filter::and(vec![Filter::eq("name", "SMITH"), Filter::eq("name", "JONES")]),
            // Unindexable residue alongside indexable conjuncts.
            Filter::and(vec![
                Filter::eq("name", "JONES"),
                Filter::Contains("county".into(), "2".into()),
            ]),
        ];
        for f in &filters {
            assert_eq!(
                indexed.find_ids(f),
                scan.find_ids(f),
                "index path and scan path disagree on {f:?}"
            );
        }
        // Sanity: at least one of these actually exercises intersection.
        let f = &filters[0];
        assert!(!indexed.find_ids(f).is_empty());
    }

    #[test]
    fn nested_and_equality_uses_index_candidates() {
        let mut c = big();
        c.create_index("name", IndexKind::Hash);
        c.create_index("age", IndexKind::Ordered);
        // A filter whose only match lives behind both conjuncts.
        let f = Filter::and(vec![Filter::eq("name", "SMITH"), Filter::between("age", 20_i64, 21_i64)]);
        let hits = c.find(&f);
        assert!(!hits.is_empty());
        for d in &hits {
            assert_eq!(d.get_str("name"), Some("SMITH"));
            let age = d.get_i64("age").unwrap();
            assert!((20..=21).contains(&age));
        }
    }

    #[test]
    fn read_view_exposes_queries_only() {
        let mut c = voters();
        c.create_index("name", IndexKind::Hash);
        let view = c.view();
        assert_eq!(view.name(), "voters");
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.find(&Filter::eq("name", "SMITH")).len(), 2);
        assert_eq!(view.count(&Filter::eq("name", "SMITH")), 2);
        assert_eq!(view.find_ids(&Filter::eq("name", "JONES")), vec![1]);
        assert_eq!(
            view.find_one(&Filter::eq("name", "SMITH")).unwrap().get_str("ncid"),
            Some("A1")
        );
        assert!(view.exists_eq("name", &Value::Str("JONES".into())));
        assert_eq!(view.indexed_paths(), vec!["name"]);
        assert_eq!(view.get(0).unwrap().get_str("ncid"), Some("A1"));
        let ids: Vec<DocId> = view.iter_ordered().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn replace_rewrites_document() {
        let mut c = voters();
        assert!(c.replace(1, doc! { "ncid" => "B9" }));
        let d = c.get(1).unwrap();
        assert_eq!(d.get_str("ncid"), Some("B9"));
        assert_eq!(d.get_i64("_id"), Some(1));
        assert!(d.get_path("name").is_none());
    }
}
