//! Deterministic fault injection for the IO path.
//!
//! Crash-safety claims are only as good as their tests: this module
//! deterministically damages files — truncations, partial lines, bit
//! flips, dropped byte ranges — from a seeded RNG, so the persistence
//! and ingest layers can be exercised against reproducible corruption.
//! Used by this crate's salvage tests and by the workspace-level
//! fault-injection integration suite.

use std::io;
use std::path::Path;

// The RNG moved into `nc-vfs` (the syscall-level fault injector needs
// it below this crate in the dependency graph); re-exported here so
// existing `nc_docstore::faults::FaultRng` users keep working.
pub use nc_vfs::fault::FaultRng;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Truncate the file to exactly `len` bytes (a crash mid-write).
    TruncateAt(u64),
    /// Flip one bit (bit rot / torn sector).
    FlipBit {
        /// Byte offset of the flip.
        offset: u64,
        /// Bit index within the byte (0–7).
        bit: u8,
    },
    /// Remove a byte range (a lost write).
    DeleteRange {
        /// First byte removed.
        offset: u64,
        /// Number of bytes removed.
        len: u64,
    },
    /// Append bytes without a trailing newline (a partial final line).
    AppendPartial(Vec<u8>),
}

/// Apply a fault to the file at `path`.
///
/// Offsets are clamped to the file's current length, so a plan drawn
/// for a larger file still applies cleanly.
pub fn inject(path: &Path, fault: &Fault) -> io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    match fault {
        Fault::TruncateAt(len) => {
            let len = (*len as usize).min(bytes.len());
            bytes.truncate(len);
        }
        Fault::FlipBit { offset, bit } => {
            if !bytes.is_empty() {
                let i = (*offset as usize).min(bytes.len() - 1);
                bytes[i] ^= 1 << (bit & 7);
            }
        }
        Fault::DeleteRange { offset, len } => {
            let start = (*offset as usize).min(bytes.len());
            let end = start.saturating_add(*len as usize).min(bytes.len());
            bytes.drain(start..end);
        }
        Fault::AppendPartial(extra) => {
            bytes.extend_from_slice(extra);
        }
    }
    std::fs::write(path, bytes)
}

/// Draw a random fault appropriate for a file of `file_len` bytes.
pub fn random_fault(rng: &mut FaultRng, file_len: u64) -> Fault {
    let len = file_len.max(1);
    match rng.below(4) {
        0 => Fault::TruncateAt(rng.below(len)),
        1 => Fault::FlipBit {
            offset: rng.below(len),
            bit: (rng.below(8)) as u8,
        },
        2 => Fault::DeleteRange {
            offset: rng.below(len),
            len: 1 + rng.below(16),
        },
        _ => {
            let n = 1 + rng.below(24) as usize;
            let garbage: Vec<u8> = (0..n).map(|_| (rng.below(256)) as u8).collect();
            Fault::AppendPartial(garbage)
        }
    }
}

/// Apply `n` random faults to the file, drawn from `seed`. Returns the
/// faults applied, in order, for the test's failure message.
pub fn chaos(path: &Path, seed: u64, n: usize) -> io::Result<Vec<Fault>> {
    let mut rng = FaultRng::new(seed);
    let mut applied = Vec::with_capacity(n);
    for _ in 0..n {
        let len = std::fs::metadata(path)?.len();
        let fault = random_fault(&mut rng, len);
        inject(path, &fault)?;
        applied.push(fault);
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nc_faults_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = FaultRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FaultRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = FaultRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn truncate_and_flip() {
        let path = tmp("basic");
        std::fs::write(&path, b"hello world").unwrap();
        inject(&path, &Fault::TruncateAt(5)).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        inject(&path, &Fault::FlipBit { offset: 0, bit: 0 }).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"iello");
        inject(&path, &Fault::DeleteRange { offset: 1, len: 2 }).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"ilo");
        inject(&path, &Fault::AppendPartial(b"xx".to_vec())).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"iloxx");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn faults_clamp_to_file_bounds() {
        let path = tmp("clamp");
        std::fs::write(&path, b"abc").unwrap();
        inject(&path, &Fault::TruncateAt(1000)).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        inject(&path, &Fault::FlipBit { offset: 1000, bit: 3 }).unwrap();
        inject(&path, &Fault::DeleteRange { offset: 1000, len: 5 }).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 3);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn chaos_is_reproducible() {
        let p1 = tmp("chaos1");
        let p2 = tmp("chaos2");
        let content = vec![b'x'; 4096];
        std::fs::write(&p1, &content).unwrap();
        std::fs::write(&p2, &content).unwrap();
        let f1 = chaos(&p1, 99, 5).unwrap();
        let f2 = chaos(&p2, 99, 5).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(p1).unwrap();
        std::fs::remove_file(p2).unwrap();
    }
}
