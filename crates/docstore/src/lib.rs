//! An embeddable, aggregate-oriented document store.
//!
//! The paper stores its test dataset in MongoDB because the data is (i)
//! naturally *aggregate-oriented* — all records of one voter live inside
//! one cluster document — (ii) sparse — most of the 90 attributes are
//! missing in most records — and (iii) large. This crate implements the
//! capabilities the paper actually relies on, as an embeddable Rust
//! library:
//!
//! * a schema-less, nested [`value::Value`]/[`value::Document`] data model
//!   with dotted-path access (`"records.0.person.last_name"`),
//! * [`collection::Collection`]s with automatic `_id` assignment, CRUD,
//!   and secondary [`index`]es (hash and ordered) over dotted paths,
//! * an aggregation [`pipeline`] with `match`, `project`, `unwind`,
//!   `group`, `sort`, `skip`, `limit` and `count` stages — enough to
//!   express the paper's customization queries,
//! * crash-safe file [`persist`]ence (atomic JSON-lines snapshots with
//!   per-line CRC-32 checksums, a count/checksum footer, and a
//!   salvage-on-load recovery path),
//! * a deterministic [`faults`] injection harness for testing the IO
//!   path against truncation, torn lines, and bit rot, and
//! * a thread-safe [`store::DocStore`] holding named collections.
//!
//! # Example
//!
//! ```
//! use nc_docstore::prelude::*;
//!
//! let mut coll = Collection::new("voters");
//! coll.insert(doc! { "name" => "ANNA", "age" => 44_i64 });
//! coll.insert(doc! { "name" => "BOB", "age" => 71_i64 });
//!
//! let hits = coll.find(&Filter::gt("age", Value::from(50_i64)));
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].get_str("name"), Some("BOB"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod crc32;
pub mod faults;
pub mod index;
pub mod persist;
pub mod pipeline;
pub mod plan;
pub mod query;
pub mod store;
pub mod value;

/// Convenient glob import for typical usage.
pub mod prelude {
    pub use crate::collection::{Collection, DocId};
    pub use crate::doc;
    pub use crate::index::IndexKind;
    pub use crate::persist::{FooterStatus, Salvage, SalvageReport};
    pub use crate::pipeline::{Accumulator, Pipeline, Stage};
    pub use crate::plan::{AccessPlan, ConjunctAccess, ConjunctDecision, ScanReason};
    pub use crate::query::Filter;
    pub use crate::store::DocStore;
    pub use crate::value::{Document, Value};
}
