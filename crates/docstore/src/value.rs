//! The nested document data model.
//!
//! [`Value`] is a JSON/BSON-like tree; [`Document`] is an ordered map of
//! field name to [`Value`]. Dotted paths (`"records.0.person.last_name"`)
//! address nested fields, with non-negative integer segments indexing
//! into arrays.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A dynamically typed document value.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
#[serde(untagged)]
pub enum Value {
    /// Explicit null (distinct from an absent field).
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered array of values.
    Array(Vec<Value>),
    /// Nested document.
    Doc(Document),
}

impl Value {
    /// Type rank used for cross-type total ordering (Null < Bool < number
    /// < Str < Array < Doc), mirroring BSON comparison semantics.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Array(_) => 4,
            Value::Doc(_) => 5,
        }
    }

    /// Total order over all values: by type rank first, then within the
    /// type (numbers compare numerically across `Int`/`Float`; floats use
    /// IEEE total ordering so `NaN` is ordered, not poisonous).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Doc(a), Value::Doc(b)) => {
                let mut ita = a.iter();
                let mut itb = b.iter();
                loop {
                    match (ita.next(), itb.next()) {
                        (None, None) => return Ordering::Equal,
                        (None, Some(_)) => return Ordering::Less,
                        (Some(_), None) => return Ordering::Greater,
                        (Some((ka, va)), Some((kb, vb))) => {
                            let c = ka.cmp(kb).then_with(|| va.total_cmp(vb));
                            if c != Ordering::Equal {
                                return c;
                            }
                        }
                    }
                }
            }
            _ => unreachable!("type ranks matched"),
        }
    }

    /// Whether two values compare equal under query semantics
    /// (`Int(3) == Float(3.0)`).
    pub fn query_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// Borrow as `&str` when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view (`Int` and `Float` both yield `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (exact ints only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Borrow as array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as nested document.
    pub fn as_doc(&self) -> Option<&Document> {
        match self {
            Value::Doc(d) => Some(d),
            _ => None,
        }
    }

    /// Mutable borrow as nested document.
    pub fn as_doc_mut(&mut self) -> Option<&mut Document> {
        match self {
            Value::Doc(d) => Some(d),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Render as JSON into `out`. Field order is the document's own
    /// (sorted) order, so the rendering is canonical: equal documents
    /// render byte-identically. Non-finite floats render as `null`.
    pub fn render_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                use fmt::Write as _;
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    use fmt::Write as _;
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_json_str(s, out),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_json(out);
                }
                out.push(']');
            }
            Value::Doc(d) => d.render_json(out),
        }
    }

    /// [`Value::render_json`] into a fresh string.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.render_json(&mut s);
        s
    }

    /// A stable hash of the value, consistent with [`Value::query_eq`]
    /// (equal values hash equally; ints hash as their float image when
    /// integral so that `Int(3)` and `Float(3.0)` collide as required).
    pub fn stable_hash(&self) -> u64 {
        // FNV-1a over a tagged byte encoding.
        fn fnv(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x100000001b3);
            }
        }
        fn go(v: &Value, h: &mut u64) {
            match v {
                Value::Null => fnv(h, &[0]),
                Value::Bool(b) => fnv(h, &[1, u8::from(*b)]),
                Value::Int(i) => {
                    // Hash numerically: encode as float bits when exactly
                    // representable so Int/Float agree, else as int bits.
                    let f = *i as f64;
                    if f as i64 == *i {
                        fnv(h, &[2]);
                        fnv(h, &f.to_bits().to_le_bytes());
                    } else {
                        fnv(h, &[3]);
                        fnv(h, &i.to_le_bytes());
                    }
                }
                Value::Float(f) => {
                    fnv(h, &[2]);
                    fnv(h, &f.to_bits().to_le_bytes());
                }
                Value::Str(s) => {
                    fnv(h, &[4]);
                    fnv(h, s.as_bytes());
                }
                Value::Array(a) => {
                    fnv(h, &[5]);
                    fnv(h, &a.len().to_le_bytes());
                    for x in a {
                        go(x, h);
                    }
                }
                Value::Doc(d) => {
                    fnv(h, &[6]);
                    for (k, x) in d.iter() {
                        fnv(h, k.as_bytes());
                        go(x, h);
                    }
                }
            }
        }
        let mut h = 0xcbf29ce484222325u64;
        go(self, &mut h);
        h
    }
}

/// Render `s` as a JSON string literal (quotes, escapes) into `out`.
fn render_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl<'de> serde::Deserialize<'de> for Value {
    /// Manual visitor implementation: the derived `untagged` variant
    /// buffers numbers through an intermediate representation that can
    /// drift floats by one ULP; this visitor maps JSON types directly.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        struct V;
        impl<'de> serde::de::Visitor<'de> for V {
            type Value = Value;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a JSON-like value")
            }

            fn visit_unit<E>(self) -> Result<Value, E> {
                Ok(Value::Null)
            }
            fn visit_bool<E>(self, b: bool) -> Result<Value, E> {
                Ok(Value::Bool(b))
            }
            fn visit_i64<E>(self, i: i64) -> Result<Value, E> {
                Ok(Value::Int(i))
            }
            fn visit_u64<E: serde::de::Error>(self, u: u64) -> Result<Value, E> {
                i64::try_from(u)
                    .map(Value::Int)
                    .map_err(|_| E::custom("integer out of i64 range"))
            }
            fn visit_f64<E>(self, f: f64) -> Result<Value, E> {
                Ok(Value::Float(f))
            }
            fn visit_str<E>(self, s: &str) -> Result<Value, E> {
                Ok(Value::Str(s.to_owned()))
            }
            fn visit_string<E>(self, s: String) -> Result<Value, E> {
                Ok(Value::Str(s))
            }
            fn visit_seq<A>(self, mut seq: A) -> Result<Value, A::Error>
            where
                A: serde::de::SeqAccess<'de>,
            {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(v) = seq.next_element()? {
                    out.push(v);
                }
                Ok(Value::Array(out))
            }
            fn visit_map<A>(self, mut map: A) -> Result<Value, A::Error>
            where
                A: serde::de::MapAccess<'de>,
            {
                let mut doc = Document::new();
                while let Some((k, v)) = map.next_entry::<String, Value>()? {
                    doc.set(k, v);
                }
                Ok(Value::Doc(doc))
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Doc(d) => write!(f, "{d}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Document> for Value {
    fn from(d: Document) -> Self {
        Value::Doc(d)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// An ordered (by field name) map of field name to [`Value`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Document {
    fields: BTreeMap<String, Value>,
}

impl Document {
    /// Create an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of top-level fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Set a top-level field.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        self.fields.insert(key.into(), value.into());
        self
    }

    /// Remove a top-level field, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.fields.remove(key)
    }

    /// Iterate over `(name, value)` pairs in field-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.fields.iter()
    }

    /// Look up a value by dotted path. Integer segments index arrays.
    ///
    /// Returns `None` for absent fields (use [`Value::Null`] for explicit
    /// nulls).
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut cur: Option<&Value> = None;
        for seg in path.split('.') {
            cur = match cur {
                None => self.fields.get(seg),
                Some(Value::Doc(d)) => d.fields.get(seg),
                Some(Value::Array(a)) => seg.parse::<usize>().ok().and_then(|i| a.get(i)),
                _ => None,
            };
            cur?;
        }
        cur
    }

    /// Look up a top-level field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.get(key)
    }

    /// Mutable lookup of a top-level field.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.fields.get_mut(key)
    }

    /// String view of a dotted path.
    pub fn get_str(&self, path: &str) -> Option<&str> {
        self.get_path(path).and_then(Value::as_str)
    }

    /// Integer view of a dotted path.
    pub fn get_i64(&self, path: &str) -> Option<i64> {
        self.get_path(path).and_then(Value::as_i64)
    }

    /// Float view of a dotted path (ints coerce).
    pub fn get_f64(&self, path: &str) -> Option<f64> {
        self.get_path(path).and_then(Value::as_f64)
    }

    /// Array view of a dotted path.
    pub fn get_array(&self, path: &str) -> Option<&[Value]> {
        self.get_path(path).and_then(Value::as_array)
    }

    /// Set a value at a dotted path, creating intermediate documents as
    /// needed. Array segments must already exist and be in range; path
    /// segments through non-documents fail.
    ///
    /// Returns `true` on success.
    pub fn set_path(&mut self, path: &str, value: impl Into<Value>) -> bool {
        let segs: Vec<&str> = path.split('.').collect();
        let value = value.into();
        fn go(doc: &mut Document, segs: &[&str], value: Value) -> bool {
            match segs {
                [] => false,
                [last] => {
                    doc.fields.insert((*last).to_owned(), value);
                    true
                }
                [head, rest @ ..] => {
                    let entry = doc
                        .fields
                        .entry((*head).to_owned())
                        .or_insert_with(|| Value::Doc(Document::new()));
                    match entry {
                        Value::Doc(d) => go(d, rest, value),
                        Value::Array(a) => {
                            let Some(idx) = rest.first().and_then(|s| s.parse::<usize>().ok())
                            else {
                                return false;
                            };
                            let Some(slot) = a.get_mut(idx) else {
                                return false;
                            };
                            match (&rest[1..], slot) {
                                ([], slot) => {
                                    *slot = value;
                                    true
                                }
                                (more, Value::Doc(d)) => go(d, more, value),
                                _ => false,
                            }
                        }
                        _ => false,
                    }
                }
            }
        }
        go(self, &segs, value)
    }

    /// Push a value onto an array field at a dotted path, creating the
    /// array if absent. Returns `true` on success.
    pub fn push_path(&mut self, path: &str, value: impl Into<Value>) -> bool {
        match self.get_path(path) {
            None => self.set_path(path, Value::Array(vec![value.into()])),
            Some(Value::Array(_)) => {
                // Re-borrow mutably along the path.
                let segs: Vec<&str> = path.split('.').collect();
                let mut cur = match self.fields.get_mut(segs[0]) {
                    Some(v) => v,
                    None => return false,
                };
                for seg in &segs[1..] {
                    cur = match cur {
                        Value::Doc(d) => match d.fields.get_mut(*seg) {
                            Some(v) => v,
                            None => return false,
                        },
                        Value::Array(a) => match seg.parse::<usize>().ok() {
                            Some(i) if i < a.len() => &mut a[i],
                            _ => return false,
                        },
                        _ => return false,
                    };
                }
                match cur {
                    Value::Array(a) => {
                        a.push(value.into());
                        true
                    }
                    _ => false,
                }
            }
            Some(_) => false,
        }
    }

    /// Render as a JSON object into `out`. Fields appear in the
    /// document's sorted field order, making the rendering canonical.
    pub fn render_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_json_str(k, out);
            out.push(':');
            v.render_json(out);
        }
        out.push('}');
    }

    /// [`Document::render_json`] into a fresh string.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.render_json(&mut s);
        s
    }

    /// Keep only the named top-level fields (projection).
    pub fn project(&self, fields: &[&str]) -> Document {
        let mut out = Document::new();
        for &f in fields {
            if let Some(v) = self.get_path(f) {
                // Nested projections rebuild the nested structure so that
                // the same dotted path addresses the value in the output.
                out.set_path(f, v.clone());
            }
        }
        out
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Value)> for Document {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Document {
            fields: iter.into_iter().collect(),
        }
    }
}

/// Build a [`Document`] literal: `doc! { "a" => 1_i64, "b" => "x" }`.
#[macro_export]
macro_rules! doc {
    () => { $crate::value::Document::new() };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut d = $crate::value::Document::new();
        $( d.set($k, $v); )+
        d
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        doc! {
            "ncid" => "AA1",
            "person" => doc! { "last_name" => "SMITH", "age" => 44_i64 },
            "records" => vec![
                Value::Doc(doc! { "snap" => "2008-01-01" }),
                Value::Doc(doc! { "snap" => "2010-05-06" }),
            ],
        }
    }

    #[test]
    fn path_lookup() {
        let d = sample();
        assert_eq!(d.get_str("ncid"), Some("AA1"));
        assert_eq!(d.get_str("person.last_name"), Some("SMITH"));
        assert_eq!(d.get_i64("person.age"), Some(44));
        assert_eq!(d.get_str("records.1.snap"), Some("2010-05-06"));
        assert!(d.get_path("person.missing").is_none());
        assert!(d.get_path("records.9.snap").is_none());
        assert!(d.get_path("ncid.sub").is_none());
    }

    #[test]
    fn set_path_creates_intermediates() {
        let mut d = Document::new();
        assert!(d.set_path("a.b.c", 7_i64));
        assert_eq!(d.get_i64("a.b.c"), Some(7));
        assert!(d.set_path("a.b.c", "now a string"));
        assert_eq!(d.get_str("a.b.c"), Some("now a string"));
    }

    #[test]
    fn set_path_into_array_element() {
        let mut d = sample();
        assert!(d.set_path("records.0.snap", "2009-09-09"));
        assert_eq!(d.get_str("records.0.snap"), Some("2009-09-09"));
        assert!(!d.set_path("records.7.snap", "x"));
    }

    #[test]
    fn push_path_appends_and_creates() {
        let mut d = sample();
        assert!(d.push_path("records", Value::Doc(doc! { "snap" => "2012-01-01" })));
        assert_eq!(d.get_array("records").unwrap().len(), 3);
        assert!(d.push_path("meta.tags", "fresh"));
        assert_eq!(d.get_array("meta.tags").unwrap().len(), 1);
        assert!(!d.push_path("ncid", "not-an-array"));
    }

    #[test]
    fn cross_type_total_order() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(1),
            Value::Str("a".into()),
            Value::Array(vec![]),
            Value::Doc(Document::new()),
        ];
        for w in vals.windows(2) {
            assert_eq!(w[0].total_cmp(&w[1]), Ordering::Less);
        }
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert!(Value::Int(3).query_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).query_eq(&Value::Float(3.5)));
        assert_eq!(
            Value::Int(3).stable_hash(),
            Value::Float(3.0).stable_hash()
        );
    }

    #[test]
    fn stable_hash_distinguishes() {
        assert_ne!(
            Value::Str("A".into()).stable_hash(),
            Value::Str("B".into()).stable_hash()
        );
        assert_ne!(Value::Null.stable_hash(), Value::Bool(false).stable_hash());
    }

    #[test]
    fn projection() {
        let d = sample();
        let p = d.project(&["ncid", "person.age", "absent"]);
        assert_eq!(p.get_str("ncid"), Some("AA1"));
        assert_eq!(p.get_i64("person.age"), Some(44));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let d = sample();
        let json = serde_json::to_string(&d).unwrap();
        let back: Document = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn display_formats() {
        let d = doc! { "a" => 1_i64, "b" => vec![Value::Null] };
        let s = format!("{d}");
        assert!(s.contains("a: 1"));
        assert!(s.contains("[null]"));
    }
}
