//! Property tests: random churn driven through the shard engine, the
//! change stream, incremental scoring and the carve engine's
//! delta-aware publish — asserting, at every committed version, that
//!
//! * the stream classifies every touched cluster correctly
//!   (founded vs revised, first-touch order, exact row counts),
//! * [`nc_core::scoring::score_clusters_incremental`] over the
//!   stream-derived dirty set is **bit-identical** to a full scoring
//!   pass,
//! * NC1–NC3 carves served through a delta-published
//!   [`nc_serve::CarveEngine`] (including carry-forward cache hits)
//!   are **byte-identical** to fresh carves of the same snapshot,
//! * replaying the stream from scratch, from `open_at`, or from a
//!   saved cursor reproduces the same batches.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nc_core::customize::CustomizeParams;
use nc_core::plausibility::PlausibilityScorer;
use nc_core::record::DedupPolicy;
use nc_core::scoring::{score_clusters, score_clusters_incremental, ClusterScore, ScoringConfig};
use nc_core::tsv::{write_snapshot, ImportOptions};
use nc_serve::{CarveEngine, CarveRequest, ServeSnapshot, SnapshotRegistry};
use nc_shard::{ShardEngine, ShardEngineConfig};
use nc_stream::{fold_delta, ChangeKind, ChangeStream};
use nc_votergen::schema::{Row, FIRST_NAME, LAST_NAME, NCID};
use nc_votergen::snapshot::Snapshot;
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(label: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "nc_stream_{label}_{}_{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One churn snapshot: each touch appends one fresh row to cluster
/// `NC<id>`; ids never seen before found new clusters.
fn churn_snapshot(index: usize, touches: &[u16]) -> Snapshot {
    let date = format!("2020-01-{:02}", index);
    let rows = touches
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let mut row = Row::empty();
            row.set(NCID, format!("NC{id:04}"));
            row.set(FIRST_NAME, "AVA");
            row.set(LAST_NAME, format!("L{index}_{i}"));
            row
        })
        .collect();
    Snapshot {
        index,
        date,
        rows,
    }
}

fn assert_scores_bit_equal(full: &[ClusterScore], inc: &[ClusterScore]) {
    assert_eq!(full.len(), inc.len());
    for (f, i) in full.iter().zip(inc) {
        assert_eq!(f.ncid, i.ncid);
        assert_eq!(f.records, i.records);
        assert_eq!(f.plausibility.to_bits(), i.plausibility.to_bits());
        assert_eq!(f.heterogeneity.to_bits(), i.heterogeneity.to_bits());
    }
}

/// Every record line of a carve, rendered for byte comparison.
fn carve_lines(engine: &CarveEngine, request: &CarveRequest) -> Vec<String> {
    let outcome = engine.carve(request).expect("carve");
    outcome.result.page(0, usize::MAX).to_vec()
}

fn preset_requests(seed: u64) -> Vec<CarveRequest> {
    [
        CustomizeParams::nc1(12, 5, seed),
        CustomizeParams::nc2(12, 5, seed),
        CustomizeParams::nc3(12, 5, seed),
    ]
    .into_iter()
    .map(|params| CarveRequest {
        version: None,
        params,
        page: 0,
        page_size: usize::MAX,
        encoding: None,
    })
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn churn_streams_score_and_carve_bit_identically(
        shards in 1usize..4,
        seed in 0u64..1_000,
        plan in proptest::collection::vec(
            proptest::collection::vec(0u16..24, 0..16),
            2usize..5,
        ),
    ) {
        // The first snapshot must found at least one cluster so every
        // published version has a scorable, carvable store.
        let mut plan = plan;
        plan[0].push(0);

        let state_dir = scratch_dir("state");
        let archive_dir = scratch_dir("archive");
        let config = ShardEngineConfig::new(shards, DedupPolicy::Trimmed, 1);
        let mut engine = ShardEngine::open(&state_dir, config).unwrap();
        let mut stream = ChangeStream::open(&state_dir);

        let plausibility = PlausibilityScorer::new();
        let scoring = ScoringConfig::with_threads(1);

        let mut model_known: HashSet<String> = HashSet::new();
        let mut all_batches = Vec::new();
        let mut carve_engine: Option<CarveEngine> = None;
        let mut previous_scores: Vec<ClusterScore> = Vec::new();
        let mut expected_carves: HashMap<(u32, usize), Vec<String>> = HashMap::new();

        for (i, touches) in plan.iter().enumerate() {
            let version = (i + 1) as u32;
            let snapshot = churn_snapshot(i + 1, touches);
            write_snapshot(&archive_dir, &snapshot).unwrap();
            engine.ingest_archive(&archive_dir, &ImportOptions::strict()).unwrap();

            // Exactly one new committed snapshot; classification must
            // match the model exactly, in first-touch order.
            let batches = stream.drain().unwrap();
            prop_assert_eq!(batches.len(), 1);
            let batch = &batches[0];
            prop_assert_eq!(batch.index, i + 1);
            prop_assert_eq!(&batch.date, &snapshot.date);
            prop_assert_eq!(batch.rows, touches.len() as u64);
            let mut expected_order: Vec<String> = Vec::new();
            let mut expected_rows: HashMap<String, u64> = HashMap::new();
            for id in touches {
                let ncid = format!("NC{id:04}");
                if !expected_rows.contains_key(&ncid) {
                    expected_order.push(ncid.clone());
                }
                *expected_rows.entry(ncid).or_insert(0) += 1;
            }
            prop_assert_eq!(batch.changes.len(), expected_order.len());
            for (change, ncid) in batch.changes.iter().zip(&expected_order) {
                prop_assert_eq!(&change.ncid, ncid);
                prop_assert_eq!(change.rows, expected_rows[ncid]);
                let expected_kind = if model_known.contains(ncid) {
                    ChangeKind::Revised
                } else {
                    ChangeKind::Founded
                };
                prop_assert_eq!(change.kind, expected_kind);
            }
            model_known.extend(expected_order.iter().cloned());

            // Incremental scoring over the stream's dirty set splices
            // bit-identically to a full pass.
            let delta = fold_delta(&batches, version);
            let dirty: HashSet<String> =
                delta.dirty_clusters().map(str::to_owned).collect();
            let published = engine.publish(version);
            let entropy = published.entropy_scorer(nc_core::heterogeneity::Scope::Person);
            let full = score_clusters(
                published.clusters(), &plausibility, &entropy, &scoring,
            );
            let incremental = score_clusters_incremental(
                published.clusters(), &previous_scores, &dirty,
                &plausibility, &entropy, &scoring,
            );
            assert_scores_bit_equal(&full, &incremental);
            previous_scores = full;

            // Publish into the carve engine with the folded delta (the
            // first version seeds the registry), then compare NC1–NC3
            // carves — cached, carried forward or fresh — against an
            // uncached engine over the same snapshot.
            let serving = match &carve_engine {
                None => {
                    let registry = Arc::new(SnapshotRegistry::new(
                        ServeSnapshot::new(published.clone()),
                    ));
                    carve_engine = Some(CarveEngine::new(registry, 16));
                    carve_engine.as_ref().unwrap()
                }
                Some(serving) => {
                    serving.publish(ServeSnapshot::new(published.clone()), Some(delta));
                    serving
                }
            };
            let fresh = CarveEngine::new(
                Arc::new(SnapshotRegistry::new(ServeSnapshot::new(published))),
                0,
            );
            for (p, request) in preset_requests(seed).iter().enumerate() {
                let served = carve_lines(serving, request);
                let direct = carve_lines(&fresh, request);
                prop_assert_eq!(&served, &direct,
                    "preset {} differs at version {}", p, version);
                expected_carves.insert((version, p), served);
            }
            all_batches.extend(batches);
        }

        // Pinned re-reads of every historical version stay byte-stable
        // after all the churn (cache entries may have been carried
        // forward or invalidated in between).
        let serving = carve_engine.as_ref().unwrap();
        for ((version, p), expected) in &expected_carves {
            let mut request = preset_requests(seed).swap_remove(*p);
            request.version = Some(*version);
            let lines = carve_lines(serving, &request);
            prop_assert_eq!(&lines, expected,
                "pinned carve of preset {} at version {} drifted", p, version);
        }

        // Replay equivalence: from scratch, from open_at, and from a
        // saved cursor, the stream reproduces the same batches.
        let replayed = ChangeStream::open(&state_dir).drain().unwrap();
        prop_assert_eq!(&replayed, &all_batches);

        let mid = all_batches.len() / 2;
        let tail = ChangeStream::open_at(&state_dir, mid).unwrap().drain().unwrap();
        prop_assert_eq!(&tail, &all_batches[mid..].to_vec());

        let cursor_path = state_dir.join("consumer.cursor");
        let parked = ChangeStream::open_at(&state_dir, mid).unwrap();
        prop_assert_eq!(parked.cursor_version(), mid);
        parked.save_cursor(&cursor_path).unwrap();
        let mut resumed = ChangeStream::resume(&state_dir, &cursor_path).unwrap();
        prop_assert_eq!(&resumed.drain().unwrap(), &all_batches[mid..].to_vec());

        let _ = std::fs::remove_dir_all(&state_dir);
        let _ = std::fs::remove_dir_all(&archive_dir);
    }
}
