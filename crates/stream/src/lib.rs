//! `nc-stream`: change streams over the `nc-shard` write-ahead logs.
//!
//! The shard engine already write-ahead logs every ingested row
//! (`B`/`R`/`C` groups with global sequence numbers) and commits
//! snapshots through its manifest. This crate turns those logs into a
//! *subscribable change stream*: a [`ChangeStream`] tails every
//! shard's log from a cursor, delivers one [`ChangeBatch`] per
//! committed snapshot — cluster-level [`ClusterChange`] events, merged
//! across shards in global sequence order — and classifies each
//! touched cluster as [`ChangeKind::Founded`] (first row ever) or
//! [`ChangeKind::Revised`] (rows appended to a pre-existing cluster).
//!
//! Delivery is **manifest-gated**: a batch is surfaced only once the
//! shard manifest lists its snapshot as committed. Because the engine
//! fsyncs every shard's `C` record *before* the manifest commit, a
//! manifest-listed snapshot whose group cannot be read back is not a
//! race — it is desynchronization (a wiped or rewritten state
//! directory), reported as [`StreamError::Desync`] instead of being
//! silently skipped.
//!
//! Streams are **replayable**: [`ChangeStream::open`] starts from the
//! first record ever logged, [`ChangeStream::open_at`] fast-forwards
//! through the first `n` committed snapshots (rebuilding the
//! founded/revised classification state from the log itself), and
//! [`ChangeStream::save_cursor`] / [`ChangeStream::resume`] persist a
//! crash-safe cursor so a consumer can pick up where it left off.
//!
//! The bridge to the serving tier is [`fold_delta`]: it folds a window
//! of batches into an [`nc_serve::PublishDelta`], which
//! `nc-serve`'s carve engine uses to carry warm carve-cache entries
//! forward across publishes and `GET /watch` streams to subscribers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cursor;

use std::collections::HashSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use nc_serve::snapshot::PublishDelta;
use nc_shard::{shard_log_dir, tail_group, ManifestState, ShardManifest, TailCursor};

pub use cursor::StreamCursor;

/// How a batch touched a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// The cluster's first row ever appeared in this batch.
    Founded,
    /// Rows were appended to a cluster founded by an earlier batch.
    Revised,
}

/// One cluster touched by a batch.
///
/// Classification is *log-conservative*: the WAL records every routed
/// row, including rows the in-memory store later drops as exact
/// duplicates, so a `Revised` event may correspond to no visible
/// change in the materialized cluster. Consumers that must not miss a
/// change can rely on the converse: an untouched cluster is never
/// reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterChange {
    /// Trimmed NCID (the cluster key).
    pub ncid: String,
    /// Founded or revised.
    pub kind: ChangeKind,
    /// Rows logged for this cluster in this batch.
    pub rows: u64,
    /// Lowest global sequence number among those rows (the batch's
    /// changes are ordered by it).
    pub first_seq: u64,
}

/// All cluster-level changes of one committed snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeBatch {
    /// 1-based ordinal of this snapshot in the committed history (the
    /// stream's version cursor: a consumer that has processed batch
    /// `n` resumes at `n`).
    pub index: usize,
    /// Snapshot date from the `B` records.
    pub date: String,
    /// Import version from the `B` records.
    pub version: u32,
    /// Total rows logged across all shards.
    pub rows: u64,
    /// Touched clusters in first-touch (global sequence) order.
    pub changes: Vec<ClusterChange>,
}

/// Errors surfaced by a change stream.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying filesystem failed.
    Io(io::Error),
    /// The logs and the manifest disagree: the state directory was
    /// wiped, rewritten, or re-ingested beneath the stream. The cursor
    /// is unusable; re-open from scratch.
    Desync(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(err) => write!(f, "change stream I/O: {err}"),
            StreamError::Desync(reason) => write!(f, "change stream desynchronized: {reason}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<io::Error> for StreamError {
    fn from(err: io::Error) -> Self {
        StreamError::Io(err)
    }
}

/// A tailer over one shard-engine state directory.
///
/// The stream holds per-shard byte cursors plus the set of cluster
/// keys it has already seen (which drives founded-vs-revised
/// classification). It reads the manifest on every
/// [`ChangeStream::next_batch`] call, so it observes commits made by a
/// live engine in the same process or another one.
#[derive(Debug)]
pub struct ChangeStream {
    state_dir: PathBuf,
    /// Per-shard positions; empty until the first manifest is seen
    /// (a stream may be opened on a not-yet-committed directory).
    cursors: Vec<TailCursor>,
    /// Committed snapshots already delivered.
    delivered: usize,
    /// Cluster keys seen in delivered batches.
    known: HashSet<String>,
}

impl ChangeStream {
    /// Open a stream at the very beginning of the committed history.
    /// The directory may be empty or not yet committed; the stream
    /// starts delivering once a manifest appears.
    pub fn open(state_dir: &Path) -> ChangeStream {
        ChangeStream {
            state_dir: state_dir.to_path_buf(),
            cursors: Vec::new(),
            delivered: 0,
            known: HashSet::new(),
        }
    }

    /// Open a stream positioned just past the first `delivered`
    /// committed snapshots: the next batch is number `delivered + 1`.
    ///
    /// The founded/revised classification state is rebuilt by
    /// replaying (and discarding) the skipped batches from the log —
    /// the log itself is the only source that can tell which clusters
    /// existed at that point.
    pub fn open_at(state_dir: &Path, delivered: usize) -> Result<ChangeStream, StreamError> {
        let mut stream = Self::open(state_dir);
        while stream.delivered < delivered {
            match stream.next_batch()? {
                Some(_) => {}
                None => {
                    return Err(StreamError::Desync(format!(
                        "cannot open at snapshot {delivered}: only {} committed",
                        stream.delivered
                    )))
                }
            }
        }
        Ok(stream)
    }

    /// Resume from a cursor previously written by
    /// [`ChangeStream::save_cursor`]. The stream replays the log up to
    /// the recorded position and then cross-checks the replayed
    /// per-shard byte offsets against the saved ones — a mismatch
    /// means the logs were rewritten since the cursor was taken, and
    /// resuming would misclassify changes.
    pub fn resume(state_dir: &Path, cursor_path: &Path) -> Result<ChangeStream, StreamError> {
        let cursor = StreamCursor::load(cursor_path)?;
        let stream = Self::open_at(state_dir, cursor.delivered)?;
        if !cursor.shards.is_empty() && cursor.shards != stream.cursors {
            return Err(StreamError::Desync(format!(
                "cursor {} was taken over different logs: saved shard positions {:?}, \
                 replayed {:?}",
                cursor_path.display(),
                cursor.shards,
                stream.cursors
            )));
        }
        Ok(stream)
    }

    /// Persist this stream's position to `path` (atomically:
    /// tmp + rename, CRC-framed lines). Pair with
    /// [`ChangeStream::resume`].
    pub fn save_cursor(&self, path: &Path) -> io::Result<()> {
        StreamCursor {
            delivered: self.delivered,
            shards: self.cursors.clone(),
        }
        .save(path)
    }

    /// Number of committed snapshots delivered so far; the next batch,
    /// when one is committed, is `cursor_version() + 1`.
    pub fn cursor_version(&self) -> usize {
        self.delivered
    }

    /// Deliver the next committed snapshot's changes, or `Ok(None)`
    /// when the stream has caught up with the manifest.
    pub fn next_batch(&mut self) -> Result<Option<ChangeBatch>, StreamError> {
        let manifest = match ShardManifest::load(&self.state_dir)? {
            ManifestState::Absent => {
                if self.delivered > 0 {
                    return Err(StreamError::Desync(
                        "manifest vanished beneath a partly-delivered stream".to_owned(),
                    ));
                }
                return Ok(None);
            }
            ManifestState::Damaged(reason) => return Err(StreamError::Desync(reason)),
            ManifestState::Loaded(manifest) => manifest,
        };
        if self.cursors.is_empty() {
            self.cursors = vec![TailCursor::default(); manifest.shards];
        } else if self.cursors.len() != manifest.shards {
            return Err(StreamError::Desync(format!(
                "stream follows {} shards but the manifest now says {}",
                self.cursors.len(),
                manifest.shards
            )));
        }
        let Some(expected) = manifest.completed.get(self.delivered) else {
            if self.delivered > manifest.completed.len() {
                return Err(StreamError::Desync(format!(
                    "stream has delivered {} snapshots but the manifest only lists {}",
                    self.delivered,
                    manifest.completed.len()
                )));
            }
            return Ok(None);
        };
        let date = expected.date.clone();

        // The manifest promises this snapshot on every shard (commit
        // order: durable `C` records first, manifest second), so each
        // shard must yield a complete group for exactly this date.
        let mut merged: Vec<(u64, String)> = Vec::new();
        let mut nexts = Vec::with_capacity(self.cursors.len());
        let mut version = None;
        for (shard, cursor) in self.cursors.iter().enumerate() {
            let dir = shard_log_dir(&self.state_dir, shard);
            let group = tail_group(&dir, *cursor).map_err(|err| {
                if err.kind() == io::ErrorKind::InvalidData {
                    StreamError::Desync(format!("shard-{shard}: {err}"))
                } else {
                    StreamError::Io(err)
                }
            })?;
            let Some(group) = group else {
                return Err(StreamError::Desync(format!(
                    "manifest promises snapshot {date} but shard-{shard} has no \
                     complete group at the cursor"
                )));
            };
            if group.date != date {
                return Err(StreamError::Desync(format!(
                    "manifest promises snapshot {date} but shard-{shard} logged {}",
                    group.date
                )));
            }
            version = Some(version.unwrap_or(group.version).min(group.version));
            merged.extend(group.rows.iter().cloned());
            nexts.push(group.next);
        }
        merged.sort_by_key(|(seq, _)| *seq);

        // Cluster-level aggregation in first-touch order.
        let mut changes: Vec<ClusterChange> = Vec::new();
        let mut slot: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        for (seq, ncid) in &merged {
            if let Some(&i) = slot.get(ncid.as_str()) {
                changes[i].rows += 1;
            } else {
                let kind = if self.known.contains(ncid.as_str()) {
                    ChangeKind::Revised
                } else {
                    ChangeKind::Founded
                };
                slot.insert(ncid.clone(), changes.len());
                changes.push(ClusterChange {
                    ncid: ncid.clone(),
                    kind,
                    rows: 1,
                    first_seq: *seq,
                });
            }
        }
        debug_assert!(changes.windows(2).all(|w| w[0].first_seq < w[1].first_seq));

        self.known.extend(changes.iter().map(|c| c.ncid.clone()));
        self.cursors = nexts;
        self.delivered += 1;
        Ok(Some(ChangeBatch {
            index: self.delivered,
            date,
            version: version.unwrap_or(0),
            rows: merged.len() as u64,
            changes,
        }))
    }

    /// Deliver every batch committed but not yet delivered.
    pub fn drain(&mut self) -> Result<Vec<ChangeBatch>, StreamError> {
        let mut batches = Vec::new();
        while let Some(batch) = self.next_batch()? {
            batches.push(batch);
        }
        Ok(batches)
    }
}

/// Fold a window of change batches into the [`PublishDelta`] for a
/// publish of `version` spanning exactly that window.
///
/// A cluster founded anywhere in the window is `founded` (even if
/// later batches also revised it — from the previous publish's point
/// of view it did not exist). A cluster only revised in the window is
/// `revised`. Both lists keep first-seen order and are deduplicated.
pub fn fold_delta(batches: &[ChangeBatch], version: u32) -> PublishDelta {
    let mut founded: Vec<String> = Vec::new();
    let mut revised: Vec<String> = Vec::new();
    let mut founded_set: HashSet<&str> = HashSet::new();
    let mut revised_set: HashSet<&str> = HashSet::new();
    for batch in batches {
        for change in &batch.changes {
            match change.kind {
                ChangeKind::Founded => {
                    if founded_set.insert(change.ncid.as_str()) {
                        founded.push(change.ncid.clone());
                    }
                }
                ChangeKind::Revised => {
                    if !founded_set.contains(change.ncid.as_str())
                        && revised_set.insert(change.ncid.as_str())
                    {
                        revised.push(change.ncid.clone());
                    }
                }
            }
        }
    }
    PublishDelta {
        version,
        date: batches.last().map(|b| b.date.clone()).unwrap_or_default(),
        founded,
        revised,
    }
}
