//! Durable stream cursors: where a [`crate::ChangeStream`] consumer
//! left off, persisted crash-safely.
//!
//! The file format reuses the CRC-32 line framing of
//! [`nc_docstore::persist`] (the same framing the WAL itself uses):
//!
//! ```text
//! S\t<delivered>            one header line
//! T\t<shard>\t<segment>\t<offset>   one line per shard
//! E                          explicit end marker
//! ```
//!
//! Every line carries its checksum, and the `E` marker makes
//! truncation detectable — a torn cursor file is an error, never a
//! silently shortened position. Writes go through tmp + rename, so a
//! crash leaves either the old cursor or the new one.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use nc_docstore::persist::{frame_line, read_framed};
use nc_shard::TailCursor;

/// A saved stream position.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamCursor {
    /// Committed snapshots the consumer has fully processed.
    pub delivered: usize,
    /// Per-shard byte positions at that point (empty when the stream
    /// never saw a manifest). Used as an integrity cross-check on
    /// resume, not as the replay starting point.
    pub shards: Vec<TailCursor>,
}

impl StreamCursor {
    /// Serialize to the framed text format.
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&frame_line(&format!("S\t{}", self.delivered)));
        out.push('\n');
        for (shard, cursor) in self.shards.iter().enumerate() {
            out.push_str(&frame_line(&format!(
                "T\t{shard}\t{}\t{}",
                cursor.segment, cursor.offset
            )));
            out.push('\n');
        }
        out.push_str(&frame_line("E"));
        out.push('\n');
        out
    }

    /// Atomically persist to `path` (tmp + fsync + rename).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(self.render().as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)
    }

    /// Load a cursor written by [`StreamCursor::save`]. Torn, corrupt
    /// or truncated files are `InvalidData` errors.
    pub fn load(path: &Path) -> io::Result<StreamCursor> {
        let text = fs::read_to_string(path)?;
        let bad = |reason: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("stream cursor {}: {reason}", path.display()),
            )
        };
        let mut delivered: Option<usize> = None;
        let mut shards: Vec<TailCursor> = Vec::new();
        let mut ended = false;
        for line in text.lines() {
            let body = read_framed(line).ok_or_else(|| bad("corrupt line"))?;
            if ended {
                return Err(bad("data after end marker"));
            }
            if let Some(rest) = body.strip_prefix("S\t") {
                if delivered.is_some() {
                    return Err(bad("duplicate header"));
                }
                delivered = Some(rest.parse().map_err(|_| bad("bad delivered count"))?);
            } else if let Some(rest) = body.strip_prefix("T\t") {
                let mut fields = rest.split('\t');
                let shard: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| bad("bad shard index"))?;
                let segment: u32 = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| bad("bad segment"))?;
                let offset: u64 = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| bad("bad offset"))?;
                if shard != shards.len() || fields.next().is_some() {
                    return Err(bad("shard lines out of order"));
                }
                shards.push(TailCursor { segment, offset });
            } else if body == "E" {
                ended = true;
            } else {
                return Err(bad("unknown record"));
            }
        }
        if !ended {
            return Err(bad("missing end marker (truncated)"));
        }
        Ok(StreamCursor {
            delivered: delivered.ok_or_else(|| bad("missing header"))?,
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_file(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("nc_stream_cursor_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("cursor")
    }

    #[test]
    fn cursor_round_trips() {
        let path = tmp_file("roundtrip");
        let cursor = StreamCursor {
            delivered: 7,
            shards: vec![
                TailCursor {
                    segment: 0,
                    offset: 123,
                },
                TailCursor {
                    segment: 2,
                    offset: 0,
                },
            ],
        };
        cursor.save(&path).unwrap();
        assert_eq!(StreamCursor::load(&path).unwrap(), cursor);

        // Empty shard list (stream never saw a manifest) round-trips too.
        let empty = StreamCursor::default();
        empty.save(&path).unwrap();
        assert_eq!(StreamCursor::load(&path).unwrap(), empty);
    }

    #[test]
    fn torn_and_corrupt_cursors_are_rejected() {
        let path = tmp_file("torn");
        let cursor = StreamCursor {
            delivered: 3,
            shards: vec![TailCursor {
                segment: 1,
                offset: 44,
            }],
        };
        cursor.save(&path).unwrap();
        let full = fs::read_to_string(&path).unwrap();

        // Drop the end marker: truncation must be detected.
        let torn: String = full.lines().take(2).map(|l| format!("{l}\n")).collect();
        fs::write(&path, torn).unwrap();
        assert!(StreamCursor::load(&path).is_err());

        // Flip a byte inside a framed line: checksum must catch it.
        let corrupt = full.replacen("S\t3", "S\t4", 1);
        fs::write(&path, corrupt).unwrap();
        assert!(StreamCursor::load(&path).is_err());
    }
}
