//! Pollution extension experiment (the paper's future work, Section 8):
//! inject additional errors into a customized dataset and measure how
//! detection quality responds.
//!
//! This demonstrates the combination the paper proposes — real outdated
//! values from the history *plus* injectable errors at will — and
//! provides a dirtiness dial beyond the heterogeneity bands.

use serde::Serialize;

use nc_core::customize::{customize, CustomizeParams};
use nc_core::heterogeneity::Scope;
use nc_core::pollute::{pollute, PollutionConfig, PollutionStats};
use nc_detect::blocking::SortedNeighborhood;
use nc_detect::eval::{best_f1, linspace, score_candidates, threshold_sweep};
use nc_detect::matcher::{MeasureKind, RecordMatcher};
use nc_votergen::config::ErrorRates;

use crate::context::NcContext;
use crate::table3::NcBandSizes;

/// One pollution level's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct Level {
    /// Multiplier applied to the default error rates.
    pub rate_multiplier: f64,
    /// Records after pollution (duplicate synthesis included).
    pub records: usize,
    /// Gold pairs after pollution.
    pub gold_pairs: usize,
    /// Values corrupted by the pass.
    pub corrupted_values: u64,
    /// Synthetic duplicates added.
    pub duplicates_added: u64,
    /// Best F1 per matcher (ME/Lev, JaroWinkler, Jaccard).
    pub best_f1: Vec<f64>,
}

/// The pollution experiment result.
#[derive(Debug, Clone, Serialize)]
pub struct Pollution {
    /// Levels in increasing pollution order (multiplier 0 = untouched).
    pub levels: Vec<Level>,
}

/// Run the experiment over the NC1 band of a built context.
pub fn run(ctx: &NcContext, sizes: &NcBandSizes, seed: u64) -> Pollution {
    let attrs = Scope::Person.attrs();
    let name_group = nc_suite::bridge::name_group_positions(attrs);
    let base = customize(
        &ctx.outcome.store,
        &ctx.het_person,
        &CustomizeParams::nc1(sizes.sample, sizes.output, seed),
    );

    let mut levels = Vec::new();
    for multiplier in [0.0, 2.0, 6.0, 15.0] {
        let mut ds = base.clone();
        let defaults = ErrorRates::default();
        let cfg = PollutionConfig {
            rates: ErrorRates {
                typo: (defaults.typo * multiplier).min(0.4),
                ocr: (defaults.ocr * multiplier).min(0.05),
                phonetic: (defaults.phonetic * multiplier).min(0.2),
                abbreviation: (defaults.abbreviation * multiplier).min(0.2),
                missing: (defaults.missing * multiplier).min(0.1),
                case_flip: (defaults.case_flip * multiplier).min(0.05),
            },
            whitespace_rate: 0.0,
            confusion_rate: (0.004 * multiplier).min(0.2),
            duplicate_rate: if multiplier > 0.0 { 0.1 } else { 0.0 },
            person_attrs_only: true,
            seed: seed ^ 0xDA90,
        };
        let stats: PollutionStats = pollute(&mut ds, &cfg);

        let data = nc_suite::bridge::dataset_from_custom(&ds, attrs);
        let blocker = SortedNeighborhood::multi_pass(data.top_entropy_attrs(5));
        let weights = data.entropy_weights();
        let gold = data.gold_pairs();
        let thresholds = linspace(0.3, 0.98, 35);
        let best: Vec<f64> = MeasureKind::ALL
            .iter()
            .map(|&kind| {
                let matcher =
                    RecordMatcher::with_kind(kind, weights.clone(), name_group.clone());
                let scored = score_candidates(&data, &blocker, &matcher);
                best_f1(&threshold_sweep(&scored, &gold, &thresholds))
                    .map(|p| p.prf.f1)
                    .unwrap_or(0.0)
            })
            .collect();

        levels.push(Level {
            rate_multiplier: multiplier,
            records: data.len(),
            gold_pairs: gold.len(),
            corrupted_values: stats.corrupted_values,
            duplicates_added: stats.duplicates_added,
            best_f1: best,
        });
    }
    Pollution { levels }
}

/// Render the pollution sweep.
pub fn render(p: &Pollution) -> String {
    let mut out = String::new();
    out.push_str("Pollution extension (Section 8): injecting errors into NC1\n");
    out.push_str(
        "rate xN   records  gold pairs  corrupted  added dups     ME/Lev  JaroWink.    Jaccard\n",
    );
    for l in &p.levels {
        out.push_str(&format!(
            "{:>7.1} {:>9} {:>11} {:>10} {:>11} {:>10.3} {:>10.3} {:>10.3}\n",
            l.rate_multiplier,
            l.records,
            l.gold_pairs,
            l.corrupted_values,
            l.duplicates_added,
            l.best_f1[0],
            l.best_f1[1],
            l.best_f1[2],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentScale;

    #[test]
    fn pollution_degrades_detection() {
        let ctx = NcContext::build(&ExperimentScale::tiny());
        let p = run(&ctx, &NcBandSizes { sample: 150, output: 40 }, 1);
        assert_eq!(p.levels.len(), 4);
        let clean = &p.levels[0];
        let dirty = p.levels.last().unwrap();
        assert_eq!(clean.corrupted_values, 0);
        assert!(dirty.corrupted_values > 0);
        assert!(dirty.duplicates_added > 0);
        // Best achievable quality must not improve under pollution.
        let best = |l: &Level| l.best_f1.iter().copied().fold(0.0f64, f64::max);
        assert!(
            best(dirty) <= best(clean) + 0.02,
            "clean {} vs dirty {}",
            best(clean),
            best(dirty)
        );
        assert!(render(&p).contains("Pollution"));
    }
}
