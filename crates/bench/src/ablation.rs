//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. **Blocking**: multi-pass Sorted Neighborhood (window sweep) vs
//!    standard blocking vs full pairwise — pair completeness and
//!    reduction ratio.
//! 2. **Plausibility weighting**: the paper's name-heavy weights (0.5 /
//!    0.15…) vs uniform weighting — separation between sound and
//!    unsound clusters.
//! 3. **Heterogeneity inner measure**: Monge–Elkan vs Generalized
//!    Jaccard (the paper's footnote 14 claims the choice introduces
//!    little bias).

use serde::Serialize;

use nc_core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_core::plausibility::PlausibilityScorer;
use nc_core::record::DedupPolicy;
use nc_datasets::census;
use nc_detect::blocking::{blocking_quality, Blocker, FullPairwise, SortedNeighborhood, StandardBlocking};
use nc_detect::qgram_blocking::QGramBlocking;
use nc_similarity::damerau::DamerauLevenshtein;
use nc_similarity::gen_jaccard::GeneralizedJaccard;
use nc_similarity::monge_elkan::MongeElkan;
use nc_similarity::StringSimilarity;
use nc_votergen::schema::{FIRST_NAME, LAST_NAME, MIDL_NAME};

use crate::context::ExperimentScale;

/// One blocking configuration's quality.
#[derive(Debug, Clone, Serialize)]
pub struct BlockingRow {
    /// Configuration label.
    pub config: String,
    /// Candidate pairs produced.
    pub candidates: usize,
    /// Fraction of gold pairs kept.
    pub pair_completeness: f64,
    /// Fraction of all pairs eliminated.
    pub reduction_ratio: f64,
}

/// Plausibility-weighting ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct PlausibilityAblation {
    /// Mean cluster plausibility of sound clusters (paper weights).
    pub sound_paper: f64,
    /// Mean cluster plausibility of unsound clusters (paper weights).
    pub unsound_paper: f64,
    /// Separation (sound − unsound) with the paper's name-heavy weights.
    pub separation_paper: f64,
    /// Separation with uniform component weights.
    pub separation_uniform: f64,
}

/// Heterogeneity inner-measure ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct MeasureAblation {
    /// Mean |ME − GJ| similarity difference over sampled name pairs.
    pub mean_abs_difference: f64,
    /// Rank correlation proxy: fraction of sampled pair-pairs ordered
    /// identically by both measures.
    pub order_agreement: f64,
}

/// The full ablation report.
#[derive(Debug, Clone, Serialize)]
pub struct Ablation {
    /// Blocking configurations on the Census comparator.
    pub blocking: Vec<BlockingRow>,
    /// Plausibility weighting ablation.
    pub plausibility: PlausibilityAblation,
    /// Heterogeneity inner-measure ablation.
    pub measures: MeasureAblation,
}

fn blocking_rows(seed: u64) -> Vec<BlockingRow> {
    let data = census::generate(seed);
    let keys = data.top_entropy_attrs(5);
    let mut rows = Vec::new();

    let mut push = |label: String, blocker: &dyn Blocker| {
        let c = blocker.candidates(&data);
        let q = blocking_quality(&data, &c);
        rows.push(BlockingRow {
            config: label,
            candidates: q.candidates,
            pair_completeness: q.pair_completeness,
            reduction_ratio: q.reduction_ratio,
        });
    };

    push("full pairwise".into(), &FullPairwise);
    push("standard blocking (last_name)".into(), &StandardBlocking { key: 0 });
    push("q-gram blocking (last_name)".into(), &QGramBlocking::trigrams(0));
    for window in [5, 10, 20, 40] {
        push(
            format!("SNM multi-pass w={window}"),
            &SortedNeighborhood { keys: keys.clone(), window },
        );
    }
    rows
}

fn plausibility_ablation(scale: &ExperimentScale) -> PlausibilityAblation {
    // A registry with aggressive NCID reuse so unsound clusters exist.
    let mut generator = scale.generator();
    generator.removal_rate = 0.12;
    generator.removed_retention_years = 1;
    generator.ncid_reuse_rate = 0.6;
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator,
        policy: DedupPolicy::Trimmed,
        snapshots: scale.snapshots.max(20),
    });
    let store = &outcome.store;
    let scorer = PlausibilityScorer::new();

    // Uniform-weight variant: average the four component scores.
    let uniform = |a: &nc_votergen::schema::Row, b: &nc_votergen::schema::Row| -> f64 {
        (scorer.name_similarity(a, b)
            + PlausibilityScorer::sex_similarity(a, b)
            + PlausibilityScorer::yob_similarity(a, b)
            + PlausibilityScorer::birthplace_similarity(a, b))
            / 4.0
    };
    let cluster_uniform = |rows: &[nc_votergen::schema::Row]| -> f64 {
        let mut min = 1.0f64;
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                min = min.min(uniform(&rows[i], &rows[j]));
            }
        }
        min
    };

    let mut sums = [0.0f64; 4]; // sound/unsound × paper/uniform
    let mut counts = [0u64; 2];
    for (ncid, _) in store.cluster_ids() {
        let rows = store.cluster_rows(&ncid);
        if rows.len() < 2 {
            continue;
        }
        let unsound = outcome.unsound_ncids.contains(&ncid);
        let idx = usize::from(unsound);
        if !unsound && counts[0] >= 400 {
            continue; // cap sound-cluster work
        }
        counts[idx] += 1;
        sums[idx * 2] += scorer.cluster(&rows);
        sums[idx * 2 + 1] += cluster_uniform(&rows);
    }
    let mean = |sum: f64, n: u64| if n == 0 { 0.0 } else { sum / n as f64 };
    let sound_paper = mean(sums[0], counts[0]);
    let sound_uniform = mean(sums[1], counts[0]);
    let unsound_paper = mean(sums[2], counts[1]);
    let unsound_uniform = mean(sums[3], counts[1]);
    PlausibilityAblation {
        sound_paper,
        unsound_paper,
        separation_paper: sound_paper - unsound_paper,
        separation_uniform: sound_uniform - unsound_uniform,
    }
}

fn measure_ablation(scale: &ExperimentScale) -> MeasureAblation {
    let outcome = scale.run(DedupPolicy::Trimmed);
    let store = &outcome.store;
    let me = MongeElkan::new(DamerauLevenshtein::new());
    let gj = GeneralizedJaccard::new(DamerauLevenshtein::new());

    let mut diffs = Vec::new();
    for (ncid, _) in store.cluster_ids().into_iter().take(300) {
        let rows = store.cluster_rows(&ncid);
        for w in rows.windows(2) {
            let name = |r: &nc_votergen::schema::Row| {
                format!(
                    "{} {} {}",
                    r.get(FIRST_NAME),
                    r.get(MIDL_NAME),
                    r.get(LAST_NAME)
                )
            };
            let (a, b) = (name(&w[0]), name(&w[1]));
            diffs.push((me.sim(&a, &b), gj.sim(&a, &b)));
        }
    }
    let mean_abs = if diffs.is_empty() {
        0.0
    } else {
        diffs.iter().map(|(x, y)| (x - y).abs()).sum::<f64>() / diffs.len() as f64
    };
    // Order agreement over consecutive sample pairs.
    let mut agree = 0u64;
    let mut total = 0u64;
    for w in diffs.windows(2) {
        let ((a1, b1), (a2, b2)) = (w[0], w[1]);
        if (a1 - a2).abs() < 1e-12 || (b1 - b2).abs() < 1e-12 {
            continue;
        }
        total += 1;
        if ((a1 < a2) && (b1 < b2)) || ((a1 > a2) && (b1 > b2)) {
            agree += 1;
        }
    }
    MeasureAblation {
        mean_abs_difference: mean_abs,
        order_agreement: if total == 0 { 1.0 } else { agree as f64 / total as f64 },
    }
}

/// Run all three ablations.
pub fn run(scale: &ExperimentScale) -> Ablation {
    Ablation {
        blocking: blocking_rows(scale.seed),
        plausibility: plausibility_ablation(scale),
        measures: measure_ablation(scale),
    }
}

/// Render the ablation report.
pub fn render(a: &Ablation) -> String {
    let mut out = String::new();
    out.push_str("Ablation 1: blocking on the Census comparator\n");
    out.push_str("configuration                       candidates  completeness  reduction\n");
    for r in &a.blocking {
        out.push_str(&format!(
            "{:<35} {:>10} {:>13.3} {:>10.3}\n",
            r.config, r.candidates, r.pair_completeness, r.reduction_ratio
        ));
    }
    out.push_str(&format!(
        "\nAblation 2: plausibility weighting\n\
         sound (paper weights)   : {:.3}\n\
         unsound (paper weights) : {:.3}\n\
         separation paper weights: {:.3}\n\
         separation uniform      : {:.3}\n",
        a.plausibility.sound_paper,
        a.plausibility.unsound_paper,
        a.plausibility.separation_paper,
        a.plausibility.separation_uniform
    ));
    out.push_str(&format!(
        "\nAblation 3: Monge-Elkan vs Generalized Jaccard on name pairs\n\
         mean |ME - GJ|  : {:.4}\n\
         order agreement : {:.3}\n",
        a.measures.mean_abs_difference, a.measures.order_agreement
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_ablation_orders_sensibly() {
        let rows = blocking_rows(1);
        let full = &rows[0];
        assert_eq!(full.pair_completeness, 1.0);
        assert_eq!(full.reduction_ratio, 0.0);
        // SNM rows: candidates grow with the window.
        let snm: Vec<&BlockingRow> = rows.iter().filter(|r| r.config.starts_with("SNM")).collect();
        for w in snm.windows(2) {
            assert!(w[0].candidates <= w[1].candidates);
            assert!(w[0].pair_completeness <= w[1].pair_completeness + 1e-12);
        }
    }

    #[test]
    fn ablation_runs_at_tiny_scale() {
        let a = run(&ExperimentScale::tiny());
        assert!(a.plausibility.separation_paper > 0.0);
        assert!(a.measures.order_agreement > 0.5);
        assert!(render(&a).contains("Ablation 3"));
    }
}
