//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each module implements one experiment and returns a serializable
//! result that the `experiments` binary renders as text and JSON:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — snapshot statistics per year |
//! | [`table2`] | Table 2 — the four dedup policies |
//! | [`figure1`] | Figure 1 — cluster-size distributions |
//! | [`figure4`] | Figures 4a–4c — plausibility & heterogeneity distributions |
//! | [`table3`] | Table 3 — characteristics of all evaluated datasets |
//! | [`table4`] | Table 4 — error-type statistics |
//! | [`figure5`] | Figure 5 — F1 vs threshold per measure and dataset |
//! | [`updates`] | Figure 2 / §5 — incremental updates & reconstruction |
//! | [`ablation`] | Design-choice ablations (blocking, weights, measures) |
//! | [`pollution`] | §8 future-work extension: pollution on top of history |
//!
//! The scale knob ([`context::ExperimentScale`]) trades runtime for
//! fidelity; defaults are laptop-sized. Absolute numbers differ from the
//! paper (the substrate is a simulator), but the shapes reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod context;
pub mod figure1;
pub mod figure4;
pub mod figure5;
pub mod output;
pub mod pollution;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod updates;
