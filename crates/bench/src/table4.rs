//! Table 4: statistics of the different irregularity types for the NC
//! data, Cora and Census.

use serde::Serialize;

use nc_analysis::report::{analyze, AnalysisConfig, ErrorProfile};
use nc_analysis::singleton::SingletonConfig;
use nc_core::heterogeneity::Scope;
use nc_datasets::{census, cora};
use nc_suite::bridge;

use crate::context::NcContext;

/// One rendered cell: a dataset's stat for one error type.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Occurrences in the most common attribute.
    pub count: u64,
    /// Occurrences over all attributes.
    pub total_count: u64,
    /// Normalized rate (by records or pairs).
    pub percentage: f64,
    /// Attribute with the most occurrences.
    pub most_common_attr: Option<String>,
}

/// The full Table 4.
#[derive(Debug, Clone, Serialize)]
pub struct Table4 {
    /// Dataset labels, in column order (NC, Cora, Census).
    pub datasets: Vec<String>,
    /// Records per dataset.
    pub records: Vec<u64>,
    /// Duplicate pairs per dataset.
    pub pairs: Vec<u64>,
    /// error type label → one cell per dataset.
    pub rows: Vec<(String, Vec<Cell>)>,
}

fn cells(profile: &ErrorProfile) -> Vec<(String, Cell)> {
    profile
        .stats
        .iter()
        .map(|s| {
            (
                s.error_type.label().to_owned(),
                Cell {
                    count: s.count,
                    total_count: s.total_count,
                    percentage: s.percentage,
                    most_common_attr: s.most_common_attr.clone(),
                },
            )
        })
        .collect()
}

/// Run the experiment.
pub fn run(ctx: &NcContext, seed: u64) -> Table4 {
    // NC data, person attributes (the paper analyzes the personal
    // attributes of the person-data dataset).
    let attrs = Scope::Person.attrs();
    let nc_data = bridge::dataset_from_store(&ctx.outcome.store, attrs);
    let nc_profile = analyze(&nc_data, &bridge::nc_analysis_config(attrs));

    // Cora: bibliographic; name-like attributes are authors/title.
    let cora_data = cora::generate(seed);
    let cora_cfg = AnalysisConfig {
        singleton: SingletonConfig {
            numeric_ranges: vec![(7, 1900, 2030)], // year
            alpha_attrs: vec![],
        },
        confusable_pairs: vec![(2, 3), (2, 4), (3, 4)], // venue/journal/booktitle
        analyzed_attrs: Vec::new(),
        threads: 0,
    };
    let cora_profile = analyze(&cora_data, &cora_cfg);

    // Census: person data.
    let census_data = census::generate(seed);
    let census_cfg = AnalysisConfig {
        singleton: SingletonConfig {
            numeric_ranges: vec![],
            alpha_attrs: vec![0, 1, 2],
        },
        confusable_pairs: vec![(0, 1), (1, 2), (0, 2)],
        analyzed_attrs: Vec::new(),
        threads: 0,
    };
    let census_profile = analyze(&census_data, &census_cfg);

    let profiles = [&nc_profile, &cora_profile, &census_profile];
    let per_dataset: Vec<Vec<(String, Cell)>> = profiles.iter().map(|p| cells(p)).collect();
    let rows = per_dataset[0]
        .iter()
        .enumerate()
        .map(|(i, (label, _))| {
            (
                label.clone(),
                per_dataset.iter().map(|d| d[i].1.clone()).collect(),
            )
        })
        .collect();

    Table4 {
        datasets: vec!["NC".into(), "Cora".into(), "Census".into()],
        records: profiles.iter().map(|p| p.records).collect(),
        pairs: profiles.iter().map(|p| p.duplicate_pairs).collect(),
        rows,
    }
}

/// Render as the paper's table layout.
pub fn render(t: &Table4) -> String {
    let mut out = String::new();
    out.push_str("Table 4: irregularity statistics\n");
    out.push_str(&format!("{:<18}", "error type"));
    for (i, d) in t.datasets.iter().enumerate() {
        out.push_str(&format!(
            "{:>24}",
            format!("{d} ({} rec/{} pr)", t.records[i], t.pairs[i])
        ));
    }
    out.push('\n');
    for (label, cells) in &t.rows {
        out.push_str(&format!("{label:<18}"));
        for c in cells {
            out.push_str(&format!(
                "{:>15} {:>7.2}%",
                c.count,
                100.0 * c.percentage
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentScale;

    #[test]
    fn table4_shape_matches_paper_claims() {
        let ctx = NcContext::build(&ExperimentScale::tiny());
        let t = run(&ctx, 1);
        assert_eq!(t.datasets.len(), 3);
        assert_eq!(t.rows.len(), 13);

        let get = |label: &str, ds: usize| -> &Cell {
            &t.rows.iter().find(|(l, _)| l == label).unwrap().1[ds]
        };
        // Census's last-name typo percentage far exceeds NC's (Table 4:
        // 65 % vs 0.9 %).
        assert!(get("typo", 2).percentage > get("typo", 0).percentage);
        // NC contains error classes the comparators (almost) lack.
        assert!(get("missing", 0).count > 0);
        let rendered = render(&t);
        assert!(rendered.contains("value confusion"));
        assert!(rendered.contains("Census"));
    }
}
