//! Table 3: characteristics of all evaluated datasets — the three
//! comparators plus the customized NC1/NC2/NC3.

use serde::Serialize;

use nc_core::customize::{customize, CustomizeParams};
use nc_core::heterogeneity::Scope;
use nc_datasets::characteristics::{characteristics, Characteristics};
use nc_datasets::{cddb, census, cora};
use nc_suite::bridge;

use crate::context::NcContext;

/// Serializable Table 3 row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Dataset label.
    pub name: String,
    /// Record count.
    pub records: usize,
    /// Attribute count.
    pub attributes: usize,
    /// Gold duplicate pairs.
    pub duplicate_pairs: usize,
    /// Cluster count.
    pub clusters: usize,
    /// Clusters with ≥ 2 records.
    pub non_singletons: usize,
    /// Largest cluster.
    pub max_cluster_size: usize,
    /// Average cluster size.
    pub avg_cluster_size: f64,
    /// Maximum gold-pair heterogeneity.
    pub max_heterogeneity: f64,
    /// Average gold-pair heterogeneity.
    pub avg_heterogeneity: f64,
}

impl From<Characteristics> for Row {
    fn from(c: Characteristics) -> Self {
        Row {
            name: c.name,
            records: c.records,
            attributes: c.attributes,
            duplicate_pairs: c.duplicate_pairs,
            clusters: c.clusters,
            non_singletons: c.non_singletons,
            max_cluster_size: c.max_cluster_size,
            avg_cluster_size: c.avg_cluster_size,
            max_heterogeneity: c.max_heterogeneity,
            avg_heterogeneity: c.avg_heterogeneity,
        }
    }
}

/// The full Table 3.
#[derive(Debug, Clone, Serialize)]
pub struct Table3 {
    /// One row per dataset.
    pub rows: Vec<Row>,
}

/// Customization sample/output sizes for the NC bands, scaled down from
/// the paper's 100 K / 10 K.
pub struct NcBandSizes {
    /// Clusters sampled from the store.
    pub sample: usize,
    /// Largest reduced clusters kept.
    pub output: usize,
}

/// Run the experiment.
pub fn run(ctx: &NcContext, sizes: &NcBandSizes, seed: u64) -> Table3 {
    let mut rows: Vec<Row> = vec![
        characteristics("Cora", &cora::generate(seed)).into(),
        characteristics("Census", &census::generate(seed)).into(),
        characteristics("CDDB", &cddb::generate(seed)).into(),
    ];

    let attrs = Scope::Person.attrs();
    for (name, params) in [
        ("NC1", CustomizeParams::nc1(sizes.sample, sizes.output, seed)),
        ("NC2", CustomizeParams::nc2(sizes.sample, sizes.output, seed)),
        ("NC3", CustomizeParams::nc3(sizes.sample, sizes.output, seed)),
    ] {
        let ds = customize(&ctx.outcome.store, &ctx.het_person, &params);
        let data = bridge::dataset_from_custom(&ds, attrs);
        rows.push(characteristics(name, &data).into());
    }
    Table3 { rows }
}

/// Render as the paper's table layout.
pub fn render(t: &Table3) -> String {
    let mut out = String::new();
    out.push_str("Table 3: characteristics of evaluated datasets\n");
    out.push_str(&format!(
        "{:<22}{}\n",
        "dataset",
        t.rows
            .iter()
            .map(|r| format!("{:>10}", r.name))
            .collect::<String>()
    ));
    let line = |label: &str, f: &dyn Fn(&Row) -> String| {
        format!(
            "{:<22}{}\n",
            label,
            t.rows.iter().map(|r| format!("{:>10}", f(r))).collect::<String>()
        )
    };
    out.push_str(&line("#records", &|r| r.records.to_string()));
    out.push_str(&line("#attributes", &|r| r.attributes.to_string()));
    out.push_str(&line("#duplicate pairs", &|r| r.duplicate_pairs.to_string()));
    out.push_str(&line("#clusters", &|r| r.clusters.to_string()));
    out.push_str(&line("#non-singletons", &|r| r.non_singletons.to_string()));
    out.push_str(&line("max cluster size", &|r| r.max_cluster_size.to_string()));
    out.push_str(&line("avg cluster size", &|r| format!("{:.2}", r.avg_cluster_size)));
    out.push_str(&line("max heterogeneity", &|r| format!("{:.2}", r.max_heterogeneity)));
    out.push_str(&line("avg heterogeneity", &|r| format!("{:.3}", r.avg_heterogeneity)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentScale;

    #[test]
    fn table3_orders_nc_bands_by_dirtiness() {
        let ctx = NcContext::build(&ExperimentScale::tiny());
        let t = run(&ctx, &NcBandSizes { sample: 150, output: 40 }, 1);
        assert_eq!(t.rows.len(), 6);
        let nc1 = t.rows.iter().find(|r| r.name == "NC1").unwrap();
        let nc2 = t.rows.iter().find(|r| r.name == "NC2").unwrap();
        assert!(
            nc1.avg_heterogeneity <= nc2.avg_heterogeneity + 1e-9,
            "NC1 {} vs NC2 {}",
            nc1.avg_heterogeneity,
            nc2.avg_heterogeneity
        );
        assert!(render(&t).contains("avg heterogeneity"));
    }
}
