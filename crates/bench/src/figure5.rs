//! Figure 5: F1-score vs similarity threshold for the three record
//! matchers on NC1/NC2/NC3 and on the Cora/Census/CDDB comparators.

use serde::Serialize;

use nc_core::customize::{customize, CustomizeParams};
use nc_core::heterogeneity::Scope;
use nc_datasets::{cddb, census, cora};
use nc_detect::blocking::SortedNeighborhood;
use nc_detect::dataset::Dataset;
use nc_detect::eval::{linspace, score_candidates, threshold_sweep};
use nc_detect::matcher::{MeasureKind, RecordMatcher};

use crate::context::NcContext;
use crate::table3::NcBandSizes;

/// One F1 curve.
#[derive(Debug, Clone, Serialize)]
pub struct Curve {
    /// Measure label (ME/Lev, JaroWinkler, Jaccard).
    pub measure: String,
    /// Thresholds.
    pub thresholds: Vec<f64>,
    /// F1 at each threshold.
    pub f1: Vec<f64>,
    /// Best threshold.
    pub best_threshold: f64,
    /// Best F1.
    pub best_f1: f64,
}

/// One panel (one dataset, three curves).
#[derive(Debug, Clone, Serialize)]
pub struct Panel {
    /// Dataset label.
    pub dataset: String,
    /// Records evaluated.
    pub records: usize,
    /// Gold pairs.
    pub gold_pairs: usize,
    /// One curve per matcher.
    pub curves: Vec<Curve>,
}

/// The full Figure 5.
#[derive(Debug, Clone, Serialize)]
pub struct Figure5 {
    /// Six panels: NC1, NC2, NC3, Cora, Census, CDDB.
    pub panels: Vec<Panel>,
}

/// Evaluate the three matchers over one dataset.
pub fn panel(label: &str, data: &Dataset, name_group: Vec<usize>) -> Panel {
    let thresholds = linspace(0.30, 0.98, 35);
    let keys = data.top_entropy_attrs(5.min(data.num_attrs()));
    let blocker = SortedNeighborhood::multi_pass(keys);
    let weights = data.entropy_weights();
    let gold = data.gold_pairs();

    let curves = MeasureKind::ALL
        .iter()
        .map(|&kind| {
            let matcher = RecordMatcher::with_kind(kind, weights.clone(), name_group.clone());
            let scored = score_candidates(data, &blocker, &matcher);
            let sweep = threshold_sweep(&scored, &gold, &thresholds);
            let f1: Vec<f64> = sweep.iter().map(|p| p.prf.f1).collect();
            let (best_idx, best_f1) = f1
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, &v)| (i, v))
                .unwrap_or((0, 0.0));
            Curve {
                measure: kind.label().to_owned(),
                thresholds: thresholds.clone(),
                f1,
                best_threshold: thresholds[best_idx],
                best_f1,
            }
        })
        .collect();

    Panel {
        dataset: label.to_owned(),
        records: data.len(),
        gold_pairs: gold.len(),
        curves,
    }
}

/// Run the full experiment.
pub fn run(ctx: &NcContext, sizes: &NcBandSizes, seed: u64) -> Figure5 {
    let attrs = Scope::Person.attrs();
    let name_group = nc_suite::bridge::name_group_positions(attrs);

    let mut panels = Vec::new();
    for (label, params) in [
        ("NC1", CustomizeParams::nc1(sizes.sample, sizes.output, seed)),
        ("NC2", CustomizeParams::nc2(sizes.sample, sizes.output, seed)),
        ("NC3", CustomizeParams::nc3(sizes.sample, sizes.output, seed)),
    ] {
        let ds = customize(&ctx.outcome.store, &ctx.het_person, &params);
        let data = nc_suite::bridge::dataset_from_custom(&ds, attrs);
        panels.push(panel(label, &data, name_group.clone()));
    }
    panels.push(panel("Cora", &cora::generate(seed), vec![]));
    panels.push(panel("Census", &census::generate(seed), vec![]));
    panels.push(panel("CDDB", &cddb::generate(seed), vec![]));
    Figure5 { panels }
}

/// Render the curves as compact text plots.
pub fn render(f: &Figure5) -> String {
    let mut out = String::new();
    out.push_str("Figure 5: F1 vs similarity threshold\n");
    for p in &f.panels {
        out.push_str(&format!(
            "\n-- {} ({} records, {} gold pairs) --\n",
            p.dataset, p.records, p.gold_pairs
        ));
        out.push_str("threshold  ");
        for c in &p.curves {
            out.push_str(&format!("{:>12}", c.measure));
        }
        out.push('\n');
        let n = p.curves.first().map_or(0, |c| c.thresholds.len());
        for i in (0..n).step_by(2) {
            out.push_str(&format!("  {:>6.2}   ", p.curves[0].thresholds[i]));
            for c in &p.curves {
                out.push_str(&format!("{:>12.3}", c.f1[i]));
            }
            out.push('\n');
        }
        for c in &p.curves {
            out.push_str(&format!(
                "  best {}: F1 {:.3} at threshold {:.2}\n",
                c.measure, c.best_f1, c.best_threshold
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentScale;

    #[test]
    fn figure5_produces_six_panels_with_sane_curves() {
        let ctx = NcContext::build(&ExperimentScale::tiny());
        let f = run(&ctx, &NcBandSizes { sample: 150, output: 40 }, 1);
        assert_eq!(f.panels.len(), 6);
        for p in &f.panels {
            assert_eq!(p.curves.len(), 3, "{}", p.dataset);
            for c in &p.curves {
                assert!(c.f1.iter().all(|&v| (0.0..=1.0).contains(&v)));
                assert!(c.best_f1 >= 0.0);
            }
        }
        // NC1 is nearly clean → some matcher achieves a very high F1.
        let nc1_best = f.panels[0]
            .curves
            .iter()
            .map(|c| c.best_f1)
            .fold(0.0, f64::max);
        assert!(nc1_best > 0.85, "NC1 best {nc1_best}");
        assert!(render(&f).contains("best"));
    }
}
