//! The update process and reproducibility (Figure 2 / Section 5):
//! incremental imports, version publishing and reconstruction.

use serde::Serialize;

use nc_core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_core::record::DedupPolicy;

use crate::context::ExperimentScale;

/// One published version in the report.
#[derive(Debug, Clone, Serialize)]
pub struct VersionRow {
    /// Version number.
    pub version: u32,
    /// Snapshots imported by this version.
    pub snapshots: Vec<String>,
    /// Records after publishing.
    pub records: u64,
    /// Clusters after publishing.
    pub clusters: u64,
    /// Records obtained by reconstructing this version from the final
    /// store (must equal `records`).
    pub reconstructed_records: u64,
}

/// The updates experiment result.
#[derive(Debug, Clone, Serialize)]
pub struct Updates {
    /// One row per published version.
    pub versions: Vec<VersionRow>,
    /// Whether every reconstruction matched its published totals.
    pub reconstruction_ok: bool,
}

/// Run the experiment: one version per snapshot, then reconstruct each.
pub fn run(scale: &ExperimentScale) -> Updates {
    let outcome = TestDataGenerator::run_incremental(GenerationConfig {
        generator: scale.generator(),
        policy: DedupPolicy::Trimmed,
        snapshots: scale.snapshots,
    });
    let mut versions = Vec::new();
    let mut ok = true;
    for v in outcome.versions.history() {
        let rec = outcome.versions.reconstruct(&outcome.store, v.number);
        let reconstructed: u64 = rec.iter().map(|(_, rows)| rows.len() as u64).sum();
        ok &= reconstructed == v.records_total;
        versions.push(VersionRow {
            version: v.number,
            snapshots: v.snapshots.clone(),
            records: v.records_total,
            clusters: v.clusters_total,
            reconstructed_records: reconstructed,
        });
    }
    Updates {
        versions,
        reconstruction_ok: ok,
    }
}

/// Render the version table.
pub fn render(u: &Updates) -> String {
    let mut out = String::new();
    out.push_str("Update process: one published version per snapshot (Figure 2)\n");
    out.push_str("version   records  clusters  reconstructed  snapshots\n");
    for v in &u.versions {
        out.push_str(&format!(
            "{:>7} {:>9} {:>9} {:>14}  {}\n",
            v.version,
            v.records,
            v.clusters,
            v.reconstructed_records,
            v.snapshots.join(",")
        ));
    }
    out.push_str(&format!(
        "reconstruction check: {}\n",
        if u.reconstruction_ok { "OK" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_reconstruct_exactly() {
        let u = run(&ExperimentScale::tiny());
        assert_eq!(u.versions.len(), 6);
        assert!(u.reconstruction_ok);
        for w in u.versions.windows(2) {
            assert!(w[0].records <= w[1].records);
        }
        assert!(render(&u).contains("reconstruction check: OK"));
    }
}
