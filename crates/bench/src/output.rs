//! Rendering helpers shared by the experiment reports.

use std::path::Path;

use serde::Serialize;

/// Render a right-aligned numeric cell of width 10.
pub fn num<T: std::fmt::Display>(x: T) -> String {
    format!("{x:>10}")
}

/// Render a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:>7.1}%", 100.0 * x)
}

/// Render a fixed-precision float.
pub fn f3(x: f64) -> String {
    format!("{x:>8.3}")
}

/// An ASCII bar for inline histograms (length proportional to `frac`).
pub fn bar(frac: f64, width: usize) -> String {
    let n = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    "#".repeat(n)
}

/// Write a serializable result as pretty JSON under `dir/name.json`.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Histogram bins rendered as `lo..hi count bar` lines.
pub fn render_histogram(counts: &[u64], bins: usize, out: &mut String) {
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in counts.iter().enumerate() {
        let lo = i as f64 / bins as f64;
        let hi = (i + 1) as f64 / bins as f64;
        out.push_str(&format!(
            "  [{lo:>4.2}, {hi:>4.2}) {c:>9} {}\n",
            bar(c as f64 / max as f64, 40)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(num(42), "        42");
        assert_eq!(pct(0.765), "   76.5%");
        assert_eq!(f3(0.1234), "   0.123");
        assert_eq!(bar(0.5, 10), "#####");
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(-1.0, 4), "");
    }

    #[test]
    fn histogram_rendering() {
        let mut s = String::new();
        render_histogram(&[1, 3, 0], 3, &mut s);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("[0.33, 0.67)"));
    }

    #[test]
    fn json_round_trip() {
        #[derive(serde::Serialize)]
        struct T {
            // Only read through the derived serializer.
            #[allow(dead_code)]
            x: u32,
        }
        let dir = std::env::temp_dir().join(format!("nc_bench_out_{}", std::process::id()));
        write_json(&dir, "t", &T { x: 7 }).unwrap();
        let content = std::fs::read_to_string(dir.join("t.json")).unwrap();
        assert!(content.contains("\"x\": 7"));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
