//! Figure 1: number of duplicate clusters per cluster size — (a) a
//! single snapshot vs (b) the whole archive, for all attributes and for
//! person data only.

use std::collections::BTreeMap;

use serde::Serialize;

use nc_core::cluster::ClusterStore;
use nc_core::import::import_snapshot;
use nc_core::record::DedupPolicy;
use nc_core::stats::cluster_size_histogram;
use nc_votergen::registry::Registry;
use nc_votergen::snapshot::standard_calendar;

use crate::context::ExperimentScale;
use crate::output::bar;

/// One histogram series.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Series label.
    pub label: String,
    /// cluster size → number of clusters.
    pub histogram: BTreeMap<usize, u64>,
}

/// The Figure 1 result.
#[derive(Debug, Clone, Serialize)]
pub struct Figure1 {
    /// (a) single snapshot; (b) full archive, all attributes; (c) full
    /// archive, person attributes only.
    pub series: Vec<Series>,
}

/// Run the experiment.
pub fn run(scale: &ExperimentScale) -> Figure1 {
    // (a) a single snapshot (the paper found essentially no duplicates
    // within one snapshot — clusters of size 1 dominate).
    let mut registry = Registry::new(scale.generator());
    let calendar = standard_calendar();
    let snap = registry.generate_snapshot(&calendar[0]);
    let mut single = ClusterStore::new();
    import_snapshot(&mut single, &snap, DedupPolicy::Trimmed, 1);

    // (b)+(c) the full archive under both attribute scopes.
    let all = scale.run(DedupPolicy::Trimmed);
    let person = scale.run(DedupPolicy::PersonData);

    Figure1 {
        series: vec![
            Series {
                label: "single snapshot".into(),
                histogram: cluster_size_histogram(&single),
            },
            Series {
                label: "all snapshots, all attributes".into(),
                histogram: cluster_size_histogram(&all.store),
            },
            Series {
                label: "all snapshots, person data".into(),
                histogram: cluster_size_histogram(&person.store),
            },
        ],
    }
}

/// Render the histograms.
pub fn render(f: &Figure1) -> String {
    let mut out = String::new();
    out.push_str("Figure 1: #clusters per cluster size\n");
    for s in &f.series {
        out.push_str(&format!("\n-- {} --\n", s.label));
        let max = s.histogram.values().copied().max().unwrap_or(1);
        for (&size, &count) in &s.histogram {
            out.push_str(&format!(
                "  size {size:>3}: {count:>8} {}\n",
                bar(count as f64 / max as f64, 40)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_snapshot_is_mostly_singletons() {
        let f = run(&ExperimentScale::tiny());
        assert_eq!(f.series.len(), 3);
        let single = &f.series[0].histogram;
        let singletons = single.get(&1).copied().unwrap_or(0);
        let total: u64 = single.values().sum();
        assert!(singletons as f64 > total as f64 * 0.95, "{singletons}/{total}");
        // Full archive grows real clusters.
        let full = &f.series[1].histogram;
        assert!(full.keys().any(|&s| s >= 2));
        // Person-only scope compresses further: its average size is <=
        // the all-attribute average.
        let avg = |h: &BTreeMap<usize, u64>| {
            let records: u64 = h.iter().map(|(&s, &c)| s as u64 * c).sum();
            let clusters: u64 = h.values().sum();
            records as f64 / clusters as f64
        };
        assert!(avg(&f.series[2].histogram) <= avg(&f.series[1].histogram) + 1e-9);
        assert!(render(&f).contains("single snapshot"));
    }
}
