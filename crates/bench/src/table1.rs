//! Table 1: snapshot statistics per year.

use serde::Serialize;

use nc_core::record::DedupPolicy;
use nc_core::stats::{snapshot_table, YearStats};

use crate::context::ExperimentScale;
use crate::output::{num, pct};

/// Serializable Table 1 row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Calendar year.
    pub year: i32,
    /// Snapshots that year.
    pub snapshots: usize,
    /// Total rows.
    pub total_rows: u64,
    /// New records.
    pub new_records: u64,
    /// New objects (clusters).
    pub new_objects: u64,
    /// new_records / total_rows.
    pub new_record_rate: f64,
    /// new_objects / new_records.
    pub new_object_rate: f64,
}

impl From<&YearStats> for Row {
    fn from(y: &YearStats) -> Self {
        Row {
            year: y.year,
            snapshots: y.snapshots,
            total_rows: y.total_rows,
            new_records: y.new_records,
            new_objects: y.new_objects,
            new_record_rate: y.new_record_rate(),
            new_object_rate: y.new_object_rate(),
        }
    }
}

/// The full Table 1 result.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// Per-year rows.
    pub rows: Vec<Row>,
    /// Grand totals.
    pub total: Row,
}

/// Run the experiment.
pub fn run(scale: &ExperimentScale) -> Table1 {
    let outcome = scale.run(DedupPolicy::Trimmed);
    let years = snapshot_table(&outcome.imports);
    let rows: Vec<Row> = years.iter().map(Row::from).collect();
    let total_rows: u64 = rows.iter().map(|r| r.total_rows).sum();
    let new_records: u64 = rows.iter().map(|r| r.new_records).sum();
    let new_objects: u64 = rows.iter().map(|r| r.new_objects).sum();
    let total = Row {
        year: 0,
        snapshots: rows.iter().map(|r| r.snapshots).sum(),
        total_rows,
        new_records,
        new_objects,
        new_record_rate: if total_rows == 0 {
            0.0
        } else {
            new_records as f64 / total_rows as f64
        },
        new_object_rate: if new_records == 0 {
            0.0
        } else {
            new_objects as f64 / new_records as f64
        },
    };
    Table1 { rows, total }
}

/// Render as the paper's table layout.
pub fn render(t: &Table1) -> String {
    let mut out = String::new();
    out.push_str("Table 1: snapshot statistics of the (synthetic) voter archive\n");
    out.push_str(
        "year   #snaps  total rows  new records  new objects  new rec rate  new obj rate\n",
    );
    for r in &t.rows {
        out.push_str(&format!(
            "{:<6} {:>6} {} {} {}   {}  {}\n",
            r.year,
            r.snapshots,
            num(r.total_rows),
            num(r.new_records),
            num(r.new_objects),
            pct(r.new_record_rate),
            pct(r.new_object_rate),
        ));
    }
    out.push_str(&format!(
        "total  {:>6} {} {} {}   {}  {}\n",
        t.total.snapshots,
        num(t.total.total_rows),
        num(t.total.new_records),
        num(t.total.new_objects),
        pct(t.total.new_record_rate),
        pct(t.total.new_object_rate),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_table1_has_expected_shape() {
        let t = run(&ExperimentScale::tiny());
        assert_eq!(t.rows[0].year, 2008);
        assert!((t.rows[0].new_record_rate - 1.0).abs() < 1e-12);
        assert_eq!(
            t.total.total_rows,
            t.rows.iter().map(|r| r.total_rows).sum::<u64>()
        );
        let rendered = render(&t);
        assert!(rendered.contains("2008"));
        assert!(rendered.contains("total"));
    }
}
