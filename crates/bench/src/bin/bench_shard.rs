//! Standalone shard-engine benchmark: parallel ingest throughput at
//! shards=1 vs shards=N, publish latency (cold, incremental, no-op) and
//! WAL replay time.
//!
//! ```sh
//! cargo run --release -p nc-bench --bin bench_shard -- \
//!     --pop 1200 --snapshots 8 --shards 4 --out BENCH_shard.json
//! ```
//!
//! The in-memory comparison runs the same `ShardedStore` fan-out at
//! both shard counts (shards=1 is the inline no-channel path), so the
//! speedup isolates what partitioning buys. The engine numbers add the
//! write-ahead log: full archive ingest from TSV files, then a timed
//! reopen that replays every committed row. The JSON is written by hand
//! so the binary has no serialization dependency.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use nc_core::record::DedupPolicy;
use nc_core::tsv::{self, ImportOptions};
use nc_shard::{ShardEngine, ShardEngineConfig, ShardedStore};
use nc_votergen::config::GeneratorConfig;
use nc_votergen::registry::Registry;
use nc_votergen::snapshot::{standard_calendar, Snapshot};

struct Args {
    population: usize,
    snapshots: usize,
    shards: usize,
    seed: u64,
    reps: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        population: 1_200,
        snapshots: 8,
        shards: 4,
        seed: 2021,
        reps: 5,
        out: PathBuf::from("BENCH_shard.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--pop" => parsed.population = value().parse().expect("--pop takes a number"),
            "--snapshots" => parsed.snapshots = value().parse().expect("--snapshots takes a number"),
            "--shards" => parsed.shards = value().parse().expect("--shards takes a number"),
            "--seed" => parsed.seed = value().parse().expect("--seed takes a number"),
            "--reps" => parsed.reps = value().parse().expect("--reps takes a number"),
            "--out" => parsed.out = PathBuf::from(value()),
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: bench_shard [--pop N] [--snapshots N] [--shards N] [--seed N] [--reps N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn tmp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("nc_bench_shard_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// One full in-memory ingest of `snapshots` into a fresh store with
/// `shards` partitions, returning the wall time.
fn one_memory_ingest(snapshots: &[Snapshot], shards: usize) -> f64 {
    let mut store = ShardedStore::new(shards);
    let start = Instant::now();
    for snap in snapshots {
        store.ingest_snapshot(snap, DedupPolicy::Trimmed, 1);
    }
    start.elapsed().as_secs_f64()
}

/// Best-of-`reps` ingest time for shards=1 and shards=n. The reps are
/// interleaved (1, n, 1, n, …) after one warmup each, so clock drift
/// and cache warmth bias neither side.
fn time_memory_ingest(snapshots: &[Snapshot], n: usize, reps: usize) -> (f64, f64) {
    one_memory_ingest(snapshots, 1);
    one_memory_ingest(snapshots, n);
    let mut one = Vec::with_capacity(reps);
    let mut many = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        one.push(one_memory_ingest(snapshots, 1));
        many.push(one_memory_ingest(snapshots, n));
    }
    (best(&one), best(&many))
}

fn engine_config(shards: usize) -> ShardEngineConfig {
    ShardEngineConfig::new(shards, DedupPolicy::Trimmed, 1)
}

fn open_engine(state: &Path, shards: usize) -> ShardEngine {
    ShardEngine::open(state, engine_config(shards)).expect("open shard engine")
}

fn main() {
    let args = parse_args();
    eprintln!(
        "generating workload: population {}, {} snapshots, seed {}…",
        args.population, args.snapshots, args.seed
    );
    let mut registry = Registry::new(GeneratorConfig {
        seed: args.seed,
        initial_population: args.population,
        ..Default::default()
    });
    let calendar = standard_calendar();
    assert!(
        args.snapshots < calendar.len(),
        "--snapshots must be below {} (one more is ingested incrementally)",
        calendar.len()
    );
    let snapshots: Vec<Snapshot> = calendar
        .iter()
        .take(args.snapshots)
        .map(|info| registry.generate_snapshot(info))
        .collect();
    let rows: u64 = snapshots.iter().map(|s| s.rows.len() as u64).sum();

    let archive = tmp_dir("archive");
    for snap in &snapshots {
        tsv::write_snapshot(&archive, snap).expect("write snapshot");
    }

    // In-memory fan-out: shards=1 (inline) vs shards=N (channel pool).
    eprintln!("ingest: {rows} rows, shards=1 vs shards={}…", args.shards);
    let (one_secs, n_secs) = time_memory_ingest(&snapshots, args.shards, args.reps);
    let one_rate = rows as f64 / one_secs;
    let n_rate = rows as f64 / n_secs;

    // WAL-backed engine: archive ingest, publish, and a timed replay.
    let state = tmp_dir("state");
    let mut engine = open_engine(&state, args.shards);
    let start = Instant::now();
    let outcome = engine
        .ingest_archive(&archive, &ImportOptions::strict())
        .expect("engine ingest");
    let engine_secs = start.elapsed().as_secs_f64();
    assert_eq!(outcome.stats.len(), args.snapshots);

    let start = Instant::now();
    let cold = engine.publish(1);
    let publish_cold = start.elapsed().as_secs_f64();
    let clusters = cold.cluster_count();
    let records = cold.record_count();

    let start = Instant::now();
    let noop = engine.publish(1);
    let publish_noop = start.elapsed().as_secs_f64();
    assert_eq!(noop.clusters(), cold.clusters());

    // Incremental: one more snapshot dirties a subset of the shards.
    let extra = registry.generate_snapshot(&calendar[args.snapshots]);
    tsv::write_snapshot(&archive, &extra).expect("write extra snapshot");
    engine
        .ingest_archive(&archive, &ImportOptions::strict())
        .expect("engine ingest extra");
    let start = Instant::now();
    engine.publish(2);
    let publish_incremental = start.elapsed().as_secs_f64();
    drop(engine);

    eprintln!("replaying WAL…");
    let start = Instant::now();
    let replayed = open_engine(&state, args.shards);
    let replay_secs = start.elapsed().as_secs_f64();
    assert!(replayed.recovery().is_clean(), "replay must be clean");
    let replayed_rows = replayed.store().rows_imported();
    drop(replayed);

    fs::remove_dir_all(&archive).ok();
    fs::remove_dir_all(&state).ok();

    let speedup = n_rate / one_rate;
    println!(
        "ingest: 1 shard {one_rate:.0} rows/s, {} shards {n_rate:.0} rows/s ({speedup:.2}x)\n\
         engine ingest (WAL on): {:.0} rows/s\n\
         publish: cold {:.1} ms, incremental {:.1} ms, no-op {:.1} ms\n\
         replay: {replayed_rows} rows in {:.1} ms ({:.0} rows/s)",
        args.shards,
        rows as f64 / engine_secs,
        publish_cold * 1e3,
        publish_incremental * 1e3,
        publish_noop * 1e3,
        replay_secs * 1e3,
        replayed_rows as f64 / replay_secs,
    );

    // Hand-rolled JSON: flat object, stable key order.
    let json = format!(
        concat!(
            "{{\n",
            "  \"population\": {},\n",
            "  \"snapshots\": {},\n",
            "  \"shards\": {},\n",
            "  \"seed\": {},\n",
            "  \"rows\": {},\n",
            "  \"clusters\": {},\n",
            "  \"records\": {},\n",
            "  \"ingest_rows_per_sec_one_shard\": {:.1},\n",
            "  \"ingest_rows_per_sec_sharded\": {:.1},\n",
            "  \"ingest_speedup\": {:.4},\n",
            "  \"engine_ingest_rows_per_sec\": {:.1},\n",
            "  \"publish_cold_secs\": {:.6},\n",
            "  \"publish_incremental_secs\": {:.6},\n",
            "  \"publish_noop_secs\": {:.6},\n",
            "  \"wal_replay_secs\": {:.6},\n",
            "  \"wal_replay_rows_per_sec\": {:.1}\n",
            "}}\n"
        ),
        args.population,
        args.snapshots,
        args.shards,
        args.seed,
        rows,
        clusters,
        records,
        one_rate,
        n_rate,
        speedup,
        rows as f64 / engine_secs,
        publish_cold,
        publish_incremental,
        publish_noop,
        replay_secs,
        replayed_rows as f64 / replay_secs,
    );
    std::fs::write(&args.out, json).expect("write benchmark json");
    eprintln!("wrote {}", args.out.display());
}
