//! Candidate-generation scaling benchmark: the indexed blocking
//! pipeline versus the multi-pass Sorted-Neighborhood baseline.
//!
//! ```sh
//! cargo run --release -p nc-bench --bin bench_detect -- \
//!     --scales 10000,100000,1000000 --out BENCH_detect.json
//! ```
//!
//! One registry is generated at the largest requested scale; each
//! smaller scale measures a record prefix of the same dataset, so the
//! curve varies only `n`. Per scale the harness reports wall time,
//! distinct candidate count and pair completeness for both pipelines,
//! plus log-log growth exponents between consecutive scales (an
//! exponent below 1 means sub-linear growth). The indexed pipeline's
//! parallel probe is asserted bit-identical to the sequential probe
//! before any number is reported. The JSON is written by hand so the
//! binary has no serialization dependency.

use std::path::PathBuf;
use std::time::Instant;

use nc_core::heterogeneity::Scope;
use nc_core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_core::record::DedupPolicy;
use nc_detect::blocking::{SortedNeighborhood, StreamBlocker};
use nc_detect::dataset::{Dataset, Pair};
use nc_detect::index::{CompositeBlocker, IndexedQGramBlocker, IndexedTokenBlocker, SoundexBlocker};
use nc_detect::sink::PairCollector;
use nc_suite::bridge::dataset_from_store;
use nc_votergen::config::GeneratorConfig;

struct Args {
    scales: Vec<usize>,
    population: usize,
    snapshots: usize,
    seed: u64,
    threads: usize,
    reps: usize,
    keys: usize,
    cap: usize,
    window: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        scales: vec![10_000, 100_000, 1_000_000],
        population: 0, // derived from the largest scale
        snapshots: 12,
        seed: 2021,
        threads: 0,
        reps: 1,
        keys: 5,
        cap: 192,
        window: 20,
        out: PathBuf::from("BENCH_detect.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--scales" => {
                parsed.scales = value()
                    .split(',')
                    .map(|s| s.trim().parse().expect("--scales takes numbers"))
                    .collect();
                parsed.scales.sort_unstable();
                parsed.scales.dedup();
                assert!(!parsed.scales.is_empty(), "--scales needs at least one value");
            }
            "--pop" => parsed.population = value().parse().expect("--pop takes a number"),
            "--snapshots" => parsed.snapshots = value().parse().expect("--snapshots takes a number"),
            "--seed" => parsed.seed = value().parse().expect("--seed takes a number"),
            "--threads" => parsed.threads = value().parse().expect("--threads takes a number"),
            "--reps" => parsed.reps = value().parse().expect("--reps takes a number"),
            "--keys" => parsed.keys = value().parse().expect("--keys takes a number"),
            "--cap" => parsed.cap = value().parse().expect("--cap takes a number"),
            "--window" => parsed.window = value().parse().expect("--window takes a number"),
            "--out" => parsed.out = PathBuf::from(value()),
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!(
                    "usage: bench_detect [--scales N,N,..] [--pop N] [--snapshots N] [--seed N] \
                     [--threads N] [--reps N] [--keys N] [--cap N] [--window N] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// The indexed candidate pipeline under measurement: capped standard
/// blocking (one token index over every key), capped trigram indexes
/// per key for typo robustness, and phonetic buckets on the two name
/// attributes. Every component uses an *absolute* document-frequency
/// cap, so the fraction of terms that still emit pairs shrinks as `n`
/// grows — the mechanism behind the sub-linear curve.
fn indexed_pipeline(keys: &[usize], cap: usize, threads: usize) -> CompositeBlocker {
    let mut passes: Vec<Box<dyn StreamBlocker + Send + Sync>> = Vec::new();
    let mut tokens = IndexedTokenBlocker::any_token(keys.to_vec(), cap);
    tokens.threads = threads;
    passes.push(Box::new(tokens));
    for &key in keys {
        let mut grams = IndexedQGramBlocker::trigrams_capped(key, cap);
        grams.threads = threads;
        passes.push(Box::new(grams));
    }
    // Person-scope positions 0 and 1 are last_name and first_name.
    for key in [0usize, 1] {
        let mut phonetic = SoundexBlocker::new(key, cap);
        phonetic.threads = threads;
        passes.push(Box::new(phonetic));
    }
    CompositeBlocker::new(passes)
}

/// Best-of-`reps` wall time of one streamed candidate-generation pass,
/// returning the sorted distinct candidate list of the last rep.
fn time_candidates(
    reps: usize,
    data: &Dataset,
    blocker: &dyn StreamBlocker,
) -> (f64, Vec<Pair>) {
    let mut best = f64::INFINITY;
    let mut pairs = Vec::new();
    for _ in 0..reps.max(1) {
        let mut collector = PairCollector::new();
        let start = Instant::now();
        blocker.stream_into(data, &mut collector);
        let sorted = collector.finish();
        best = best.min(start.elapsed().as_secs_f64());
        pairs = sorted;
    }
    (best, pairs)
}

/// Fraction of gold pairs present in a sorted candidate list.
fn completeness(gold: &[Pair], sorted_candidates: &[Pair]) -> f64 {
    if gold.is_empty() {
        return 1.0;
    }
    let hits = gold
        .iter()
        .filter(|p| sorted_candidates.binary_search(p).is_ok())
        .count();
    hits as f64 / gold.len() as f64
}

struct ScalePoint {
    records: usize,
    gold: usize,
    snm_secs: f64,
    snm_candidates: usize,
    snm_completeness: f64,
    indexed_secs: f64,
    indexed_candidates: usize,
    indexed_completeness: f64,
}

/// log-log slope between two curve points; < 1 means sub-linear.
fn growth_exponent(n1: usize, v1: f64, n2: usize, v2: f64) -> f64 {
    (v2.max(1e-12) / v1.max(1e-12)).ln() / (n2 as f64 / n1 as f64).ln()
}

fn main() {
    let args = parse_args();
    let max_scale = *args.scales.last().expect("at least one scale");
    // The generator yields ~4.3-4.6 records per initial resident over
    // 12 snapshots; size the population so the registry covers the
    // largest scale.
    let population = if args.population > 0 {
        args.population
    } else {
        (max_scale as f64 / 4.0).ceil() as usize
    };
    eprintln!(
        "generating registry: population {population}, {} snapshots, seed {}…",
        args.snapshots, args.seed
    );
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed: args.seed,
            initial_population: population,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots: args.snapshots,
    });
    let full = dataset_from_store(&outcome.store, Scope::Person.attrs());
    eprintln!("registry holds {} records", full.len());

    let mut points: Vec<ScalePoint> = Vec::new();
    for &scale in &args.scales {
        let n = scale.min(full.len());
        if n < scale {
            eprintln!("registry smaller than scale {scale}; clamping to {n}");
        }
        let data = Dataset {
            attr_names: full.attr_names.clone(),
            records: full.records[..n].to_vec(),
        };
        let keys = data.top_entropy_attrs(args.keys.min(data.num_attrs()));
        let mut gold: Vec<Pair> = data.gold_pairs().into_iter().collect();
        gold.sort_unstable();
        eprintln!("scale {n}: keys {keys:?}, {} gold pairs", gold.len());

        let snm = SortedNeighborhood { keys: keys.clone(), window: args.window };
        let (snm_secs, snm_pairs) = time_candidates(args.reps, &data, &snm);
        let snm_completeness = completeness(&gold, &snm_pairs);
        eprintln!(
            "  snm: {snm_secs:.3} s, {} candidates, completeness {snm_completeness:.4}",
            snm_pairs.len()
        );

        // Parallel output must be bit-identical to sequential before
        // any measurement of the indexed pipeline counts: same pairs in
        // the same order, even on a chunking that differs from the
        // probe's own.
        let mut seq_emission: Vec<Pair> = Vec::new();
        indexed_pipeline(&keys, args.cap, 1).stream_into(&data, &mut seq_emission);
        let mut par_emission: Vec<Pair> = Vec::new();
        indexed_pipeline(&keys, args.cap, args.threads.max(2)).stream_into(&data, &mut par_emission);
        assert_eq!(
            seq_emission, par_emission,
            "parallel probe diverged from sequential at scale {n}"
        );
        drop(seq_emission);
        drop(par_emission);

        let indexed = indexed_pipeline(&keys, args.cap, args.threads);
        let (indexed_secs, indexed_pairs) = time_candidates(args.reps, &data, &indexed);
        let indexed_completeness = completeness(&gold, &indexed_pairs);
        eprintln!(
            "  indexed: {indexed_secs:.3} s, {} candidates, completeness {indexed_completeness:.4}",
            indexed_pairs.len()
        );

        points.push(ScalePoint {
            records: n,
            gold: gold.len(),
            snm_secs,
            snm_candidates: snm_pairs.len(),
            snm_completeness,
            indexed_secs,
            indexed_candidates: indexed_pairs.len(),
            indexed_completeness,
        });
    }

    let hardware = std::thread::available_parallelism().map_or(1, |t| t.get());
    let threads = if args.threads == 0 { hardware } else { args.threads };
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"population\": {population},\n"));
    json.push_str(&format!("  \"snapshots\": {},\n", args.snapshots));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"reps\": {},\n", args.reps.max(1)));
    json.push_str(&format!("  \"keys\": {},\n", args.keys));
    json.push_str(&format!("  \"stop_cap\": {},\n", args.cap));
    json.push_str(&format!("  \"snm_window\": {},\n", args.window));
    json.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    json.push_str(&format!("  \"parallel_threads\": {threads},\n"));
    json.push_str("  \"scales\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"records\": {},\n",
                "      \"gold_pairs\": {},\n",
                "      \"snm_secs\": {:.6},\n",
                "      \"snm_candidates\": {},\n",
                "      \"snm_completeness\": {:.6},\n",
                "      \"indexed_secs\": {:.6},\n",
                "      \"indexed_candidates\": {},\n",
                "      \"indexed_completeness\": {:.6}\n",
                "    }}{}\n"
            ),
            p.records,
            p.gold,
            p.snm_secs,
            p.snm_candidates,
            p.snm_completeness,
            p.indexed_secs,
            p.indexed_candidates,
            p.indexed_completeness,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"growth_exponents\": [\n");
    for (i, w) in points.windows(2).enumerate() {
        let (a, b) = (&w[0], &w[1]);
        json.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"from_records\": {},\n",
                "      \"to_records\": {},\n",
                "      \"snm_time\": {:.4},\n",
                "      \"indexed_time\": {:.4},\n",
                "      \"snm_candidates\": {:.4},\n",
                "      \"indexed_candidates\": {:.4}\n",
                "    }}{}\n"
            ),
            a.records,
            b.records,
            growth_exponent(a.records, a.snm_secs, b.records, b.snm_secs),
            growth_exponent(a.records, a.indexed_secs, b.records, b.indexed_secs),
            growth_exponent(a.records, a.snm_candidates as f64, b.records, b.snm_candidates as f64),
            growth_exponent(
                a.records,
                a.indexed_candidates as f64,
                b.records,
                b.indexed_candidates as f64
            ),
            if i + 2 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"bit_identical\": true,\n");
    json.push_str(
        "  \"note\": \"growth exponents are log-log slopes between consecutive scales; \
         < 1.0 means sub-linear. Parallel speedup is ~1.0x on this single-core container; \
         the headline result is the scaling-in-n curve, with the parallel probe asserted \
         bit-identical to the sequential one at every scale.\"\n",
    );
    json.push_str("}\n");
    std::fs::write(&args.out, &json).expect("write benchmark json");
    eprintln!("wrote {}", args.out.display());

    for w in points.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        println!(
            "{} -> {}: time exponent snm {:.3} vs indexed {:.3}; candidates snm {:.3} vs indexed {:.3}",
            a.records,
            b.records,
            growth_exponent(a.records, a.snm_secs, b.records, b.snm_secs),
            growth_exponent(a.records, a.indexed_secs, b.records, b.indexed_secs),
            growth_exponent(a.records, a.snm_candidates as f64, b.records, b.snm_candidates as f64),
            growth_exponent(
                a.records,
                a.indexed_candidates as f64,
                b.records,
                b.indexed_candidates as f64
            ),
        );
    }
}
