//! Carve-by-query benchmark: indexed planning vs a forced full scan,
//! plus warm-cache query-carve latency through the serve engine.
//!
//! ```sh
//! cargo run --release -p nc-bench --bin bench_query -- \
//!     --pop 25000 --snapshots 12 --out BENCH_query.json
//! ```
//!
//! The store is generated at ≥100k records (gated by `--min-records`),
//! then a selective `size >= T` query — `T` chosen from the actual size
//! distribution so roughly 1% of clusters qualify — is executed both
//! ways. The run *asserts*, not just reports: the plan never falls back
//! to a full scan, both paths produce byte-identical documents, the
//! indexed path beats the scan by at least `--min-speedup`, and warm
//! cache replays of the sampled carve are bit-identical. The JSON is
//! written by hand so the binary has no serialization dependency.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use nc_core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_core::record::DedupPolicy;
use nc_query::{execute, plan_query, CarveQuery, ExecOptions};
use nc_serve::{CacheStatus, ServeConfig, ServeSnapshot, ServeState, SnapshotRegistry};
use nc_votergen::config::GeneratorConfig;

struct Args {
    population: usize,
    snapshots: usize,
    seed: u64,
    reps: usize,
    min_records: u64,
    min_speedup: f64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        population: 25_000,
        snapshots: 12,
        seed: 2021,
        reps: 10,
        min_records: 100_000,
        min_speedup: 2.0,
        out: PathBuf::from("BENCH_query.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--pop" => parsed.population = value().parse().expect("--pop takes a number"),
            "--snapshots" => parsed.snapshots = value().parse().expect("--snapshots takes a number"),
            "--seed" => parsed.seed = value().parse().expect("--seed takes a number"),
            "--reps" => parsed.reps = value().parse().expect("--reps takes a number"),
            "--min-records" => {
                parsed.min_records = value().parse().expect("--min-records takes a number")
            }
            "--min-speedup" => {
                parsed.min_speedup = value().parse().expect("--min-speedup takes a number")
            }
            "--out" => parsed.out = PathBuf::from(value()),
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: bench_query [--pop N] [--snapshots N] [--seed N] [--reps N] [--min-records N] [--min-speedup X] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len().max(1) as f64
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() {
    let args = parse_args();
    eprintln!(
        "generating registry: population {}, {} snapshots, seed {}…",
        args.population, args.snapshots, args.seed
    );
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed: args.seed,
            initial_population: args.population,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots: args.snapshots,
    });
    let store = &outcome.store;
    let clusters = store.cluster_count();
    let records = store.record_count();
    assert!(
        records >= args.min_records,
        "store too small for the gate: {records} records < {} (raise --pop or lower --min-records)",
        args.min_records
    );

    let registry = SnapshotRegistry::new(ServeSnapshot::capture(store, 1));
    let state = Arc::new(ServeState::new(Arc::new(registry), ServeConfig::default()));
    let snapshot = state.registry().current();
    let catalog = Arc::clone(snapshot.catalog());

    // Pick a selectivity threshold from the real size distribution:
    // the smallest T with at most ~1% of clusters at size >= T.
    let mut sizes: Vec<usize> = snapshot
        .store()
        .clusters()
        .iter()
        .map(|(_, rows)| rows.len())
        .collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let threshold = sizes[(clusters / 100).min(clusters - 1)].max(2);
    let matched = sizes.iter().filter(|&&s| s >= threshold).count();
    assert!(matched > 0, "threshold {threshold} matches nothing");

    let match_body = format!(r#"{{"pipeline": [{{"match": {{"size": {{"gte": {threshold}}}}}}}]}}"#);
    let query = CarveQuery::parse(match_body.as_bytes()).expect("bench query parses");

    // The plan must ride the ordered size index — never a full scan.
    let plan = plan_query(&catalog, &query, ExecOptions::default());
    assert!(!plan.full_scan, "selective query fell back to a full scan");
    assert_eq!(plan.indexed_conjuncts(), 1);
    assert!(
        plan.estimated_rows < clusters,
        "posting-list estimate should beat the scan bound"
    );
    eprintln!(
        "query: size >= {threshold} → {matched} of {clusters} clusters ({records} records); estimated {} rows",
        plan.estimated_rows
    );

    // Both paths must produce byte-identical documents before any
    // number is reported.
    let indexed_out = execute(&catalog, &query, ExecOptions::default());
    let scanned_out = execute(&catalog, &query, ExecOptions { force_scan: true });
    assert!(!indexed_out.explain.full_scan);
    assert!(scanned_out.explain.full_scan);
    let render = |docs: &[nc_docstore::value::Document]| -> Vec<String> {
        docs.iter().map(|d| d.to_json()).collect()
    };
    assert_eq!(indexed_out.matched, scanned_out.matched);
    assert_eq!(
        render(&indexed_out.docs),
        render(&scanned_out.docs),
        "indexed and scanned documents diverge"
    );

    let mut indexed_secs = Vec::with_capacity(args.reps);
    for _ in 0..args.reps {
        let start = Instant::now();
        let out = execute(&catalog, &query, ExecOptions::default());
        indexed_secs.push(start.elapsed().as_secs_f64());
        assert_eq!(out.matched.len(), matched);
    }
    let mut scan_secs = Vec::with_capacity(args.reps);
    for _ in 0..args.reps {
        let start = Instant::now();
        let out = execute(&catalog, &query, ExecOptions { force_scan: true });
        scan_secs.push(start.elapsed().as_secs_f64());
        assert_eq!(out.matched.len(), matched);
    }

    let indexed_mean = mean(&indexed_secs);
    let scan_mean = mean(&scan_secs);
    let speedup = scan_mean / indexed_mean;
    println!(
        "indexed: mean {:.1} µs, best {:.1} µs\nscan:    mean {:.1} µs, best {:.1} µs\nspeedup: {speedup:.2}x (gate {:.1}x)",
        indexed_mean * 1e6,
        best(&indexed_secs) * 1e6,
        scan_mean * 1e6,
        best(&scan_secs) * 1e6,
        args.min_speedup
    );
    assert!(
        speedup >= args.min_speedup,
        "indexed path only {speedup:.2}x faster than forced scan (gate {:.1}x)",
        args.min_speedup
    );

    // Warm-cache query-carve latency through the serve engine: one
    // miss primes the LRU, every replay must hit and return the
    // identical rendered lines.
    let carve_body = format!(
        r#"{{"pipeline": [{{"match": {{"size": {{"gte": {threshold}}}}}}}, {{"sample": {{"size": 100, "seed": 7}}}}]}}"#
    );
    let carve_query = CarveQuery::parse(carve_body.as_bytes()).expect("carve query parses");
    let cold_start = Instant::now();
    let primed = state.engine().carve_query(&carve_query).expect("carve");
    let carve_cold_secs = cold_start.elapsed().as_secs_f64();
    assert!(matches!(primed.status, CacheStatus::Miss));
    let reference = Arc::clone(&primed.result);
    let mut warm_secs = Vec::with_capacity(args.reps);
    for _ in 0..args.reps {
        let start = Instant::now();
        let replay = state.engine().carve_query(&carve_query).expect("carve");
        warm_secs.push(start.elapsed().as_secs_f64());
        assert!(matches!(replay.status, CacheStatus::Hit));
        assert_eq!(replay.result.lines, reference.lines, "cached carve differs");
    }
    let warm_mean = mean(&warm_secs);
    println!(
        "carve: cold {:.1} µs, warm mean {:.1} µs ({} lines)",
        carve_cold_secs * 1e6,
        warm_mean * 1e6,
        reference.lines.len()
    );

    let query_stats = state.engine().query_stats();
    // Hand-rolled JSON: flat object, stable key order.
    let json = format!(
        concat!(
            "{{\n",
            "  \"population\": {},\n",
            "  \"snapshots\": {},\n",
            "  \"seed\": {},\n",
            "  \"clusters\": {},\n",
            "  \"records\": {},\n",
            "  \"size_threshold\": {},\n",
            "  \"matched_clusters\": {},\n",
            "  \"reps\": {},\n",
            "  \"full_scan\": false,\n",
            "  \"estimated_rows\": {},\n",
            "  \"indexed_mean_secs\": {:.9},\n",
            "  \"indexed_best_secs\": {:.9},\n",
            "  \"scan_mean_secs\": {:.9},\n",
            "  \"scan_best_secs\": {:.9},\n",
            "  \"indexed_speedup\": {:.4},\n",
            "  \"min_speedup_gate\": {:.2},\n",
            "  \"carve_cold_secs\": {:.9},\n",
            "  \"carve_warm_mean_secs\": {:.9},\n",
            "  \"carve_warm_best_secs\": {:.9},\n",
            "  \"carve_lines\": {},\n",
            "  \"conjuncts_indexed_total\": {},\n",
            "  \"conjuncts_scanned_total\": {},\n",
            "  \"outputs_identical\": true\n",
            "}}\n"
        ),
        args.population,
        args.snapshots,
        args.seed,
        clusters,
        records,
        threshold,
        matched,
        args.reps,
        plan.estimated_rows,
        indexed_mean,
        best(&indexed_secs),
        scan_mean,
        best(&scan_secs),
        speedup,
        args.min_speedup,
        carve_cold_secs,
        warm_mean,
        best(&warm_secs),
        reference.lines.len(),
        query_stats.conjuncts_indexed,
        query_stats.conjuncts_scanned,
    );
    std::fs::write(&args.out, json).expect("write benchmark json");
    eprintln!("wrote {}", args.out.display());
}
