//! Standalone scoring throughput benchmark: sequential vs parallel
//! cluster scoring on a generated registry.
//!
//! ```sh
//! cargo run --release -p nc-bench --bin bench_scoring -- \
//!     --pop 2000 --snapshots 20 --out BENCH_scoring.json
//! ```
//!
//! The parallel result is asserted bit-identical to the sequential one
//! before any number is reported. The JSON is written by hand so the
//! binary has no serialization dependency.

use std::path::PathBuf;
use std::time::Instant;

use nc_core::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use nc_core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_core::plausibility::PlausibilityScorer;
use nc_core::record::DedupPolicy;
use nc_core::scoring::{score_store, ClusterScore, ScoringConfig};
use nc_votergen::config::GeneratorConfig;

struct Args {
    population: usize,
    snapshots: usize,
    seed: u64,
    threads: usize,
    reps: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        population: 1_000,
        snapshots: 12,
        seed: 2021,
        threads: 0,
        reps: 3,
        out: PathBuf::from("BENCH_scoring.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--pop" => parsed.population = value().parse().expect("--pop takes a number"),
            "--snapshots" => parsed.snapshots = value().parse().expect("--snapshots takes a number"),
            "--seed" => parsed.seed = value().parse().expect("--seed takes a number"),
            "--threads" => parsed.threads = value().parse().expect("--threads takes a number"),
            "--reps" => parsed.reps = value().parse().expect("--reps takes a number"),
            "--out" => parsed.out = PathBuf::from(value()),
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: bench_scoring [--pop N] [--snapshots N] [--seed N] [--threads N] [--reps N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// Best-of-`reps` wall time of one scoring pass.
fn time_scoring<F: FnMut() -> Vec<ClusterScore>>(reps: usize, mut run: F) -> (f64, Vec<ClusterScore>) {
    let mut best = f64::INFINITY;
    let mut scores = Vec::new();
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = run();
        best = best.min(start.elapsed().as_secs_f64());
        scores = out;
    }
    (best, scores)
}

fn main() {
    let args = parse_args();
    eprintln!(
        "generating registry: population {}, {} snapshots, seed {}…",
        args.population, args.snapshots, args.seed
    );
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed: args.seed,
            initial_population: args.population,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots: args.snapshots,
    });
    let store = &outcome.store;
    let firsts: Vec<_> = store
        .cluster_ids()
        .iter()
        .filter_map(|(n, _)| store.cluster_rows(n).into_iter().next())
        .collect();
    let plaus = PlausibilityScorer::new();
    let het = HeterogeneityScorer::new(AttributeWeights::from_rows(Scope::Person, firsts.iter()));

    let par_cfg = ScoringConfig::with_threads(args.threads);
    let par_threads = par_cfg.effective_threads();
    let clusters = store.cluster_count();
    let records = store.record_count();
    eprintln!(
        "scoring {clusters} clusters ({records} records): sequential, then {par_threads} threads…"
    );

    let seq_cfg = ScoringConfig::with_threads(1);
    let (seq_secs, seq) =
        time_scoring(args.reps, || score_store(store, &plaus, &het, &seq_cfg));
    let (par_secs, par) =
        time_scoring(args.reps, || score_store(store, &plaus, &het, &par_cfg));

    assert_eq!(seq.len(), par.len(), "parallel run lost clusters");
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.ncid, p.ncid, "parallel run reordered clusters");
        assert_eq!(
            s.plausibility.to_bits(),
            p.plausibility.to_bits(),
            "plausibility of {} differs across thread counts",
            s.ncid
        );
        assert_eq!(
            s.heterogeneity.to_bits(),
            p.heterogeneity.to_bits(),
            "heterogeneity of {} differs across thread counts",
            s.ncid
        );
    }

    let seq_rps = records as f64 / seq_secs;
    let par_rps = records as f64 / par_secs;
    let speedup = seq_secs / par_secs;
    println!(
        "sequential: {seq_secs:.3} s ({seq_rps:.0} records/s)\nparallel ({par_threads} threads): {par_secs:.3} s ({par_rps:.0} records/s)\nspeedup: {speedup:.2}x"
    );

    // Hand-rolled JSON: flat object, numbers only, stable key order.
    let json = format!(
        concat!(
            "{{\n",
            "  \"population\": {},\n",
            "  \"snapshots\": {},\n",
            "  \"seed\": {},\n",
            "  \"clusters\": {},\n",
            "  \"records\": {},\n",
            "  \"reps\": {},\n",
            "  \"hardware_threads\": {},\n",
            "  \"parallel_threads\": {},\n",
            "  \"sequential_secs\": {:.6},\n",
            "  \"parallel_secs\": {:.6},\n",
            "  \"sequential_records_per_sec\": {:.1},\n",
            "  \"parallel_records_per_sec\": {:.1},\n",
            "  \"speedup\": {:.4},\n",
            "  \"bit_identical\": true\n",
            "}}\n"
        ),
        args.population,
        args.snapshots,
        args.seed,
        clusters,
        records,
        args.reps.max(1),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        par_threads,
        seq_secs,
        par_secs,
        seq_rps,
        par_rps,
        speedup,
    );
    std::fs::write(&args.out, json).expect("write benchmark json");
    eprintln!("wrote {}", args.out.display());
}
