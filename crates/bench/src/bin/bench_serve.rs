//! Standalone serve-layer benchmark: cold (cache-miss) vs warm
//! (cache-hit) carve latency over real HTTP round trips.
//!
//! ```sh
//! cargo run --release -p nc-bench --bin bench_serve -- \
//!     --pop 2000 --snapshots 12 --out BENCH_serve.json
//! ```
//!
//! Cold requests use a fresh seed each time, so every one carves the
//! snapshot from scratch; warm requests repeat one seed, so all but the
//! first are answered from the LRU cache. Warm bodies are asserted
//! byte-identical to their cold counterpart before any number is
//! reported. The JSON is written by hand so the binary has no
//! serialization dependency.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use nc_core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_core::record::DedupPolicy;
use nc_serve::{Server, ServeConfig, ServeSnapshot, ServeState, SnapshotRegistry};
use nc_votergen::config::GeneratorConfig;

struct Args {
    population: usize,
    snapshots: usize,
    seed: u64,
    sample: usize,
    output: usize,
    reps: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        population: 1_000,
        snapshots: 12,
        seed: 2021,
        sample: 600,
        output: 100,
        reps: 10,
        out: PathBuf::from("BENCH_serve.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--pop" => parsed.population = value().parse().expect("--pop takes a number"),
            "--snapshots" => parsed.snapshots = value().parse().expect("--snapshots takes a number"),
            "--seed" => parsed.seed = value().parse().expect("--seed takes a number"),
            "--sample" => parsed.sample = value().parse().expect("--sample takes a number"),
            "--output" => parsed.output = value().parse().expect("--output takes a number"),
            "--reps" => parsed.reps = value().parse().expect("--reps takes a number"),
            "--out" => parsed.out = PathBuf::from(value()),
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: bench_serve [--pop N] [--snapshots N] [--seed N] [--sample N] [--output N] [--reps N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// One full HTTP round trip; returns (seconds, X-Cache value, body).
fn roundtrip(addr: SocketAddr, target: &str) -> (f64, String, String) {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let secs = start.elapsed().as_secs_f64();

    let text = String::from_utf8(response).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("http response");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "request {target} failed: {head}"
    );
    let cache = head
        .lines()
        .find_map(|l| l.strip_prefix("X-Cache: "))
        .expect("X-Cache header")
        .to_string();
    (secs, cache, body.to_string())
}

fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len().max(1) as f64
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() {
    let args = parse_args();
    eprintln!(
        "generating registry: population {}, {} snapshots, seed {}…",
        args.population, args.snapshots, args.seed
    );
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed: args.seed,
            initial_population: args.population,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots: args.snapshots,
    });
    let store = &outcome.store;
    let clusters = store.cluster_count();
    let records = store.record_count();

    let registry = SnapshotRegistry::new(ServeSnapshot::capture(store, 1));
    let state = Arc::new(ServeState::new(Arc::new(registry), ServeConfig::default()));
    let server = Server::spawn(Arc::clone(&state)).expect("bind ephemeral port");
    let addr = server.addr();
    eprintln!(
        "serving {clusters} clusters ({records} records) on {addr}; {} cold + {} warm requests…",
        args.reps, args.reps
    );

    let target = |seed: u64| {
        format!(
            "/datasets/nc2?sample={}&output={}&seed={seed}&page_size=10000",
            args.sample, args.output
        )
    };

    // Cold: a fresh seed per request — every carve runs the full
    // sampling + reduction pass over the snapshot.
    let mut cold_secs = Vec::with_capacity(args.reps);
    for i in 0..args.reps {
        let (secs, cache, _) = roundtrip(addr, &target(1_000 + i as u64));
        assert_eq!(cache, "miss", "cold request unexpectedly cached");
        cold_secs.push(secs);
    }

    // Warm: one seed repeated — after the first miss, every request is
    // served from the cache and must return the identical body.
    let warm_target = target(1_000);
    let (_, first_cache, reference_body) = roundtrip(addr, &warm_target);
    assert_eq!(first_cache, "hit", "priming request should already be cached");
    let mut warm_secs = Vec::with_capacity(args.reps);
    for _ in 0..args.reps {
        let (secs, cache, body) = roundtrip(addr, &warm_target);
        assert_eq!(cache, "hit", "warm request missed the cache");
        assert_eq!(body, reference_body, "cached body differs");
        warm_secs.push(secs);
    }

    server.shutdown();
    let stats = state.engine().cache_stats();

    let cold_mean = mean(&cold_secs);
    let warm_mean = mean(&warm_secs);
    let cold_best = best(&cold_secs);
    let warm_best = best(&warm_secs);
    let speedup = cold_mean / warm_mean;
    println!(
        "cold: mean {:.1} µs, best {:.1} µs\nwarm: mean {:.1} µs, best {:.1} µs\nwarm speedup: {speedup:.2}x (cache: {} hits, {} misses)",
        cold_mean * 1e6,
        cold_best * 1e6,
        warm_mean * 1e6,
        warm_best * 1e6,
        stats.hits,
        stats.misses
    );
    assert_eq!(stats.misses as usize, args.reps, "one miss per cold seed");
    assert!(
        stats.hits as usize >= args.reps,
        "warm requests should all hit"
    );

    // Hand-rolled JSON: flat object, stable key order.
    let json = format!(
        concat!(
            "{{\n",
            "  \"population\": {},\n",
            "  \"snapshots\": {},\n",
            "  \"seed\": {},\n",
            "  \"clusters\": {},\n",
            "  \"records\": {},\n",
            "  \"sample_clusters\": {},\n",
            "  \"output_clusters\": {},\n",
            "  \"reps\": {},\n",
            "  \"cold_mean_secs\": {:.6},\n",
            "  \"cold_best_secs\": {:.6},\n",
            "  \"warm_mean_secs\": {:.6},\n",
            "  \"warm_best_secs\": {:.6},\n",
            "  \"warm_speedup\": {:.4},\n",
            "  \"cache_hits\": {},\n",
            "  \"cache_misses\": {},\n",
            "  \"warm_bodies_identical\": true\n",
            "}}\n"
        ),
        args.population,
        args.snapshots,
        args.seed,
        clusters,
        records,
        args.sample,
        args.output,
        args.reps,
        cold_mean,
        cold_best,
        warm_mean,
        warm_best,
        speedup,
        stats.hits,
        stats.misses,
    );
    std::fs::write(&args.out, json).expect("write benchmark json");
    eprintln!("wrote {}", args.out.display());
}
