//! Change-stream benchmark: full re-scoring vs dirty-only incremental
//! re-scoring at several churn rates, plus the warm-carve hit rate a
//! delta-aware publish preserves that a blind publish throws away.
//!
//! ```sh
//! cargo run --release -p nc-bench --bin bench_stream -- \
//!     --pop 52000 --snapshots 8 --shards 4 --out BENCH_stream.json
//! ```
//!
//! The store is built once through the WAL-backed shard engine; each
//! churn level then ingests a revise-only snapshot touching the given
//! fraction of clusters, derives the dirty set from the change stream
//! (never from the snapshot itself), and times a full
//! `score_clusters` pass against `score_clusters_incremental` over the
//! stream's dirty set — asserting **bit-identical** output on every
//! repetition, so a reported speedup can never come from a wrong
//! answer. The carve phase publishes further low-churn versions into
//! two cache-backed carve engines — one fed the folded
//! [`PublishDelta`], one publishing blind — and counts warm hits on a
//! fixed request mix. The JSON is written by hand so the binary has no
//! serialization dependency.

use std::collections::HashSet;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use nc_core::customize::CustomizeParams;
use nc_core::heterogeneity::Scope;
use nc_core::plausibility::PlausibilityScorer;
use nc_core::record::DedupPolicy;
use nc_core::scoring::{
    score_clusters, score_clusters_incremental, ClusterScore, ScoringConfig,
};
use nc_core::snapshot::StoreSnapshot;
use nc_core::tsv::{self, ImportOptions};
use nc_serve::{
    CacheStatus, CarveEngine, CarveRequest, PublishDelta, ServeSnapshot, SnapshotRegistry,
};
use nc_shard::{ShardEngine, ShardEngineConfig};
use nc_stream::{fold_delta, ChangeStream};
use nc_votergen::config::GeneratorConfig;
use nc_votergen::registry::Registry;
use nc_votergen::schema::{Row, FIRST_NAME, LAST_NAME, NCID};
use nc_votergen::snapshot::{standard_calendar, Snapshot};

const CHURN_FRACTIONS: [f64; 3] = [0.001, 0.01, 0.1];

struct Args {
    population: usize,
    snapshots: usize,
    shards: usize,
    seed: u64,
    reps: usize,
    threads: usize,
    publishes: usize,
    out: PathBuf,
    min_speedup: f64,
    require_hits: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        population: 52_000,
        snapshots: 8,
        shards: 4,
        seed: 2021,
        reps: 3,
        threads: 0,
        publishes: 3,
        out: PathBuf::from("BENCH_stream.json"),
        min_speedup: 0.0,
        require_hits: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--pop" => parsed.population = value().parse().expect("--pop takes a number"),
            "--snapshots" => parsed.snapshots = value().parse().expect("--snapshots takes a number"),
            "--shards" => parsed.shards = value().parse().expect("--shards takes a number"),
            "--seed" => parsed.seed = value().parse().expect("--seed takes a number"),
            "--reps" => parsed.reps = value().parse().expect("--reps takes a number"),
            "--threads" => parsed.threads = value().parse().expect("--threads takes a number"),
            "--publishes" => parsed.publishes = value().parse().expect("--publishes takes a number"),
            "--out" => parsed.out = PathBuf::from(value()),
            "--min-speedup" => {
                parsed.min_speedup = value().parse().expect("--min-speedup takes a number")
            }
            "--require-hits" => parsed.require_hits = true,
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!(
                    "usage: bench_stream [--pop N] [--snapshots N] [--shards N] [--seed N] \
                     [--reps N] [--threads N] [--publishes N] [--out FILE] \
                     [--min-speedup X] [--require-hits]"
                );
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn tmp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("nc_bench_stream_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Evenly-strided cluster NCIDs, rotated by `offset` so successive
/// churn rounds touch different clusters.
fn pick_ncids(clusters: &[(String, Vec<Row>)], count: usize, offset: usize) -> Vec<String> {
    let n = clusters.len();
    let count = count.clamp(1, n);
    (0..count)
        .map(|i| clusters[(offset + i * n / count) % n].0.clone())
        .collect()
}

/// A revise-only churn snapshot: one fresh (never duplicate-dropped)
/// row appended to each picked cluster.
fn churn_snapshot(index: usize, date: &str, ncids: &[String]) -> Snapshot {
    let rows = ncids
        .iter()
        .enumerate()
        .map(|(i, ncid)| {
            let mut row = Row::empty();
            row.set(NCID, ncid);
            row.set(FIRST_NAME, "ZELDA");
            row.set(LAST_NAME, format!("CHURN{index}X{i}"));
            row
        })
        .collect();
    Snapshot {
        index,
        date: date.to_string(),
        rows,
    }
}

/// Bit-exact score comparison; a speedup must never come from a wrong
/// answer, so any drift aborts the whole benchmark.
fn assert_bit_identical(full: &[ClusterScore], incremental: &[ClusterScore], label: &str) {
    if full.len() != incremental.len() {
        eprintln!(
            "BIT-IDENTITY VIOLATION at {label}: {} vs {} clusters",
            full.len(),
            incremental.len()
        );
        std::process::exit(1);
    }
    for (f, i) in full.iter().zip(incremental) {
        if f.ncid != i.ncid
            || f.records != i.records
            || f.plausibility.to_bits() != i.plausibility.to_bits()
            || f.heterogeneity.to_bits() != i.heterogeneity.to_bits()
        {
            eprintln!("BIT-IDENTITY VIOLATION at {label}: cluster {}", f.ncid);
            std::process::exit(1);
        }
    }
}

/// The fixed request mix for the carve phase: NC1–NC3 at two seeds.
fn carve_requests(sample: usize, output: usize, seed: u64) -> Vec<CarveRequest> {
    let mut requests = Vec::new();
    for s in [seed, seed + 1] {
        for params in [
            CustomizeParams::nc1(sample, output, s),
            CustomizeParams::nc2(sample, output, s),
            CustomizeParams::nc3(sample, output, s),
        ] {
            requests.push(CarveRequest {
                version: None,
                params,
                page: 0,
                page_size: usize::MAX,
                encoding: None,
            });
        }
    }
    requests
}

struct ChurnResult {
    fraction: f64,
    dirty: usize,
    full_secs: f64,
    incremental_secs: f64,
    speedup: f64,
}

fn main() {
    let args = parse_args();
    eprintln!(
        "generating workload: population {}, {} snapshots, seed {}…",
        args.population, args.snapshots, args.seed
    );
    let mut registry = Registry::new(GeneratorConfig {
        seed: args.seed,
        initial_population: args.population,
        ..Default::default()
    });
    let calendar = standard_calendar();
    assert!(
        args.snapshots <= calendar.len(),
        "--snapshots must be at most {}",
        calendar.len()
    );
    let snapshots: Vec<Snapshot> = calendar
        .iter()
        .take(args.snapshots)
        .map(|info| registry.generate_snapshot(info))
        .collect();
    let rows: u64 = snapshots.iter().map(|s| s.rows.len() as u64).sum();

    let archive = tmp_dir("archive");
    for snap in &snapshots {
        tsv::write_snapshot(&archive, snap).expect("write snapshot");
    }

    let state = tmp_dir("state");
    let config = ShardEngineConfig::new(args.shards, DedupPolicy::Trimmed, 1);
    let mut engine = ShardEngine::open(&state, config).expect("open shard engine");
    eprintln!("ingesting {rows} rows through the WAL…");
    engine
        .ingest_archive(&archive, &ImportOptions::strict())
        .expect("engine ingest");

    // The stream replays the base ingest; its batches seed the
    // known-cluster set so later churn classifies as revisions.
    let mut stream = ChangeStream::open(&state);
    let base_batches = stream.drain().expect("stream drain");
    assert_eq!(base_batches.len(), args.snapshots);

    let mut version = 1u32;
    let base = engine.publish(version);
    let clusters = base.cluster_count();
    let records = base.record_count();
    eprintln!("store: {clusters} clusters, {records} records");

    let plausibility = PlausibilityScorer::new();
    let scoring = ScoringConfig::with_threads(args.threads);

    // Baseline full pass (and the previous-scores seed for churn 1).
    let entropy = base.entropy_scorer(Scope::Person);
    let start = Instant::now();
    let mut previous = score_clusters(base.clusters(), &plausibility, &entropy, &scoring);
    let base_full_secs = start.elapsed().as_secs_f64();
    eprintln!("baseline full score: {:.1} ms", base_full_secs * 1e3);

    // Churn levels: ingest, stream, fold, then full vs incremental.
    let mut churn_results = Vec::new();
    let mut snapshot_index = args.snapshots;
    for (level, fraction) in CHURN_FRACTIONS.iter().enumerate() {
        version += 1;
        snapshot_index += 1;
        let touch = ((clusters as f64 * fraction).round() as usize).max(1);
        let ncids = pick_ncids(base.clusters(), touch, level * 17 + 1);
        let date = format!("2040-01-{:02}", level + 1);
        let snap = churn_snapshot(snapshot_index, &date, &ncids);
        tsv::write_snapshot(&archive, &snap).expect("write churn snapshot");
        engine
            .ingest_archive(&archive, &ImportOptions::strict())
            .expect("ingest churn");
        let batches = stream.drain().expect("stream drain");
        assert_eq!(batches.len(), 1, "one committed snapshot per churn level");
        let delta = fold_delta(&batches, version);
        assert!(
            delta.founded.is_empty(),
            "revise-only churn must not found clusters"
        );
        assert_eq!(delta.revised.len(), ncids.len());
        let dirty: HashSet<String> = delta.dirty_clusters().map(str::to_owned).collect();

        let published = engine.publish(version);
        let entropy = published.entropy_scorer(Scope::Person);
        let label = format!("churn {fraction}");

        // Warmup both sides once, then interleave best-of-reps so
        // clock drift and cache warmth bias neither.
        let full = score_clusters(published.clusters(), &plausibility, &entropy, &scoring);
        let incremental = score_clusters_incremental(
            published.clusters(),
            &previous,
            &dirty,
            &plausibility,
            &entropy,
            &scoring,
        );
        assert_bit_identical(&full, &incremental, &label);
        let mut full_samples = Vec::with_capacity(args.reps);
        let mut incremental_samples = Vec::with_capacity(args.reps);
        for _ in 0..args.reps.max(1) {
            let start = Instant::now();
            let full = score_clusters(published.clusters(), &plausibility, &entropy, &scoring);
            full_samples.push(start.elapsed().as_secs_f64());
            let start = Instant::now();
            let incremental = score_clusters_incremental(
                published.clusters(),
                &previous,
                &dirty,
                &plausibility,
                &entropy,
                &scoring,
            );
            incremental_samples.push(start.elapsed().as_secs_f64());
            assert_bit_identical(&full, &incremental, &label);
        }
        previous = full;

        let full_secs = best(&full_samples);
        let incremental_secs = best(&incremental_samples);
        let speedup = full_secs / incremental_secs;
        eprintln!(
            "churn {:.1}%: {} dirty, full {:.1} ms, incremental {:.1} ms ({speedup:.1}x)",
            fraction * 100.0,
            dirty.len(),
            full_secs * 1e3,
            incremental_secs * 1e3,
        );
        churn_results.push(ChurnResult {
            fraction: *fraction,
            dirty: dirty.len(),
            full_secs,
            incremental_secs,
            speedup,
        });
    }

    // Carve phase: the same low-churn publishes flow into two cached
    // engines — one told what changed, one publishing blind — and the
    // request mix re-runs after every publish. Range invalidation is
    // what lets the delta-aware engine keep serving warm entries.
    let current: StoreSnapshot = engine.publish(version);
    let sample = 200.min(clusters.max(1));
    let output = 50.min(sample);
    let requests = carve_requests(sample, output, args.seed);
    let with_delta = CarveEngine::new(
        Arc::new(SnapshotRegistry::new(ServeSnapshot::new(current.clone()))),
        64,
    );
    let without_delta = CarveEngine::new(
        Arc::new(SnapshotRegistry::new(ServeSnapshot::new(current.clone()))),
        64,
    );
    for request in &requests {
        with_delta.carve(request).expect("prime carve");
        without_delta.carve(request).expect("prime carve");
    }

    let mut hits_with_delta = 0usize;
    let mut hits_without_delta = 0usize;
    let mut carves = 0usize;
    for publish in 0..args.publishes {
        version += 1;
        snapshot_index += 1;
        let touch = ((clusters as f64 * 0.001).round() as usize).max(1);
        let ncids = pick_ncids(current.clusters(), touch, 7919 * (publish + 1));
        let date = format!("2041-01-{:02}", publish + 1);
        let snap = churn_snapshot(snapshot_index, &date, &ncids);
        tsv::write_snapshot(&archive, &snap).expect("write churn snapshot");
        engine
            .ingest_archive(&archive, &ImportOptions::strict())
            .expect("ingest churn");
        let batches = stream.drain().expect("stream drain");
        let delta: PublishDelta = fold_delta(&batches, version);
        let published = engine.publish(version);
        with_delta.publish(ServeSnapshot::new(published.clone()), Some(delta));
        without_delta.publish(ServeSnapshot::new(published), None);
        for request in &requests {
            let warm = with_delta.carve(request).expect("carve");
            let blind = without_delta.carve(request).expect("carve");
            carves += 1;
            hits_with_delta += usize::from(warm.status == CacheStatus::Hit);
            hits_without_delta += usize::from(blind.status == CacheStatus::Hit);
            // A carried-forward entry must still be byte-identical to
            // a fresh carve of the new snapshot.
            if warm.result.page(0, usize::MAX) != blind.result.page(0, usize::MAX) {
                eprintln!("CARVE DRIFT at version {version}: cached != fresh");
                std::process::exit(1);
            }
        }
    }
    let stats = with_delta.delta_stats();
    let hit_rate_with = hits_with_delta as f64 / carves.max(1) as f64;
    let hit_rate_without = hits_without_delta as f64 / carves.max(1) as f64;
    eprintln!(
        "carve: {carves} post-publish carves, warm hits {hits_with_delta} with deltas \
         vs {hits_without_delta} blind (carried forward {}, invalidated {})",
        stats.carried_forward, stats.invalidated,
    );

    fs::remove_dir_all(&archive).ok();
    fs::remove_dir_all(&state).ok();

    let mut churn_json = String::new();
    for (i, c) in churn_results.iter().enumerate() {
        churn_json.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"fraction\": {},\n",
                "      \"dirty_clusters\": {},\n",
                "      \"full_secs\": {:.6},\n",
                "      \"incremental_secs\": {:.6},\n",
                "      \"speedup\": {:.4}\n",
                "    }}{}\n"
            ),
            c.fraction,
            c.dirty,
            c.full_secs,
            c.incremental_secs,
            c.speedup,
            if i + 1 < churn_results.len() { "," } else { "" },
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"population\": {},\n",
            "  \"snapshots\": {},\n",
            "  \"shards\": {},\n",
            "  \"seed\": {},\n",
            "  \"rows\": {},\n",
            "  \"clusters\": {},\n",
            "  \"records\": {},\n",
            "  \"scoring_threads\": {},\n",
            "  \"base_full_score_secs\": {:.6},\n",
            "  \"churn\": [\n{}  ],\n",
            "  \"carve\": {{\n",
            "    \"requests\": {},\n",
            "    \"publishes\": {},\n",
            "    \"post_publish_carves\": {},\n",
            "    \"hits_with_delta\": {},\n",
            "    \"hits_without_delta\": {},\n",
            "    \"hit_rate_with_delta\": {:.4},\n",
            "    \"hit_rate_without_delta\": {:.4},\n",
            "    \"carried_forward\": {},\n",
            "    \"invalidated\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        args.population,
        args.snapshots,
        args.shards,
        args.seed,
        rows,
        clusters,
        records,
        scoring.effective_threads(),
        base_full_secs,
        churn_json,
        requests.len(),
        args.publishes,
        carves,
        hits_with_delta,
        hits_without_delta,
        hit_rate_with,
        hit_rate_without,
        stats.carried_forward,
        stats.invalidated,
    );
    fs::write(&args.out, json).expect("write benchmark json");
    eprintln!("wrote {}", args.out.display());

    if args.min_speedup > 0.0 {
        let gated = churn_results
            .iter()
            .find(|c| c.fraction == 0.01)
            .expect("1% churn level");
        if gated.speedup < args.min_speedup {
            eprintln!(
                "FAIL: incremental speedup {:.2}x at 1% churn is below the \
                 required {:.2}x",
                gated.speedup, args.min_speedup
            );
            std::process::exit(1);
        }
    }
    if args.require_hits && hits_with_delta == 0 {
        eprintln!("FAIL: delta-aware carve cache produced no warm hits");
        std::process::exit(1);
    }
}
