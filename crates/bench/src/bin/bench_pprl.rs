//! PPRL encoding benchmark: CLK encode throughput, encoded-space vs
//! plaintext scoring cost, and encoded-space blocking completeness
//! over the full voter archive.
//!
//! ```sh
//! cargo run --release -p nc-bench --bin bench_pprl -- \
//!     --pop 25000 --snapshots 12 --out BENCH_pprl.json
//! ```
//!
//! The store is generated at ≥100k records (gated by `--min-records`).
//! The run *asserts*, not just reports: encoding the archive twice is
//! byte-identical (spot-checked), encode throughput clears
//! `--min-encode-rate`, encoded Dice over CLK words is at least
//! `--min-score-speedup` times cheaper than plaintext q-gram Dice, and
//! bit-sampling blocking over record CLKs recovers at least
//! `--min-completeness` of the within-cluster gold pairs while staying
//! selective (`--max-cand-per-record`). The JSON is written by hand so
//! the binary has no serialization dependency.

use std::collections::HashSet;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use nc_core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_core::record::DedupPolicy;
use nc_detect::bitsample::BitSampleBlocker;
use nc_detect::dataset::Pair;
use nc_detect::sink::{PairCollector, QualitySink};
use nc_pprl::encode::{normalize_into, plaintext_qgram_dice};
use nc_pprl::kernels::dice;
use nc_pprl::{EncodeScratch, EncodingParams, RecordEncoder};
use nc_votergen::config::GeneratorConfig;
use nc_votergen::schema::LAST_NAME;

struct Args {
    population: usize,
    snapshots: usize,
    seed: u64,
    reps: usize,
    min_records: u64,
    min_encode_rate: f64,
    min_score_speedup: f64,
    min_completeness: f64,
    max_cand_per_record: f64,
    bands: usize,
    band_bits: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        population: 25_000,
        snapshots: 12,
        seed: 2021,
        reps: 3,
        min_records: 100_000,
        min_encode_rate: 10_000.0,
        min_score_speedup: 1.0,
        min_completeness: 0.7,
        max_cand_per_record: 200.0,
        // Archive-scale geometry: longer signatures than the blocker's
        // default so skewed low-entropy bit regions (shared city /
        // state patterns) don't inflate the buckets at 100k records.
        bands: 40,
        band_bits: 22,
        out: PathBuf::from("BENCH_pprl.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--pop" => parsed.population = value().parse().expect("--pop takes a number"),
            "--snapshots" => parsed.snapshots = value().parse().expect("--snapshots takes a number"),
            "--seed" => parsed.seed = value().parse().expect("--seed takes a number"),
            "--reps" => parsed.reps = value().parse().expect("--reps takes a number"),
            "--min-records" => {
                parsed.min_records = value().parse().expect("--min-records takes a number")
            }
            "--min-encode-rate" => {
                parsed.min_encode_rate = value().parse().expect("--min-encode-rate takes a number")
            }
            "--min-score-speedup" => {
                parsed.min_score_speedup =
                    value().parse().expect("--min-score-speedup takes a number")
            }
            "--min-completeness" => {
                parsed.min_completeness =
                    value().parse().expect("--min-completeness takes a number")
            }
            "--max-cand-per-record" => {
                parsed.max_cand_per_record =
                    value().parse().expect("--max-cand-per-record takes a number")
            }
            "--bands" => parsed.bands = value().parse().expect("--bands takes a number"),
            "--band-bits" => {
                parsed.band_bits = value().parse().expect("--band-bits takes a number")
            }
            "--out" => parsed.out = PathBuf::from(value()),
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!(
                    "usage: bench_pprl [--pop N] [--snapshots N] [--seed N] [--reps N] \
                     [--min-records N] [--min-encode-rate X] [--min-score-speedup X] \
                     [--min-completeness X] [--max-cand-per-record X] \
                     [--bands N] [--band-bits N] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len().max(1) as f64
}

fn main() {
    let args = parse_args();
    eprintln!(
        "generating registry: population {}, {} snapshots, seed {}…",
        args.population, args.snapshots, args.seed
    );
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed: args.seed,
            initial_population: args.population,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots: args.snapshots,
    });
    let store = &outcome.store;
    let records = store.record_count();
    assert!(
        records >= args.min_records,
        "store too small for the gate: {records} records < {} (raise --pop or lower --min-records)",
        args.min_records
    );

    // Flatten the archive to (cluster, row) once; the gold pair set is
    // every within-cluster pair — the revisions of one person.
    let mut rows = Vec::new();
    let mut gold: HashSet<Pair> = HashSet::new();
    for (ncid, _) in store.cluster_ids() {
        let first = rows.len();
        rows.extend(store.cluster_rows(&ncid));
        for a in first..rows.len() {
            for b in (a + 1)..rows.len() {
                gold.insert(Pair::new(a, b));
            }
        }
    }
    eprintln!(
        "{} records in {} clusters, {} gold pairs",
        rows.len(),
        store.cluster_count(),
        gold.len()
    );

    // 1. Encode throughput. One timed pass per rep over the full
    //    archive; the fastest rep is the throughput number (the slower
    //    ones absorb allocator warm-up).
    let params = EncodingParams {
        key: args.seed,
        ..Default::default()
    };
    let encoder = RecordEncoder::new(params);
    let mut scratch = EncodeScratch::new();
    let mut clks: Vec<Vec<u64>> = Vec::with_capacity(rows.len());
    let mut encode_secs = Vec::with_capacity(args.reps);
    for rep in 0..args.reps {
        clks.clear();
        let start = Instant::now();
        for row in &rows {
            let encoded = encoder.encode_row(row, &mut scratch);
            clks.push(encoded.record_clk.words().to_vec());
        }
        encode_secs.push(start.elapsed().as_secs_f64());
        if rep == 0 {
            // Determinism spot check: an independent encoder must
            // reproduce the first pass bit for bit.
            let fresh = RecordEncoder::new(params);
            let mut s2 = EncodeScratch::new();
            for (row, clk) in rows.iter().step_by(997).zip(clks.iter().step_by(997)) {
                assert_eq!(
                    fresh.encode_row(row, &mut s2).record_clk.words(),
                    &clk[..],
                    "re-encoding diverged"
                );
            }
        }
    }
    let encode_best = encode_secs.iter().copied().fold(f64::INFINITY, f64::min);
    let encode_rate = rows.len() as f64 / encode_best;
    println!(
        "encode: best {:.2} s over {} records → {:.0} rec/s (gate {:.0})",
        encode_best,
        rows.len(),
        encode_rate,
        args.min_encode_rate
    );
    assert!(
        encode_rate >= args.min_encode_rate,
        "encode throughput {encode_rate:.0} rec/s below the gate {:.0}",
        args.min_encode_rate
    );

    // 2. Scoring cost: encoded Dice (popcount over CLK words) vs the
    //    plaintext q-gram Dice it estimates, over the same pairs of
    //    normalized last names. Adjacent-record pairs keep the access
    //    pattern identical for both sides.
    let mut names = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut norm = String::new();
        normalize_into(row.get(LAST_NAME), &mut norm);
        names.push(norm);
    }
    let pairs = rows.len() - 1;
    let mut encoded_secs = Vec::with_capacity(args.reps);
    let mut plain_secs = Vec::with_capacity(args.reps);
    let mut checksum = 0.0f64;
    for _ in 0..args.reps {
        let start = Instant::now();
        let mut acc = 0.0;
        for w in clks.windows(2) {
            acc += dice(&w[0], &w[1]);
        }
        encoded_secs.push(start.elapsed().as_secs_f64());
        checksum += black_box(acc);

        let start = Instant::now();
        let mut acc = 0.0;
        for w in names.windows(2) {
            acc += plaintext_qgram_dice(&w[0], &w[1], params.q as usize);
        }
        plain_secs.push(start.elapsed().as_secs_f64());
        checksum += black_box(acc);
    }
    assert!(checksum.is_finite());
    let encoded_ns = mean(&encoded_secs) * 1e9 / pairs as f64;
    let plain_ns = mean(&plain_secs) * 1e9 / pairs as f64;
    let score_speedup = plain_ns / encoded_ns;
    println!(
        "scoring: encoded {encoded_ns:.1} ns/pair vs plaintext {plain_ns:.1} ns/pair → {score_speedup:.2}x (gate {:.1}x)",
        args.min_score_speedup
    );
    assert!(
        score_speedup >= args.min_score_speedup,
        "encoded scoring only {score_speedup:.2}x the plaintext cost (gate {:.1}x)",
        args.min_score_speedup
    );

    // 3. Blocking completeness at archive scale: bit-sampling buckets
    //    over the record CLKs, measured against the gold pair set with
    //    a QualitySink — and the distinct candidate volume must stay
    //    bounded per record.
    let blocker = BitSampleBlocker {
        bands: args.bands,
        band_bits: args.band_bits,
        ..BitSampleBlocker::default()
    };
    let block_start = Instant::now();
    let mut sink = QualitySink::new(&gold);
    blocker.stream_into(&clks, &mut sink);
    let block_secs = block_start.elapsed().as_secs_f64();
    let completeness = sink.completeness();
    let mut collector = PairCollector::new();
    blocker.stream_into(&clks, &mut collector);
    let distinct = collector.finish_count();
    let cand_per_record = distinct as f64 / rows.len() as f64;
    println!(
        "blocking: {}/{} gold pairs (completeness {completeness:.3}, gate {:.2}); \
         {distinct} distinct candidates ({cand_per_record:.1}/record, cap {:.0}) in {block_secs:.2} s",
        sink.gold_hits(),
        gold.len(),
        args.min_completeness,
        args.max_cand_per_record
    );
    assert!(
        completeness >= args.min_completeness,
        "encoded blocking completeness {completeness:.3} below the gate {:.2}",
        args.min_completeness
    );
    assert!(
        cand_per_record <= args.max_cand_per_record,
        "{cand_per_record:.1} candidates/record is not selective (cap {:.0})",
        args.max_cand_per_record
    );

    // Hand-rolled JSON: flat object, stable key order.
    let json = format!(
        concat!(
            "{{\n",
            "  \"population\": {},\n",
            "  \"snapshots\": {},\n",
            "  \"seed\": {},\n",
            "  \"clusters\": {},\n",
            "  \"records\": {},\n",
            "  \"gold_pairs\": {},\n",
            "  \"reps\": {},\n",
            "  \"encoding\": \"{}\",\n",
            "  \"encode_best_secs\": {:.9},\n",
            "  \"encode_mean_secs\": {:.9},\n",
            "  \"encode_records_per_sec\": {:.1},\n",
            "  \"min_encode_rate_gate\": {:.1},\n",
            "  \"score_pairs\": {},\n",
            "  \"encoded_score_ns_per_pair\": {:.3},\n",
            "  \"plaintext_score_ns_per_pair\": {:.3},\n",
            "  \"score_speedup\": {:.4},\n",
            "  \"min_score_speedup_gate\": {:.2},\n",
            "  \"blocking_bands\": {},\n",
            "  \"blocking_band_bits\": {},\n",
            "  \"blocking_completeness\": {:.6},\n",
            "  \"blocking_gold_hits\": {},\n",
            "  \"blocking_distinct_candidates\": {},\n",
            "  \"blocking_candidates_per_record\": {:.3},\n",
            "  \"blocking_secs\": {:.9},\n",
            "  \"min_completeness_gate\": {:.2},\n",
            "  \"max_cand_per_record_gate\": {:.1},\n",
            "  \"reencode_identical\": true\n",
            "}}\n"
        ),
        args.population,
        args.snapshots,
        args.seed,
        store.cluster_count(),
        rows.len(),
        gold.len(),
        args.reps,
        params.canonical(),
        encode_best,
        mean(&encode_secs),
        encode_rate,
        args.min_encode_rate,
        pairs,
        encoded_ns,
        plain_ns,
        score_speedup,
        args.min_score_speedup,
        args.bands,
        args.band_bits,
        completeness,
        sink.gold_hits(),
        distinct,
        cand_per_record,
        block_secs,
        args.min_completeness,
        args.max_cand_per_record,
    );
    std::fs::write(&args.out, json).expect("write benchmark json");
    eprintln!("wrote {}", args.out.display());
}
