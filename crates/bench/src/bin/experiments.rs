//! Regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p nc-bench --bin experiments -- all
//! cargo run --release -p nc-bench --bin experiments -- table2 --pop 5000 --snapshots 40
//! ```
//!
//! Results are printed and also written as JSON under `results/`.

use std::path::PathBuf;

use nc_bench::context::{ExperimentScale, NcContext};
use nc_bench::table3::NcBandSizes;
use nc_bench::{ablation, figure1, figure4, figure5, output, pollution, table1, table2, table3, table4, updates};
use nc_core::scoring::ScoringConfig;

struct Args {
    command: String,
    scale: ExperimentScale,
    out_dir: PathBuf,
    sample: usize,
    output_clusters: usize,
    scoring: ScoringConfig,
}

fn parse_args() -> Args {
    let mut command = String::from("all");
    let mut scale = ExperimentScale::default();
    let mut out_dir = PathBuf::from("results");
    let mut sample = 2_000;
    let mut output_clusters = 600;
    let mut scoring = ScoringConfig::default();

    let mut args = std::env::args().skip(1).peekable();
    if let Some(first) = args.peek() {
        if !first.starts_with("--") {
            command = args.next().expect("peeked");
        }
    }
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--pop" => scale.population = value().parse().expect("--pop takes a number"),
            "--snapshots" => scale.snapshots = value().parse().expect("--snapshots takes a number"),
            "--seed" => scale.seed = value().parse().expect("--seed takes a number"),
            "--out" => out_dir = PathBuf::from(value()),
            "--sample" => sample = value().parse().expect("--sample takes a number"),
            "--clusters" => output_clusters = value().parse().expect("--clusters takes a number"),
            "--threads" => {
                scoring.threads = value().parse().expect("--threads takes a number");
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    Args {
        command,
        scale,
        out_dir,
        sample,
        output_clusters,
        scoring,
    }
}

fn main() {
    let args = parse_args();
    let scale = args.scale;
    let sizes = NcBandSizes {
        sample: args.sample,
        output: args.output_clusters,
    };
    eprintln!(
        "scale: population {}, {} snapshots, seed {}",
        scale.population, scale.snapshots, scale.seed
    );

    let needs_context = matches!(
        args.command.as_str(),
        "all" | "figure4a" | "figure4b" | "table3" | "table4" | "figure5" | "pollution" | "scores"
    );
    let ctx = needs_context.then(|| {
        eprintln!("building NC context (generate + import + weights)…");
        NcContext::build_with(&scale, args.scoring)
    });

    let run_one = |name: &str, ctx: Option<&NcContext>| match name {
        "table1" => {
            let t = table1::run(&scale);
            println!("{}", table1::render(&t));
            output::write_json(&args.out_dir, "table1", &t).expect("write json");
        }
        "table2" => {
            let t = table2::run(&scale);
            println!("{}", table2::render(&t));
            output::write_json(&args.out_dir, "table2", &t).expect("write json");
        }
        "figure1" => {
            let f = figure1::run(&scale);
            println!("{}", figure1::render(&f));
            output::write_json(&args.out_dir, "figure1", &f).expect("write json");
        }
        "figure4a" => {
            let f = figure4::run_4a(ctx.expect("context"));
            println!("Figure 4a: plausibility distributions\n");
            println!("{}", figure4::render_distribution(&f.clusters));
            println!("{}", figure4::render_distribution(&f.pairs));
            output::write_json(&args.out_dir, "figure4a", &f).expect("write json");
        }
        "figure4b" => {
            let f = figure4::run_4b(ctx.expect("context"));
            println!("Figure 4b: NC heterogeneity distributions\n");
            println!("{}", figure4::render_distribution(&f.clusters));
            println!("{}", figure4::render_distribution(&f.pairs));
            output::write_json(&args.out_dir, "figure4b", &f).expect("write json");
        }
        "figure4c" => {
            let f = figure4::run_4c(scale.seed);
            println!("Figure 4c: comparator heterogeneity distributions\n");
            for d in &f.datasets {
                println!("{}", figure4::render_distribution(d));
            }
            output::write_json(&args.out_dir, "figure4c", &f).expect("write json");
        }
        "table3" => {
            let t = table3::run(ctx.expect("context"), &sizes, scale.seed);
            println!("{}", table3::render(&t));
            output::write_json(&args.out_dir, "table3", &t).expect("write json");
        }
        "table4" => {
            let t = table4::run(ctx.expect("context"), scale.seed);
            println!("{}", table4::render(&t));
            output::write_json(&args.out_dir, "table4", &t).expect("write json");
        }
        "figure5" => {
            let f = figure5::run(ctx.expect("context"), &sizes, scale.seed);
            println!("{}", figure5::render(&f));
            output::write_json(&args.out_dir, "figure5", &f).expect("write json");
        }
        "updates" => {
            let u = updates::run(&ExperimentScale {
                snapshots: scale.snapshots.min(12),
                ..scale
            });
            println!("{}", updates::render(&u));
            output::write_json(&args.out_dir, "updates", &u).expect("write json");
        }
        "pollution" => {
            let p = pollution::run(ctx.expect("context"), &sizes, scale.seed);
            println!("{}", pollution::render(&p));
            output::write_json(&args.out_dir, "pollution", &p).expect("write json");
        }
        "ablation" => {
            let a = ablation::run(&scale);
            println!("{}", ablation::render(&a));
            output::write_json(&args.out_dir, "ablation", &a).expect("write json");
        }
        "scores" => {
            let ctx = ctx.expect("context");
            let scores = ctx
                .outcome
                .cluster_scores(&ctx.het_person, &ctx.scoring);
            let multi = scores.iter().filter(|s| s.records >= 2).count();
            let mean_p: f64 =
                scores.iter().map(|s| s.plausibility).sum::<f64>() / scores.len().max(1) as f64;
            let mean_h: f64 =
                scores.iter().map(|s| s.heterogeneity).sum::<f64>() / scores.len().max(1) as f64;
            println!(
                "scored {} clusters ({} multi-record) on {} threads: mean plausibility {:.4}, mean heterogeneity {:.4}",
                scores.len(),
                multi,
                ctx.scoring.effective_threads(),
                mean_p,
                mean_h
            );
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!(
                "available: table1 table2 table3 table4 figure1 figure4a figure4b figure4c figure5 updates ablation pollution scores all"
            );
            std::process::exit(2);
        }
    };

    if args.command == "all" {
        for name in [
            "table1", "table2", "figure1", "figure4a", "figure4b", "figure4c", "table3",
            "table4", "figure5", "updates", "ablation", "pollution",
        ] {
            eprintln!("\n=== {name} ===");
            run_one(name, ctx.as_ref());
        }
    } else {
        run_one(&args.command, ctx.as_ref());
    }
}
