//! Bounded syscall-fault sweep over the shard engine, as a benchmark
//! binary: crash the third-snapshot ingest at every K-th mutating
//! syscall, reopen, and count where recovery lands. Zero "third
//! states" is asserted, the pre/post landing counts are the report.
//!
//! ```sh
//! cargo run --release -p nc-bench --bin bench_faults -- \
//!     --pop 120 --shards 2 --stride 7 --chaos-runs 48 --out BENCH_faults.json
//! ```
//!
//! `--stride 1` sweeps every operation (what the CI smoke runs with a
//! larger stride); the chaos phase then replays the same scenario under
//! seeded random fault schedules ([`FaultVfs::with_seed`]) and counts
//! how many injected faults the engine survived. Everything here is
//! TSV-based, so the binary runs for real under the offline `.verify`
//! stub harness. The JSON is written by hand so the binary has no
//! serialization dependency.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use nc_core::record::DedupPolicy;
use nc_core::tsv::{self, ImportOptions};
use nc_shard::{ShardEngine, ShardEngineConfig};
use nc_vfs::fault::FaultVfs;
use nc_votergen::config::GeneratorConfig;
use nc_votergen::registry::Registry;
use nc_votergen::snapshot::standard_calendar;

struct Args {
    population: usize,
    shards: usize,
    seed: u64,
    stride: u64,
    chaos_runs: u64,
    chaos_p: f64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        population: 120,
        shards: 2,
        seed: 2021,
        stride: 1,
        chaos_runs: 32,
        chaos_p: 0.02,
        out: PathBuf::from("BENCH_faults.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--pop" => parsed.population = value().parse().expect("--pop takes a number"),
            "--shards" => parsed.shards = value().parse().expect("--shards takes a number"),
            "--seed" => parsed.seed = value().parse().expect("--seed takes a number"),
            "--stride" => parsed.stride = value().parse().expect("--stride takes a number"),
            "--chaos-runs" => {
                parsed.chaos_runs = value().parse().expect("--chaos-runs takes a number")
            }
            "--chaos-p" => parsed.chaos_p = value().parse().expect("--chaos-p takes a number"),
            "--out" => parsed.out = PathBuf::from(value()),
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!(
                    "usage: bench_faults [--pop N] [--shards N] [--seed N] [--stride N] \
                     [--chaos-runs N] [--chaos-p F] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    parsed.stride = parsed.stride.max(1);
    parsed
}

fn tmp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("nc_bench_faults_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    fs::create_dir_all(to).expect("create copy target");
    for entry in fs::read_dir(from).expect("read state dir") {
        let entry = entry.expect("dir entry");
        let dst = to.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &dst);
        } else {
            fs::copy(entry.path(), &dst).expect("copy state file");
        }
    }
}

fn config(shards: usize) -> ShardEngineConfig {
    ShardEngineConfig {
        segment_bytes: 8 << 10,
        ..ShardEngineConfig::new(shards, DedupPolicy::Trimmed, 1)
    }
}

/// A byte-exact digest of everything observable about an engine.
fn fingerprint(engine: &ShardEngine) -> String {
    let store = engine.store();
    let mut out = String::new();
    for (ncid, _) in store.cluster_ids() {
        out.push_str(&ncid);
        out.push('\n');
        for row in store.cluster_rows(&ncid) {
            out.push_str(&row.to_tsv());
            out.push('\n');
        }
    }
    out.push_str(&format!(
        "records {} rows {} completed {}\n",
        store.record_count(),
        store.rows_imported(),
        engine.completed().len()
    ));
    out
}

fn main() {
    let args = parse_args();
    eprintln!(
        "building scenario: population {}, shards {}, seed {}…",
        args.population, args.shards, args.seed
    );

    let archive = tmp_dir("archive");
    let mut registry = Registry::new(GeneratorConfig {
        seed: args.seed,
        initial_population: args.population,
        ..Default::default()
    });
    for info in standard_calendar().iter().take(3) {
        let snap = registry.generate_snapshot(info);
        tsv::write_snapshot(&archive, &snap).expect("write snapshot");
    }

    // Base state: the first two snapshots committed.
    let partial = tmp_dir("partial");
    for path in tsv::archive_files(&archive)
        .expect("list archive")
        .into_iter()
        .take(2)
    {
        fs::copy(&path, partial.join(path.file_name().expect("file name"))).expect("copy");
    }
    let base = tmp_dir("base");
    let mut engine = ShardEngine::open(&base, config(args.shards)).expect("open base");
    engine
        .ingest_archive(&partial, &ImportOptions::strict())
        .expect("ingest base");
    let pre = fingerprint(&engine);
    drop(engine);

    // Reference: the uninterrupted three-snapshot run.
    let full = tmp_dir("full");
    let mut engine = ShardEngine::open(&full, config(args.shards)).expect("open full");
    engine
        .ingest_archive(&archive, &ImportOptions::strict())
        .expect("ingest full");
    let post = fingerprint(&engine);
    drop(engine);
    fs::remove_dir_all(&full).ok();

    // Learn the syscall trace of the third-snapshot ingest.
    let trace_state = tmp_dir("trace");
    copy_dir(&base, &trace_state);
    let recorder = FaultVfs::recorder();
    let mut engine =
        ShardEngine::open_with_vfs(&trace_state, config(args.shards), Arc::new(recorder.clone()))
            .expect("open recorder");
    engine
        .ingest_archive(&archive, &ImportOptions::strict())
        .expect("recorder ingest");
    drop(engine);
    fs::remove_dir_all(&trace_state).ok();
    let total = recorder.ops();

    // Phase 1: crash sweep at every `stride`-th operation.
    eprintln!("crash sweep: {total} syscalls, stride {}…", args.stride);
    let started = Instant::now();
    let (mut landed_pre, mut landed_post, mut swept) = (0u64, 0u64, 0u64);
    let mut k = 0;
    while k < total {
        swept += 1;
        let state = tmp_dir("sweep");
        copy_dir(&base, &state);
        let vfs = FaultVfs::crash_at(k);
        let failed =
            match ShardEngine::open_with_vfs(&state, config(args.shards), Arc::new(vfs.clone())) {
                Ok(mut engine) => engine
                    .ingest_archive(&archive, &ImportOptions::strict())
                    .is_err(),
                Err(_) => true,
            };
        assert!(failed, "crash at {k} of {total} must surface an error");

        let mut reopened = ShardEngine::open(&state, config(args.shards)).expect("reopen");
        let print = fingerprint(&reopened);
        if print == pre {
            landed_pre += 1;
        } else if print == post {
            landed_post += 1;
        } else {
            panic!("crash at {k} recovered to a third state");
        }
        reopened
            .ingest_archive(&archive, &ImportOptions::strict())
            .expect("resume");
        assert_eq!(fingerprint(&reopened), post, "resume after crash at {k}");
        drop(reopened);
        fs::remove_dir_all(&state).ok();
        k += args.stride;
    }
    let sweep_secs = started.elapsed().as_secs_f64();

    // Phase 2: seeded random chaos. Every run either succeeds (no fault
    // hit a critical op) or fails and must still recover to pre/post.
    eprintln!("chaos: {} seeded runs at p={}…", args.chaos_runs, args.chaos_p);
    let started = Instant::now();
    let (mut chaos_faults, mut chaos_failed, mut chaos_rollbacks) = (0u64, 0u64, 0u64);
    for run in 0..args.chaos_runs {
        let state = tmp_dir("chaos");
        copy_dir(&base, &state);
        let vfs = FaultVfs::with_seed(args.seed ^ (run + 1), args.chaos_p);
        match ShardEngine::open_with_vfs(&state, config(args.shards), Arc::new(vfs.clone())) {
            Ok(mut engine) => {
                if engine
                    .ingest_archive(&archive, &ImportOptions::strict())
                    .is_err()
                {
                    chaos_failed += 1;
                    if engine.last_failure().is_some() {
                        chaos_rollbacks += 1;
                    }
                }
            }
            Err(_) => chaos_failed += 1,
        }
        chaos_faults += vfs.faults_fired();

        let mut reopened = ShardEngine::open(&state, config(args.shards)).expect("chaos reopen");
        let print = fingerprint(&reopened);
        assert!(
            print == pre || print == post,
            "chaos run {run} recovered to a third state"
        );
        reopened
            .ingest_archive(&archive, &ImportOptions::strict())
            .expect("chaos resume");
        assert_eq!(fingerprint(&reopened), post, "chaos run {run} resume");
        drop(reopened);
        fs::remove_dir_all(&state).ok();
    }
    let chaos_secs = started.elapsed().as_secs_f64();

    fs::remove_dir_all(&archive).ok();
    fs::remove_dir_all(&partial).ok();
    fs::remove_dir_all(&base).ok();

    println!(
        "crash sweep: {swept} of {total} syscalls swept, {landed_pre} recovered pre, \
         {landed_post} post, 0 third states ({sweep_secs:.1}s)\n\
         chaos: {} runs, {chaos_faults} faults fired, {chaos_failed} ingests failed, \
         {chaos_rollbacks} clean rollbacks, all recovered ({chaos_secs:.1}s)",
        args.chaos_runs,
    );

    // Hand-rolled JSON: flat object, stable key order.
    let json = format!(
        concat!(
            "{{\n",
            "  \"population\": {},\n",
            "  \"shards\": {},\n",
            "  \"seed\": {},\n",
            "  \"stride\": {},\n",
            "  \"syscalls_total\": {},\n",
            "  \"crash_points_swept\": {},\n",
            "  \"recovered_pre_commit\": {},\n",
            "  \"recovered_post_commit\": {},\n",
            "  \"third_states\": 0,\n",
            "  \"sweep_secs\": {:.3},\n",
            "  \"chaos_runs\": {},\n",
            "  \"chaos_p\": {},\n",
            "  \"chaos_faults_fired\": {},\n",
            "  \"chaos_ingests_failed\": {},\n",
            "  \"chaos_clean_rollbacks\": {},\n",
            "  \"chaos_secs\": {:.3}\n",
            "}}\n"
        ),
        args.population,
        args.shards,
        args.seed,
        args.stride,
        total,
        swept,
        landed_pre,
        landed_post,
        sweep_secs,
        args.chaos_runs,
        args.chaos_p,
        chaos_faults,
        chaos_failed,
        chaos_rollbacks,
        chaos_secs,
    );
    fs::write(&args.out, json).expect("write BENCH_faults.json");
    eprintln!("wrote {}", args.out.display());
}
