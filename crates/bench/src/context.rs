//! Shared experiment context: one generated archive reused by all NC
//! experiments.

use nc_core::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use nc_core::pipeline::{GenerationConfig, GenerationOutcome, TestDataGenerator};
use nc_core::record::DedupPolicy;
use nc_core::scoring::ScoringConfig;
use nc_votergen::config::GeneratorConfig;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Initial voter population of the simulated registry.
    pub population: usize,
    /// Snapshots used from the 40-snapshot calendar.
    pub snapshots: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            population: 2_000,
            snapshots: 40,
            seed: 2021,
        }
    }
}

impl ExperimentScale {
    /// A very small scale for unit tests.
    pub fn tiny() -> Self {
        ExperimentScale {
            population: 150,
            snapshots: 6,
            seed: 1,
        }
    }

    /// The generator configuration at this scale.
    pub fn generator(&self) -> GeneratorConfig {
        GeneratorConfig {
            seed: self.seed,
            initial_population: self.population,
            ..Default::default()
        }
    }

    /// Run the pipeline under a policy at this scale.
    pub fn run(&self, policy: DedupPolicy) -> GenerationOutcome {
        TestDataGenerator::run(GenerationConfig {
            generator: self.generator(),
            policy,
            snapshots: self.snapshots,
        })
    }
}

/// A generated archive plus the entropy-weighted heterogeneity scorers
/// derived from it — the shared input of Figures 4–5 and Table 3.
pub struct NcContext {
    /// The generation outcome (trimming policy, as in the published
    /// dataset).
    pub outcome: GenerationOutcome,
    /// Heterogeneity scorer over person attributes.
    pub het_person: HeterogeneityScorer,
    /// Heterogeneity scorer over all attributes.
    pub het_all: HeterogeneityScorer,
    /// Worker-pool configuration used by the scoring experiments.
    pub scoring: ScoringConfig,
}

impl NcContext {
    /// Build the context at a scale with the default worker pool.
    pub fn build(scale: &ExperimentScale) -> Self {
        Self::build_with(scale, ScoringConfig::default())
    }

    /// Build the context at a scale with an explicit scoring pool.
    pub fn build_with(scale: &ExperimentScale, scoring: ScoringConfig) -> Self {
        let outcome = scale.run(DedupPolicy::Trimmed);
        let firsts: Vec<_> = outcome
            .store
            .cluster_ids()
            .iter()
            .filter_map(|(n, _)| outcome.store.cluster_rows(n).into_iter().next())
            .collect();
        let het_person =
            HeterogeneityScorer::new(AttributeWeights::from_rows(Scope::Person, firsts.iter()));
        let het_all =
            HeterogeneityScorer::new(AttributeWeights::from_rows(Scope::All, firsts.iter()));
        NcContext {
            outcome,
            het_person,
            het_all,
            scoring,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_context_builds() {
        let ctx = NcContext::build(&ExperimentScale::tiny());
        assert!(ctx.outcome.store.cluster_count() >= 150);
        assert!(ctx.outcome.store.record_count() > 0);
    }

    #[test]
    fn scale_run_respects_policy() {
        let scale = ExperimentScale::tiny();
        let none = scale.run(DedupPolicy::None);
        let trimmed = scale.run(DedupPolicy::Trimmed);
        assert!(none.store.record_count() > trimmed.store.record_count());
    }
}
