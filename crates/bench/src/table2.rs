//! Table 2: statistical results of the generation process under the
//! four duplicate-removal policies.

use serde::Serialize;

use nc_core::record::DedupPolicy;
use nc_core::stats::generation_table_row;

use crate::context::ExperimentScale;
use crate::output::{num, pct};

/// Serializable Table 2 row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Policy label.
    pub policy: String,
    /// Records kept.
    pub records: u64,
    /// Duplicate pairs among kept records.
    pub duplicate_pairs: u64,
    /// Average cluster size.
    pub avg_cluster_size: f64,
    /// Maximum cluster size.
    pub max_cluster_size: u64,
    /// Rows removed as duplicates.
    pub removed_records: u64,
    /// Fraction of rows removed.
    pub removed_record_rate: f64,
    /// Duplicate pairs removed vs the no-removal baseline.
    pub removed_pairs: u64,
    /// Fraction of baseline pairs removed.
    pub removed_pair_rate: f64,
}

/// The full Table 2 result.
#[derive(Debug, Clone, Serialize)]
pub struct Table2 {
    /// Number of objects (identical across policies).
    pub clusters: u64,
    /// One row per policy.
    pub rows: Vec<Row>,
}

/// Run the experiment: four imports of the same archive.
pub fn run(scale: &ExperimentScale) -> Table2 {
    let mut rows = Vec::new();
    let mut clusters = 0;
    for policy in DedupPolicy::ALL {
        let outcome = scale.run(policy);
        let s = generation_table_row(&outcome.store, policy.label());
        clusters = s.clusters;
        rows.push(Row {
            policy: s.policy.to_owned(),
            records: s.records,
            duplicate_pairs: s.duplicate_pairs,
            avg_cluster_size: s.avg_cluster_size,
            max_cluster_size: s.max_cluster_size,
            removed_records: s.removed_records,
            removed_record_rate: s.removed_record_rate,
            removed_pairs: s.removed_pairs,
            removed_pair_rate: s.removed_pair_rate,
        });
    }
    Table2 { clusters, rows }
}

/// Render as the paper's table layout.
pub fn render(t: &Table2) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 2: generation statistics (number of objects was always {})\n",
        t.clusters
    ));
    out.push_str(
        "removal       #records  #dupl pairs   avg size  max   #removed    rate   rm pairs    rate\n",
    );
    for r in &t.rows {
        out.push_str(&format!(
            "{:<12} {} {} {:>10.2} {:>4} {} {} {} {}\n",
            r.policy,
            num(r.records),
            num(r.duplicate_pairs),
            r.avg_cluster_size,
            r.max_cluster_size,
            num(r.removed_records),
            pct(r.removed_record_rate),
            num(r.removed_pairs),
            pct(r.removed_pair_rate),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_compress_progressively() {
        let t = run(&ExperimentScale::tiny());
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0].policy, "no");
        assert_eq!(t.rows[0].removed_records, 0);
        // Monotone record compression across policies.
        for w in t.rows.windows(2) {
            assert!(w[0].records >= w[1].records, "{w:?}");
        }
        let rendered = render(&t);
        assert!(rendered.contains("person data"));
    }
}
