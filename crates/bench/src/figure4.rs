//! Figure 4: score distributions — (a) plausibility of the NC clusters
//! and pairs, (b) heterogeneity of the NC clusters and pairs, (c)
//! heterogeneity of the Cora/Census/CDDB comparators.

use serde::Serialize;

use nc_core::plausibility::PlausibilityScorer;
use nc_core::scoring::map_clusters;
use nc_core::stats::ScoreDistribution;
use nc_votergen::schema::Row;
use nc_datasets::characteristics::gold_pair_heterogeneities;
use nc_datasets::{cddb, census, cora};

use crate::context::NcContext;
use crate::output::render_histogram;

const BINS: usize = 20;

/// A serializable score distribution.
#[derive(Debug, Clone, Serialize)]
pub struct Distribution {
    /// Series label.
    pub label: String,
    /// Bin counts over [0, 1].
    pub counts: Vec<u64>,
    /// Observations.
    pub n: u64,
    /// Mean score.
    pub mean: f64,
    /// Minimum score.
    pub min: f64,
    /// Maximum score.
    pub max: f64,
    /// Fraction of observations at the top bin boundary (= 1.0 for
    /// plausibility).
    pub fraction_at_one: f64,
}

impl Distribution {
    fn from(label: &str, d: &ScoreDistribution) -> Self {
        Distribution {
            label: label.to_owned(),
            counts: d.counts.clone(),
            n: d.n,
            mean: d.mean(),
            min: if d.n == 0 { 0.0 } else { d.min },
            max: if d.n == 0 { 0.0 } else { d.max },
            fraction_at_one: d.fraction_at_least(1.0 - 1e-9),
        }
    }
}

/// Figure 4a result: plausibility distributions.
#[derive(Debug, Clone, Serialize)]
pub struct Figure4a {
    /// Cluster-level distribution.
    pub clusters: Distribution,
    /// Pair-level distribution.
    pub pairs: Distribution,
}

/// The multi-record clusters of a store, in `cluster_ids` order.
fn multi_record_clusters(ctx: &NcContext) -> Vec<Vec<Row>> {
    let store = &ctx.outcome.store;
    store
        .cluster_ids()
        .into_iter()
        .map(|(ncid, _)| store.cluster_rows(&ncid))
        .filter(|rows| rows.len() >= 2)
        .collect()
}

/// Run Figure 4a over a built NC context. Clusters are scored on the
/// context's worker pool; the distributions are filled in cluster
/// order, so the figure is identical for every thread count.
pub fn run_4a(ctx: &NcContext) -> Figure4a {
    let scorer = PlausibilityScorer::new();
    let mut clusters = ScoreDistribution::new(BINS);
    let mut pairs = ScoreDistribution::new(BINS);
    let scored = map_clusters(&ctx.scoring, &multi_record_clusters(ctx), |scratch, rows| {
        scorer.pair_scores_with(scratch, rows)
    });
    for pair_scores in &scored {
        for &p in pair_scores {
            pairs.observe(p);
        }
        clusters.observe(pair_scores.iter().copied().fold(1.0, f64::min));
    }
    Figure4a {
        clusters: Distribution::from("cluster plausibility", &clusters),
        pairs: Distribution::from("pair plausibility", &pairs),
    }
}

/// Figure 4b result: NC heterogeneity distributions.
#[derive(Debug, Clone, Serialize)]
pub struct Figure4b {
    /// Cluster-level distribution.
    pub clusters: Distribution,
    /// Pair-level distribution.
    pub pairs: Distribution,
}

/// Run Figure 4b over a built NC context (person attributes, as in the
/// paper's published scores).
pub fn run_4b(ctx: &NcContext) -> Figure4b {
    let mut clusters = ScoreDistribution::new(BINS);
    let mut pairs = ScoreDistribution::new(BINS);
    let scored = map_clusters(&ctx.scoring, &multi_record_clusters(ctx), |scratch, rows| {
        (
            ctx.het_person.pair_scores_with(scratch, rows),
            ctx.het_person.cluster_with(scratch, rows),
        )
    });
    for (pair_scores, cluster_score) in &scored {
        for &h in pair_scores {
            pairs.observe(h);
        }
        clusters.observe(*cluster_score);
    }
    Figure4b {
        clusters: Distribution::from("cluster heterogeneity", &clusters),
        pairs: Distribution::from("pair heterogeneity", &pairs),
    }
}

/// Figure 4c result: comparator heterogeneity distributions.
#[derive(Debug, Clone, Serialize)]
pub struct Figure4c {
    /// One distribution per comparator dataset.
    pub datasets: Vec<Distribution>,
}

/// Run Figure 4c (pair heterogeneity of Cora, Census, CDDB).
pub fn run_4c(seed: u64) -> Figure4c {
    let mut datasets = Vec::new();
    for (label, data) in [
        ("Cora", cora::generate(seed)),
        ("Census", census::generate(seed)),
        ("CDDB", cddb::generate(seed)),
    ] {
        let mut dist = ScoreDistribution::new(BINS);
        for h in gold_pair_heterogeneities(&data) {
            dist.observe(h);
        }
        datasets.push(Distribution::from(label, &dist));
    }
    Figure4c { datasets }
}

/// Render any distribution with its histogram.
pub fn render_distribution(d: &Distribution) -> String {
    let mut out = format!(
        "-- {} (n = {}, mean {:.3}, min {:.3}, max {:.3}, at-1.0 {:.1} %) --\n",
        d.label,
        d.n,
        d.mean,
        d.min,
        d.max,
        100.0 * d.fraction_at_one
    );
    render_histogram(&d.counts, BINS, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentScale;

    #[test]
    fn plausibility_mass_sits_at_one() {
        let ctx = NcContext::build(&ExperimentScale::tiny());
        let f = run_4a(&ctx);
        assert!(f.clusters.n > 0);
        assert!(f.clusters.mean > 0.9, "mean {}", f.clusters.mean);
        assert!(
            f.clusters.fraction_at_one > 0.5,
            "fraction at 1.0: {}",
            f.clusters.fraction_at_one
        );
        assert!(f.pairs.n >= f.clusters.n);
    }

    #[test]
    fn heterogeneity_is_low_but_nonzero() {
        let ctx = NcContext::build(&ExperimentScale::tiny());
        let f = run_4b(&ctx);
        assert!(f.clusters.mean > 0.0);
        assert!(f.clusters.mean < 0.4, "mean {}", f.clusters.mean);
        assert!(f.pairs.max <= 1.0);
        assert!(!render_distribution(&f.pairs).is_empty());
    }

    #[test]
    fn comparator_distributions_cover_three_datasets() {
        let f = run_4c(3);
        assert_eq!(f.datasets.len(), 3);
        for d in &f.datasets {
            assert!(d.n > 0, "{}", d.label);
            assert!(d.mean > 0.0, "{}: {}", d.label, d.mean);
        }
    }
}
