//! Benchmarks of the document-store substrate: indexed vs scanned
//! lookups, updates and aggregation pipelines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nc_docstore::prelude::*;

fn build_collection(n: usize, indexed: bool) -> Collection {
    let mut coll = Collection::new("voters");
    if indexed {
        coll.create_index("ncid", IndexKind::Hash);
        coll.create_index("age", IndexKind::Ordered);
    }
    for i in 0..n {
        coll.insert(doc! {
            "ncid" => format!("AA{i:06}"),
            "name" => format!("NAME{}", i % 97),
            "age" => (18 + (i % 80)) as i64,
            "county" => format!("C{}", i % 50),
        });
    }
    coll
}

fn bench_lookups(c: &mut Criterion) {
    let n = 20_000;
    let indexed = build_collection(n, true);
    let scanned = build_collection(n, false);
    let mut group = c.benchmark_group("docstore_lookup");
    group.sample_size(20);

    group.bench_function("point_lookup_indexed", |b| {
        b.iter(|| black_box(indexed.find(&Filter::eq("ncid", "AA010000")).len()))
    });
    group.bench_function("point_lookup_scan", |b| {
        b.iter(|| black_box(scanned.find(&Filter::eq("ncid", "AA010000")).len()))
    });
    group.bench_function("range_lookup_indexed", |b| {
        b.iter(|| black_box(indexed.find(&Filter::between("age", 30_i64, 35_i64)).len()))
    });
    group.bench_function("range_lookup_scan", |b| {
        b.iter(|| black_box(scanned.find(&Filter::between("age", 30_i64, 35_i64)).len()))
    });
    group.finish();
}

fn bench_mutations(c: &mut Criterion) {
    let mut group = c.benchmark_group("docstore_mutation");
    group.sample_size(10);
    group.bench_function("insert_10k_indexed", |b| {
        b.iter(|| black_box(build_collection(10_000, true).len()))
    });
    group.bench_function("insert_10k_plain", |b| {
        b.iter(|| black_box(build_collection(10_000, false).len()))
    });
    group.bench_function("update_indexed_field", |b| {
        let mut coll = build_collection(10_000, true);
        let mut i = 0u64;
        b.iter(|| {
            let id = i % 10_000;
            coll.update(id, |d| {
                d.set("age", 44_i64);
            });
            i += 1;
        })
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let coll = build_collection(20_000, true);
    let mut group = c.benchmark_group("docstore_pipeline");
    group.sample_size(10);
    group.bench_function("group_by_county_count_avg", |b| {
        let pipeline = Pipeline::new()
            .matching(Filter::gte("age", 30_i64))
            .group(
                "county",
                vec![
                    ("n".into(), Accumulator::Count),
                    ("avg_age".into(), Accumulator::Avg("age".into())),
                ],
            )
            .sort("n", true)
            .limit(10);
        b.iter(|| black_box(pipeline.run(&coll).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_lookups, bench_mutations, bench_pipeline);
criterion_main!(benches);
