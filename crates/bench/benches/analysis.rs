//! Benchmarks of the Table-4 irregularity analysis.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nc_analysis::report::{analyze, AnalysisConfig};
use nc_analysis::singleton::SingletonConfig;
use nc_analysis::{pairwise, singleton};
use nc_datasets::census;

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("irregularity_detectors");
    let pairs = [
        ("ADELL", "ADELLE"),
        ("BAILEY", "BAYLEE"),
        ("NIC0LE", "NICOLE"),
        ("ANH THI", "THI ANH"),
        ("KIM", "KIMBERLY"),
        ("MARY-ANN", "MARY ANN"),
    ];
    group.bench_function("all_single_attr_checks", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(pairwise::is_typo(x, y));
                black_box(pairwise::is_ocr_error(x, y));
                black_box(pairwise::is_phonetic(x, y));
                black_box(pairwise::is_prefix(x, y));
                black_box(pairwise::is_postfix(x, y));
                black_box(pairwise::is_formatting(x, y));
                black_box(pairwise::is_token_transposition(x, y));
            }
        })
    });
    group.bench_function("singleton_checks", |b| {
        let cfg = SingletonConfig {
            numeric_ranges: vec![(0, 17, 110)],
            alpha_attrs: vec![1],
        };
        b.iter(|| {
            for v in ["5069", "44", "A.", "", "unknown", "X ÆA-12"] {
                black_box(singleton::is_missing(v));
                black_box(singleton::is_abbreviation(v));
                black_box(singleton::is_outlier(&cfg, 0, v));
                black_box(singleton::is_outlier(&cfg, 1, v));
            }
        })
    });
    group.finish();
}

fn bench_full_profile(c: &mut Criterion) {
    let data = census::generate(1);
    let cfg = AnalysisConfig {
        singleton: SingletonConfig {
            numeric_ranges: vec![],
            alpha_attrs: vec![0, 1, 2],
        },
        confusable_pairs: vec![(0, 1), (1, 2), (0, 2)],
        analyzed_attrs: vec![],
        threads: 0,
    };
    let mut group = c.benchmark_group("error_profile");
    group.sample_size(20);
    group.bench_function("census_full_table4", |b| {
        b.iter(|| black_box(analyze(&data, &cfg).stats.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_detectors, bench_full_profile);
criterion_main!(benches);
