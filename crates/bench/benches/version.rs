//! Micro-benchmark of the `StoreSnapshot::capture_version` fast path:
//! when the requested version is the current one (and no unpublished
//! rows exist), capture skips `VersionManager::reconstruct` and its
//! per-cluster re-collect allocations entirely.
//!
//! Besides the timing groups, the harness counts global-allocator
//! calls for one capture on each path and prints the difference, so
//! the allocation claim is measured, not inferred. (Measured result:
//! row materialization dominates and the naive filter re-collects in
//! place, so the fast path saves bookkeeping work far more than it
//! saves allocations.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nc_core::cluster::ClusterStore;
use nc_core::import::ImportStats;
use nc_core::record::DedupPolicy;
use nc_core::snapshot::StoreSnapshot;
use nc_core::version::VersionManager;
use nc_votergen::schema::{Row, FIRST_NAME, LAST_NAME, NCID};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator with an allocation counter; benches only, so the
/// workspace's `forbid(unsafe_code)` library policy is untouched.
struct CountingAllocator;

// SAFETY: delegates directly to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let value = f();
    (value, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

/// A two-version store with `clusters` clusters of three records each:
/// two imported at version 1, one at version 2.
fn sample_store(clusters: usize) -> (ClusterStore, VersionManager) {
    let mut store = ClusterStore::new();
    let mut versions = VersionManager::new();
    let import = |store: &mut ClusterStore, i: usize, last: &str, snap: &str, version| {
        let mut row = Row::empty();
        row.set(NCID, format!("VB{i:06}"));
        row.set(FIRST_NAME, "QUINN");
        row.set(LAST_NAME, last);
        store.import_row(row, DedupPolicy::Trimmed, snap, version);
    };
    let stats = |date: &str| ImportStats {
        date: date.into(),
        total_rows: 0,
        new_records: 0,
        new_clusters: 0,
        quarantined: 0,
    };
    for i in 0..clusters {
        import(&mut store, i, "ALPHA", "s1", 1);
        import(&mut store, i, "ALPHB", "s1", 1);
    }
    versions.publish(&store, std::slice::from_ref(&stats("s1")));
    for i in 0..clusters {
        import(&mut store, i, "BRAVO", "s2", 2);
    }
    versions.publish(&store, std::slice::from_ref(&stats("s2")));
    (store, versions)
}

/// The pre-fast-path behavior: version-filter and re-collect every
/// cluster, no shortcuts — the baseline both the `capture_version`
/// fast path and `reconstruct`'s all-qualifying shortcut improve on.
fn naive_reconstruct(
    store: &ClusterStore,
    versions: &VersionManager,
    version: u32,
) -> StoreSnapshot {
    let _ = versions;
    let mut out = Vec::new();
    for (ncid, _) in store.cluster_ids() {
        let record_versions = store.record_versions(&ncid).expect("version info");
        let kept: Vec<Row> = store
            .cluster_rows(&ncid)
            .into_iter()
            .zip(record_versions.iter())
            .filter(|(_, &v)| v <= version)
            .map(|(r, _)| r)
            .collect();
        if !kept.is_empty() {
            out.push((ncid, kept));
        }
    }
    StoreSnapshot::from_clusters(version, out)
}

fn bench_capture_version(c: &mut Criterion) {
    let (store, versions) = sample_store(4_000);
    let current = versions.current().unwrap().number;

    // All three routes to the current version must agree before any is
    // worth timing.
    let (fast, fast_allocs) = allocations_during(|| {
        StoreSnapshot::capture_version(&store, &versions, current).unwrap()
    });
    let (slow, slow_allocs) = allocations_during(|| {
        StoreSnapshot::from_clusters(current, versions.reconstruct(&store, current))
    });
    let (naive, naive_allocs) =
        allocations_during(|| naive_reconstruct(&store, &versions, current));
    assert_eq!(fast.clusters(), slow.clusters());
    assert_eq!(fast.clusters(), naive.clusters());
    assert_eq!(fast.record_count(), slow.record_count());
    // Row materialization dominates the allocation profile on every
    // path, and the naive re-collect's `into_iter().filter().collect()`
    // collects in place — so the fast path's allocation saving is
    // small; its real win is skipping the per-cluster version
    // bookkeeping. The counter keeps that claim measured instead of
    // assumed.
    assert!(
        fast_allocs <= naive_allocs,
        "fast path must not allocate more than a naive re-collect \
         ({fast_allocs} vs {naive_allocs})"
    );
    assert!(
        fast_allocs <= slow_allocs,
        "fast path must not allocate more than reconstruct \
         ({fast_allocs} vs {slow_allocs})"
    );
    println!(
        "capture_version allocations at current version: fast path {fast_allocs}, \
         reconstruct {slow_allocs}, naive re-collect {naive_allocs} \
         ({} saved vs naive)",
        naive_allocs - fast_allocs
    );

    let mut group = c.benchmark_group("capture_version");
    group.sample_size(20);
    group.bench_function("fast_path_current", |b| {
        b.iter(|| {
            black_box(StoreSnapshot::capture_version(&store, &versions, black_box(current)).unwrap())
        })
    });
    group.bench_function("reconstruct_current", |b| {
        b.iter(|| {
            black_box(StoreSnapshot::from_clusters(
                current,
                versions.reconstruct(&store, black_box(current)),
            ))
        })
    });
    group.bench_function("naive_recollect_current", |b| {
        b.iter(|| black_box(naive_reconstruct(&store, &versions, black_box(current))))
    });
    // The slow path stays the only way to see the past; time it too so
    // a regression there is visible alongside the fast-path win.
    group.bench_function("reconstruct_past", |b| {
        b.iter(|| {
            black_box(StoreSnapshot::capture_version(&store, &versions, black_box(1)).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_capture_version);
criterion_main!(benches);
