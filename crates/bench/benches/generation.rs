//! Benchmarks of the archive generation and import pipeline — the
//! scalability claim behind Tables 1 and 2.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_core::cluster::ClusterStore;
use nc_core::import::import_snapshot;
use nc_core::record::DedupPolicy;
use nc_votergen::config::GeneratorConfig;
use nc_votergen::registry::Registry;
use nc_votergen::snapshot::standard_calendar;

fn bench_snapshot_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_generation");
    group.sample_size(10);
    for &pop in &[500usize, 2_000] {
        group.bench_with_input(BenchmarkId::new("first_snapshot", pop), &pop, |b, &pop| {
            let calendar = standard_calendar();
            b.iter(|| {
                let mut reg = Registry::new(GeneratorConfig {
                    seed: 1,
                    initial_population: pop,
                    ..Default::default()
                });
                black_box(reg.generate_snapshot(&calendar[0]).rows.len())
            })
        });
    }
    group.finish();
}

fn bench_import(c: &mut Criterion) {
    let mut group = c.benchmark_group("import");
    group.sample_size(10);

    // Pre-generate two snapshots once.
    let calendar = standard_calendar();
    let mut reg = Registry::new(GeneratorConfig {
        seed: 2,
        initial_population: 2_000,
        ..Default::default()
    });
    let s0 = reg.generate_snapshot(&calendar[0]);
    let s1 = reg.generate_snapshot(&calendar[1]);

    for policy in [DedupPolicy::Exact, DedupPolicy::Trimmed, DedupPolicy::PersonData] {
        group.bench_with_input(
            BenchmarkId::new("two_snapshots", policy.label()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut store = ClusterStore::new();
                    import_snapshot(&mut store, &s0, policy, 1);
                    import_snapshot(&mut store, &s1, policy, 1);
                    black_box(store.record_count())
                })
            },
        );
    }
    group.finish();
}

fn bench_fingerprint(c: &mut Criterion) {
    let calendar = standard_calendar();
    let mut reg = Registry::new(GeneratorConfig {
        seed: 3,
        initial_population: 1_000,
        ..Default::default()
    });
    let snap = reg.generate_snapshot(&calendar[0]);
    c.bench_function("fingerprint_1000_rows", |b| {
        b.iter(|| {
            for row in &snap.rows {
                black_box(nc_core::record::fingerprint(row, DedupPolicy::Trimmed));
            }
        })
    });
}

criterion_group!(benches, bench_snapshot_generation, bench_import, bench_fingerprint);
criterion_main!(benches);
