//! Microbenchmarks of the string-similarity measures — the hot path of
//! every scoring and detection experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nc_similarity::damerau::{DamerauLevenshtein, ExtendedDamerauLevenshtein};
use nc_similarity::gen_jaccard::GeneralizedJaccard;
use nc_similarity::jaro::JaroWinkler;
use nc_similarity::monge_elkan::MongeElkan;
use nc_similarity::ngram::NgramJaccard;
use nc_similarity::soundex::soundex;
use nc_similarity::StringSimilarity;

const PAIRS: &[(&str, &str)] = &[
    ("WILLIAMS", "WILLIAMSON"),
    ("DEBRA OEHRIE WILLIAMS", "WILLIAMS DEBRA OEHRLE"),
    ("KIMBERLY", "K."),
    ("JONATHAN", "JONATHAN"),
    ("MARY ELIZABETH FIELDS", "JOSHUA BETHEA"),
];

fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("string_similarity");
    group.sample_size(30);

    let dl = DamerauLevenshtein::new();
    group.bench_function("damerau_levenshtein", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(dl.sim(black_box(x), black_box(y)));
            }
        })
    });

    let ext = ExtendedDamerauLevenshtein::new();
    group.bench_function("extended_damerau", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(ext.sim(black_box(x), black_box(y)));
            }
        })
    });

    let jw = JaroWinkler::new();
    group.bench_function("jaro_winkler", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(jw.sim(black_box(x), black_box(y)));
            }
        })
    });

    let tri = NgramJaccard::trigram();
    group.bench_function("trigram_jaccard", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(tri.sim(black_box(x), black_box(y)));
            }
        })
    });

    let me = MongeElkan::new(DamerauLevenshtein::new());
    group.bench_function("monge_elkan", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(me.sim(black_box(x), black_box(y)));
            }
        })
    });

    let gj = GeneralizedJaccard::new(ExtendedDamerauLevenshtein::new());
    group.bench_function("generalized_jaccard", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(gj.sim(black_box(x), black_box(y)));
            }
        })
    });

    group.bench_function("soundex", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(soundex(black_box(x)));
                black_box(soundex(black_box(y)));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_measures);
criterion_main!(benches);
