//! Benchmarks of the detection pipeline (Figure 5): blocking, record
//! matching and the threshold sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_datasets::census;
use nc_detect::blocking::{Blocker, FullPairwise, SortedNeighborhood, StandardBlocking, StreamBlocker};
use nc_detect::eval::{linspace, score_candidates, threshold_sweep};
use nc_detect::index::{
    FreqVectorBlocker, IndexedQGramBlocker, IndexedTokenBlocker, SoundexBlocker,
};
use nc_detect::matcher::{MeasureKind, RecordMatcher};
use nc_detect::qgram_blocking::QGramBlocking;
use nc_detect::sink::PairCollector;

fn bench_blocking(c: &mut Criterion) {
    let data = census::generate(1);
    let keys = data.top_entropy_attrs(5);
    let mut group = c.benchmark_group("blocking_census");
    group.sample_size(10);

    group.bench_function("full_pairwise", |b| {
        b.iter(|| black_box(FullPairwise.candidates(&data).len()))
    });
    group.bench_function("standard", |b| {
        b.iter(|| black_box(StandardBlocking { key: 0 }.candidates(&data).len()))
    });
    for window in [10usize, 20] {
        group.bench_with_input(BenchmarkId::new("snm_multipass", window), &window, |b, &w| {
            let snm = SortedNeighborhood { keys: keys.clone(), window: w };
            b.iter(|| black_box(snm.candidates(&data).len()))
        });
    }
    group.finish();
}

fn bench_indexed_blocking(c: &mut Criterion) {
    let data = census::generate(1);
    let keys = data.top_entropy_attrs(5);
    let key = keys[0];
    let mut group = c.benchmark_group("indexed_blocking_census");
    group.sample_size(10);

    let stream = |blocker: &dyn StreamBlocker, data| {
        let mut collector = PairCollector::new();
        blocker.stream_into(data, &mut collector);
        collector.finish_count()
    };
    group.bench_function("qgram_scan", |b| {
        let scan = QGramBlocking::trigrams(key);
        b.iter(|| black_box(stream(&scan, &data)))
    });
    group.bench_function("qgram_indexed", |b| {
        let indexed = IndexedQGramBlocker::trigrams(key);
        b.iter(|| black_box(stream(&indexed, &data)))
    });
    group.bench_function("qgram_indexed_capped", |b| {
        let indexed = IndexedQGramBlocker::trigrams_capped(key, 64);
        b.iter(|| black_box(stream(&indexed, &data)))
    });
    group.bench_function("token_any", |b| {
        let tokens = IndexedTokenBlocker::any_token(keys.clone(), 64);
        b.iter(|| black_box(stream(&tokens, &data)))
    });
    group.bench_function("soundex", |b| {
        let phonetic = SoundexBlocker::new(key, 64);
        b.iter(|| black_box(stream(&phonetic, &data)))
    });
    group.bench_function("freq_vector_2_edits", |b| {
        let freq = FreqVectorBlocker::within_edits(key, 2, 64);
        b.iter(|| black_box(stream(&freq, &data)))
    });
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let data = census::generate(2);
    let blocker = SortedNeighborhood::multi_pass(data.top_entropy_attrs(5));
    let weights = data.entropy_weights();
    let mut group = c.benchmark_group("matching_census");
    group.sample_size(10);

    for kind in MeasureKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("score_candidates", kind.label()),
            &kind,
            |b, &kind| {
                let matcher = RecordMatcher::with_kind(kind, weights.clone(), vec![]);
                b.iter(|| black_box(score_candidates(&data, &blocker, &matcher).len()))
            },
        );
    }
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let data = census::generate(3);
    let blocker = SortedNeighborhood::multi_pass(data.top_entropy_attrs(5));
    let matcher = RecordMatcher::with_kind(MeasureKind::JaroWinkler, data.entropy_weights(), vec![]);
    let scored = score_candidates(&data, &blocker, &matcher);
    let gold = data.gold_pairs();
    let thresholds = linspace(0.3, 0.98, 100);
    c.bench_function("threshold_sweep_100_points", |b| {
        b.iter(|| black_box(threshold_sweep(&scored, &gold, &thresholds).len()))
    });
}

criterion_group!(benches, bench_blocking, bench_indexed_blocking, bench_matching, bench_sweep);
criterion_main!(benches);
