//! Benchmarks of the plausibility and heterogeneity scorers (Figures
//! 4a/4b): per-pair and per-cluster cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nc_core::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use nc_core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_core::plausibility::PlausibilityScorer;
use nc_core::record::DedupPolicy;
use nc_core::scoring::{map_clusters, ScoringConfig};
use nc_similarity::Scratch;
use nc_votergen::config::GeneratorConfig;
use nc_votergen::schema::Row;

fn sample_clusters() -> Vec<Vec<Row>> {
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed: 4,
            initial_population: 300,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots: 10,
    });
    outcome
        .store
        .cluster_ids()
        .into_iter()
        .map(|(ncid, _)| outcome.store.cluster_rows(&ncid))
        .filter(|rows| rows.len() >= 2)
        .take(100)
        .collect()
}

fn bench_plausibility(c: &mut Criterion) {
    let clusters = sample_clusters();
    let scorer = PlausibilityScorer::new();
    let mut group = c.benchmark_group("plausibility");
    group.sample_size(20);
    group.bench_function("pair", |b| {
        let (a, x) = (&clusters[0][0], &clusters[0][1]);
        b.iter(|| black_box(scorer.pair(black_box(a), black_box(x))))
    });
    group.bench_function("100_clusters", |b| {
        b.iter(|| {
            let total: f64 = clusters.iter().map(|rows| scorer.cluster(rows)).sum();
            black_box(total)
        })
    });
    group.finish();
}

fn bench_heterogeneity(c: &mut Criterion) {
    let clusters = sample_clusters();
    let firsts: Vec<Row> = clusters.iter().map(|rows| rows[0].clone()).collect();
    let mut group = c.benchmark_group("heterogeneity");
    group.sample_size(10);

    group.bench_function("entropy_weights", |b| {
        b.iter(|| black_box(AttributeWeights::from_rows(Scope::Person, black_box(&firsts))))
    });

    let scorer =
        HeterogeneityScorer::new(AttributeWeights::from_rows(Scope::Person, firsts.iter()));
    group.bench_function("pair_person_scope", |b| {
        let (a, x) = (&clusters[0][0], &clusters[0][1]);
        b.iter(|| black_box(scorer.pair(black_box(a), black_box(x))))
    });

    let scorer_all =
        HeterogeneityScorer::new(AttributeWeights::from_rows(Scope::All, firsts.iter()));
    group.bench_function("pair_all_scope", |b| {
        let (a, x) = (&clusters[0][0], &clusters[0][1]);
        b.iter(|| black_box(scorer_all.pair(black_box(a), black_box(x))))
    });

    group.bench_function("100_clusters_person_scope", |b| {
        b.iter(|| {
            let total: f64 = clusters.iter().map(|rows| scorer.cluster(rows)).sum();
            black_box(total)
        })
    });
    group.finish();
}

/// Scratch reuse vs per-call scratch: the same pair scored through an
/// explicit reused [`Scratch`] (the worker-pool path), the thread-local
/// scratch behind the classic `pair` API, and a fresh scratch per call
/// (the old allocation behavior).
fn bench_scratch_vs_alloc(c: &mut Criterion) {
    let clusters = sample_clusters();
    let firsts: Vec<Row> = clusters.iter().map(|rows| rows[0].clone()).collect();
    let scorer =
        HeterogeneityScorer::new(AttributeWeights::from_rows(Scope::Person, firsts.iter()));
    let (a, x) = (&clusters[0][0], &clusters[0][1]);
    let mut group = c.benchmark_group("scratch_vs_alloc");
    group.sample_size(20);
    group.bench_function("pair_reused_scratch", |b| {
        let mut scratch = Scratch::new();
        let (va, vx) = (scorer.view(a), scorer.view(x));
        b.iter(|| black_box(scorer.pair_with(&mut scratch, black_box(&va), black_box(&vx))))
    });
    group.bench_function("pair_thread_local_scratch", |b| {
        b.iter(|| black_box(scorer.pair(black_box(a), black_box(x))))
    });
    group.bench_function("pair_fresh_scratch_per_call", |b| {
        b.iter(|| {
            let mut scratch = Scratch::new();
            let (va, vx) = (scorer.view(a), scorer.view(x));
            black_box(scorer.pair_with(&mut scratch, black_box(&va), black_box(&vx)))
        })
    });
    group.finish();
}

/// Sequential vs parallel cluster scoring over the full sample.
fn bench_sequential_vs_parallel(c: &mut Criterion) {
    let clusters = sample_clusters();
    let firsts: Vec<Row> = clusters.iter().map(|rows| rows[0].clone()).collect();
    let plaus = PlausibilityScorer::new();
    let het = HeterogeneityScorer::new(AttributeWeights::from_rows(Scope::Person, firsts.iter()));
    let score = |scratch: &mut Scratch, rows: &Vec<Row>| {
        (het.cluster_with(scratch, rows), plaus.cluster_with(scratch, rows))
    };
    let mut group = c.benchmark_group("sequential_vs_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 0] {
        let label = if threads == 0 {
            "all_hardware_threads".to_owned()
        } else {
            format!("{threads}_threads")
        };
        let cfg = ScoringConfig::with_threads(threads);
        group.bench_function(label, |b| {
            b.iter(|| black_box(map_clusters(&cfg, black_box(&clusters), score)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_plausibility,
    bench_heterogeneity,
    bench_scratch_vs_alloc,
    bench_sequential_vs_parallel
);
criterion_main!(benches);
