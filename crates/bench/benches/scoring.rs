//! Benchmarks of the plausibility and heterogeneity scorers (Figures
//! 4a/4b): per-pair and per-cluster cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nc_core::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use nc_core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_core::plausibility::PlausibilityScorer;
use nc_core::record::DedupPolicy;
use nc_votergen::config::GeneratorConfig;
use nc_votergen::schema::Row;

fn sample_clusters() -> Vec<Vec<Row>> {
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed: 4,
            initial_population: 300,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots: 10,
    });
    outcome
        .store
        .cluster_ids()
        .into_iter()
        .map(|(ncid, _)| outcome.store.cluster_rows(&ncid))
        .filter(|rows| rows.len() >= 2)
        .take(100)
        .collect()
}

fn bench_plausibility(c: &mut Criterion) {
    let clusters = sample_clusters();
    let scorer = PlausibilityScorer::new();
    let mut group = c.benchmark_group("plausibility");
    group.sample_size(20);
    group.bench_function("pair", |b| {
        let (a, x) = (&clusters[0][0], &clusters[0][1]);
        b.iter(|| black_box(scorer.pair(black_box(a), black_box(x))))
    });
    group.bench_function("100_clusters", |b| {
        b.iter(|| {
            let total: f64 = clusters.iter().map(|rows| scorer.cluster(rows)).sum();
            black_box(total)
        })
    });
    group.finish();
}

fn bench_heterogeneity(c: &mut Criterion) {
    let clusters = sample_clusters();
    let firsts: Vec<Row> = clusters.iter().map(|rows| rows[0].clone()).collect();
    let mut group = c.benchmark_group("heterogeneity");
    group.sample_size(10);

    group.bench_function("entropy_weights", |b| {
        b.iter(|| black_box(AttributeWeights::from_rows(Scope::Person, black_box(&firsts))))
    });

    let scorer =
        HeterogeneityScorer::new(AttributeWeights::from_rows(Scope::Person, firsts.iter()));
    group.bench_function("pair_person_scope", |b| {
        let (a, x) = (&clusters[0][0], &clusters[0][1]);
        b.iter(|| black_box(scorer.pair(black_box(a), black_box(x))))
    });

    let scorer_all =
        HeterogeneityScorer::new(AttributeWeights::from_rows(Scope::All, firsts.iter()));
    group.bench_function("pair_all_scope", |b| {
        let (a, x) = (&clusters[0][0], &clusters[0][1]);
        b.iter(|| black_box(scorer_all.pair(black_box(a), black_box(x))))
    });

    group.bench_function("100_clusters_person_scope", |b| {
        b.iter(|| {
            let total: f64 = clusters.iter().map(|rows| scorer.cluster(rows)).sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_plausibility, bench_heterogeneity);
criterion_main!(benches);
