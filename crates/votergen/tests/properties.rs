//! Property-based tests on the registry simulator's invariants.

use std::collections::HashSet;

use nc_votergen::config::{ErrorRates, GeneratorConfig};
use nc_votergen::registry::Registry;
use nc_votergen::schema::{self, Row};
use nc_votergen::snapshot::standard_calendar;
use proptest::prelude::*;

fn registry_config(seed: u64, pop: usize) -> GeneratorConfig {
    GeneratorConfig {
        seed,
        initial_population: pop,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every emitted row is structurally valid: full arity, an NCID,
    /// names present (modulo injected missing values), a parsable
    /// snapshot date matching the snapshot, status from the code book.
    #[test]
    fn emitted_rows_are_structurally_valid(seed in 0u64..1000, pop in 20usize..80) {
        let mut reg = Registry::new(registry_config(seed, pop));
        let cal = standard_calendar();
        for info in cal.iter().take(3) {
            let snap = reg.generate_snapshot(info);
            prop_assert!(!snap.rows.is_empty());
            for row in &snap.rows {
                prop_assert_eq!(row.values.len(), schema::NUM_ATTRS);
                prop_assert!(!row.ncid().trim().is_empty());
                prop_assert_eq!(row.get(schema::SNAPSHOT_DT).trim(), snap.date.as_str());
                let status = row.get(schema::STATUS).trim();
                prop_assert!(
                    ["ACTIVE", "INACTIVE", "REMOVED"].contains(&status),
                    "unexpected status {status}"
                );
                // County id is numeric when present.
                let county = row.get(schema::COUNTY_ID).trim();
                prop_assert!(county.parse::<u32>().is_ok(), "county {county}");
            }
        }
    }

    /// NCIDs within one snapshot are unique (each voter appears once).
    #[test]
    fn ncids_unique_within_snapshot(seed in 0u64..1000) {
        let mut reg = Registry::new(registry_config(seed, 50));
        let cal = standard_calendar();
        for info in cal.iter().take(2) {
            let snap = reg.generate_snapshot(info);
            let ncids: HashSet<&str> = snap.rows.iter().map(Row::ncid).collect();
            prop_assert_eq!(ncids.len(), snap.rows.len());
        }
    }

    /// With error injection disabled, re-registration is lossless: the
    /// same voter emits identical hash-relevant person values across
    /// consecutive snapshots unless a life event occurred — so the
    /// duplicate rate over hash attributes is exactly the fraction of
    /// unchanged voters (no noise).
    #[test]
    fn clean_config_produces_pure_exact_duplicates(seed in 0u64..500) {
        let cfg = GeneratorConfig {
            seed,
            initial_population: 40,
            error_rates: ErrorRates::none(),
            whitespace_rate: 0.0,
            confusion_rate: 0.0,
            integration_rate: 0.0,
            scatter_rate: 0.0,
            age_outlier_rate: 0.0,
            move_rate: 0.0,
            name_change_rate: 0.0,
            party_switch_rate: 0.0,
            removal_rate: 0.0,
            reregistration_rate: 1.0, // re-register constantly…
            annual_growth: 0.0,
            ..Default::default()
        };
        let mut reg = Registry::new(cfg);
        let cal = standard_calendar();
        let s0 = reg.generate_snapshot(&cal[0]);
        let s1 = reg.generate_snapshot(&cal[1]);
        let attrs = schema::hash_attrs_person();
        let key = |r: &Row| {
            attrs
                .iter()
                .map(|&a| r.get(a).trim().to_owned())
                .collect::<Vec<_>>()
                .join("\u{1f}")
        };
        let set0: HashSet<String> = s0.rows.iter().map(&key).collect();
        // …but with all noise disabled, every re-registered record equals
        // its predecessor on the person attributes.
        for row in &s1.rows {
            prop_assert!(set0.contains(&key(row)), "unexpected change for {}", row.ncid());
        }
    }

    /// Rows per snapshot never exceed the total population ever created
    /// and never fall below the surviving voters.
    #[test]
    fn roll_size_is_bounded(seed in 0u64..500) {
        let mut reg = Registry::new(registry_config(seed, 30));
        let cal = standard_calendar();
        for info in cal.iter().take(4) {
            let snap = reg.generate_snapshot(info);
            prop_assert!(snap.rows.len() <= reg.population());
        }
    }
}
