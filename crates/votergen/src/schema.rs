//! The voter-record schema.
//!
//! The real NC register has 90 attributes split (by the paper) into four
//! parts: *person*, *district*, *election* and *meta*. This module
//! defines a representative 44-attribute schema with the same structure.
//! Rows are stored as dense `Vec<String>`s indexed by [`AttrId`]; a
//! missing value is the empty string (the register itself uses empty TSV
//! fields).

/// Index of an attribute within [`SCHEMA`] (and within every row).
pub type AttrId = usize;

/// The part of the record an attribute belongs to (the paper's four
/// sub-documents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrGroup {
    /// Personal data (names, demographics, addresses, phone).
    Person,
    /// Electoral districts (county, precinct, house/senate/congress, …).
    District,
    /// Election-related data (party, status, registration date, …).
    Election,
    /// Provenance metadata (snapshot/load/cancellation dates).
    Meta,
}

/// Static description of one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attribute {
    /// Canonical lower_snake_case name, as in the NC TSV header.
    pub name: &'static str,
    /// Which record part the attribute belongs to.
    pub group: AttrGroup,
    /// Whether the attribute is excluded from dedup hashing because it is
    /// meta data or time-related (Section 4: dates and age).
    pub hash_excluded: bool,
}

macro_rules! schema {
    ( $( ($const:ident, $name:literal, $group:ident, $excl:literal) ),+ $(,)? ) => {
        /// The full attribute list, in row order.
        pub const SCHEMA: &[Attribute] = &[
            $( Attribute { name: $name, group: AttrGroup::$group, hash_excluded: $excl } ),+
        ];
        schema!(@consts 0; $( ($const, $name, $group, $excl) ),+);
    };
    (@consts $idx:expr; ($const:ident, $name:literal, $group:ident, $excl:literal) $(, $rest:tt)*) => {
        #[doc = concat!("Attribute id of `", $name, "`.")]
        pub const $const: AttrId = $idx;
        schema!(@consts $idx + 1; $( $rest ),*);
    };
    (@consts $idx:expr;) => {};
}

schema! {
    (NCID, "ncid", Person, false),
    (LAST_NAME, "last_name", Person, false),
    (FIRST_NAME, "first_name", Person, false),
    (MIDL_NAME, "midl_name", Person, false),
    (NAME_SUFX, "name_sufx", Person, false),
    (AGE, "age", Person, true),
    (SEX_CODE, "sex_code", Person, false),
    (SEX, "sex", Person, false),
    (RACE_CODE, "race_code", Person, false),
    (RACE_DESC, "race_desc", Person, false),
    (ETHNIC_CODE, "ethnic_code", Person, false),
    (ETHNIC_DESC, "ethnic_desc", Person, false),
    (BIRTH_PLACE, "birth_place", Person, false),
    (FULL_PHONE, "full_phone_number", Person, false),
    (RES_STREET, "res_street_address", Person, false),
    (RES_CITY, "res_city_desc", Person, false),
    (RES_STATE, "state_cd", Person, false),
    (ZIP_CODE, "zip_code", Person, false),
    (MAIL_ADDR1, "mail_addr1", Person, false),
    (MAIL_CITY, "mail_city", Person, false),
    (MAIL_STATE, "mail_state", Person, false),
    (MAIL_ZIP, "mail_zipcode", Person, false),
    (AGE_GROUP, "age_group", Person, true),
    (COUNTY_ID, "county_id", District, false),
    (COUNTY_DESC, "county_desc", District, false),
    (PRECINCT_ABBRV, "precinct_abbrv", District, false),
    (PRECINCT_DESC, "precinct_desc", District, false),
    (CONGR_DIST, "cong_dist_abbrv", District, false),
    (NC_SENATE, "nc_senate_abbrv", District, false),
    (NC_HOUSE, "nc_house_abbrv", District, false),
    (JUDIC_DIST, "judic_dist_abbrv", District, false),
    (SCHOOL_DIST, "school_dist_abbrv", District, false),
    (MUNIC_ABBRV, "munic_abbrv", District, false),
    (MUNIC_DESC, "munic_desc", District, false),
    (WARD_ABBRV, "ward_abbrv", District, false),
    (PARTY_CD, "party_cd", Election, false),
    (PARTY_DESC, "party_desc", Election, false),
    (STATUS, "voter_status_desc", Election, false),
    (STATUS_REASON, "voter_status_reason_desc", Election, false),
    (REGISTR_DT, "registr_dt", Election, true),
    (DRIVERS_LIC, "drivers_lic", Election, false),
    (SNAPSHOT_DT, "snapshot_dt", Meta, true),
    (LOAD_DT, "load_dt", Meta, true),
    (CANCELLATION_DT, "cancellation_dt", Meta, true),
}

/// Number of attributes in the schema.
pub const NUM_ATTRS: usize = SCHEMA.len();

/// Look up an attribute id by name.
pub fn attr_id(name: &str) -> Option<AttrId> {
    SCHEMA.iter().position(|a| a.name == name)
}

/// Ids of all attributes in a group.
pub fn group_attrs(group: AttrGroup) -> Vec<AttrId> {
    SCHEMA
        .iter()
        .enumerate()
        .filter(|(_, a)| a.group == group)
        .map(|(i, _)| i)
        .collect()
}

/// Ids of the attributes included in the *all attributes* hash input
/// (everything except meta/time-related attributes; Section 4).
pub fn hash_attrs_all() -> Vec<AttrId> {
    SCHEMA
        .iter()
        .enumerate()
        .filter(|(_, a)| !a.hash_excluded)
        .map(|(i, _)| i)
        .collect()
}

/// Ids of the attributes included in the *person data* hash input.
pub fn hash_attrs_person() -> Vec<AttrId> {
    SCHEMA
        .iter()
        .enumerate()
        .filter(|(_, a)| a.group == AttrGroup::Person && !a.hash_excluded)
        .map(|(i, _)| i)
        .collect()
}

/// One voter-roll row: dense values, one per schema attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Values indexed by [`AttrId`]; empty string means missing.
    pub values: Vec<String>,
}

impl Row {
    /// Create an all-missing row.
    pub fn empty() -> Self {
        Row {
            values: vec![String::new(); NUM_ATTRS],
        }
    }

    /// Value of an attribute (empty string = missing).
    pub fn get(&self, id: AttrId) -> &str {
        &self.values[id]
    }

    /// Set an attribute value.
    pub fn set(&mut self, id: AttrId, value: impl Into<String>) {
        self.values[id] = value.into();
    }

    /// The row's NCID.
    pub fn ncid(&self) -> &str {
        self.get(NCID)
    }

    /// Render as a TSV line in schema order.
    pub fn to_tsv(&self) -> String {
        self.values.join("\t")
    }

    /// Parse from a TSV line in schema order.
    pub fn from_tsv(line: &str) -> Option<Self> {
        let values: Vec<String> = line.split('\t').map(str::to_owned).collect();
        if values.len() != NUM_ATTRS {
            return None;
        }
        Some(Row { values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_consistent() {
        assert_eq!(NUM_ATTRS, 44);
        assert_eq!(SCHEMA[NCID].name, "ncid");
        assert_eq!(SCHEMA[CANCELLATION_DT].name, "cancellation_dt");
        // Names are unique.
        let mut names: Vec<&str> = SCHEMA.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_ATTRS);
    }

    #[test]
    fn attr_id_round_trips() {
        for (i, a) in SCHEMA.iter().enumerate() {
            assert_eq!(attr_id(a.name), Some(i));
        }
        assert_eq!(attr_id("no_such_attr"), None);
    }

    #[test]
    fn hash_attr_sets_exclude_dates_and_age() {
        let all = hash_attrs_all();
        assert!(!all.contains(&AGE));
        assert!(!all.contains(&SNAPSHOT_DT));
        assert!(!all.contains(&REGISTR_DT));
        assert!(all.contains(&LAST_NAME));
        assert!(all.contains(&NC_HOUSE));

        let person = hash_attrs_person();
        assert!(person.contains(&LAST_NAME));
        assert!(!person.contains(&NC_HOUSE));
        assert!(person.len() < all.len());
    }

    #[test]
    fn group_partition_covers_schema() {
        let total: usize = [
            AttrGroup::Person,
            AttrGroup::District,
            AttrGroup::Election,
            AttrGroup::Meta,
        ]
        .iter()
        .map(|&g| group_attrs(g).len())
        .sum();
        assert_eq!(total, NUM_ATTRS);
    }

    #[test]
    fn row_accessors() {
        let mut r = Row::empty();
        r.set(LAST_NAME, "SMITH");
        r.set(NCID, "AA1");
        assert_eq!(r.get(LAST_NAME), "SMITH");
        assert_eq!(r.ncid(), "AA1");
        assert_eq!(r.get(FIRST_NAME), "");
    }

    #[test]
    fn tsv_round_trip() {
        let mut r = Row::empty();
        r.set(LAST_NAME, "SMITH");
        r.set(AGE, "44");
        let line = r.to_tsv();
        let back = Row::from_tsv(&line).unwrap();
        assert_eq!(r, back);
        assert!(Row::from_tsv("too\tfew").is_none());
    }
}
