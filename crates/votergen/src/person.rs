//! The simulated voter: true state, recorded state and life events.
//!
//! A voter has a *true* state (who they really are, where they really
//! live) and a *recorded* state (what the register says). The recorded
//! state is re-captured from a hand-filled form at every
//! (re-)registration — that is where errors enter — and goes stale in
//! between, which is exactly how the real register accumulates outdated
//! values.

use rand::Rng;

use crate::config::GeneratorConfig;
use crate::date::Date;
use crate::errors;
use crate::names;
use crate::schema::{self, Row};

/// Voter registration status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// On the rolls and verified.
    Active,
    /// On the rolls but unconfirmed.
    Inactive,
    /// Removed from the rolls in the given year, with a reason index
    /// into the `REMOVED` entries of [`names::STATUS_REASONS`].
    Removed {
        /// Year of removal.
        year: i32,
        /// Index of the removal reason.
        reason: usize,
    },
}

/// The recorded (as-entered) register entry of a voter.
#[derive(Debug, Clone)]
pub struct Recorded {
    /// Person + election attribute values as captured from the form,
    /// errors included. District *labels* and time-dependent values are
    /// filled at emission time.
    pub row: Row,
    /// Numeric district assignments captured at registration.
    pub house_dist: u32,
    /// Congressional district.
    pub congr_dist: u32,
    /// NC senate district.
    pub senate_dist: u32,
    /// Judicial district.
    pub judic_dist: u32,
    /// Precinct number.
    pub precinct: u32,
    /// Municipal ward.
    pub ward: u32,
    /// Year of birth as recorded (may be wrong).
    pub yob_recorded: i32,
    /// Whether the recorded age is an outlier value (overrides the
    /// computed age at emission).
    pub age_outlier: Option<String>,
}

/// One simulated voter.
#[derive(Debug, Clone)]
pub struct Person {
    /// Stable simulation id.
    pub id: u64,
    /// The register identifier shared by all of this voter's records.
    pub ncid: String,
    /// True sex: `false` = male, `true` = female.
    pub female: bool,
    /// Sex recorded as undesignated (`U`).
    pub sex_undesignated: bool,
    /// True year of birth.
    pub yob: i32,
    /// Index into [`names::STATES`].
    pub birth_state: usize,
    /// Index into [`names::RACES`].
    pub race: usize,
    /// Index into [`names::ETHNICITIES`].
    pub ethnic: usize,
    /// True first name.
    pub first: String,
    /// True middle name (may be empty).
    pub midl: String,
    /// True last name.
    pub last: String,
    /// Name suffix (usually empty).
    pub suffix: String,
    /// Index into [`names::COUNTIES`].
    pub county: usize,
    /// House number of the residential address.
    pub house_no: u32,
    /// Index into [`names::STREETS`].
    pub street: usize,
    /// Index into [`names::STREET_TYPES`].
    pub street_type: usize,
    /// Index into [`names::CITIES`].
    pub city: usize,
    /// ZIP code.
    pub zip: String,
    /// Phone number (may be empty).
    pub phone: String,
    /// Whether a separate mailing address is on file.
    pub has_mail_addr: bool,
    /// PO box number of the mailing address (stable per voter).
    pub po_box: u32,
    /// Index into [`names::PARTIES`].
    pub party: usize,
    /// Driver's license on file.
    pub drivers_lic: bool,
    /// Registration date of the current registration.
    pub registr_dt: Date,
    /// Cancellation date (set when removed).
    pub cancellation_dt: Option<Date>,
    /// Current status.
    pub status: Status,
    /// The recorded register entry (None until first registration).
    pub recorded: Option<Recorded>,
}

impl Person {
    /// Create a random voter (true state only; call
    /// [`Person::register`] to capture the recorded entry).
    pub fn random<R: Rng>(rng: &mut R, id: u64, ncid: String, current_year: i32) -> Self {
        let female = rng.gen_bool(0.52);
        let sex_undesignated = rng.gen_bool(0.02);
        let first_pool = if female {
            names::FEMALE_FIRST
        } else {
            names::MALE_FIRST
        };
        let midl = if rng.gen_bool(0.85) {
            names::MIDDLE[rng.gen_range(0..names::MIDDLE.len())].to_owned()
        } else {
            String::new()
        };
        let suffix = if !female && rng.gen_bool(0.06) {
            names::SUFFIXES[rng.gen_range(0..names::SUFFIXES.len())].to_owned()
        } else {
            String::new()
        };
        let county = rng.gen_range(0..names::COUNTIES.len());
        let age = 18 + (rng.gen_range(0f64..1.0).powf(1.4) * 70.0) as i32;
        let county_id = names::COUNTIES[county].0;
        Person {
            id,
            ncid,
            female,
            sex_undesignated,
            yob: current_year - age,
            birth_state: if rng.gen_bool(0.6) {
                0 // NC
            } else {
                rng.gen_range(0..names::STATES.len())
            },
            race: rng.gen_range(0..names::RACES.len()),
            ethnic: rng.gen_range(0..names::ETHNICITIES.len()),
            first: first_pool[rng.gen_range(0..first_pool.len())].to_owned(),
            midl,
            last: names::LAST[rng.gen_range(0..names::LAST.len())].to_owned(),
            suffix,
            county,
            house_no: rng.gen_range(1..9999),
            street: rng.gen_range(0..names::STREETS.len()),
            street_type: rng.gen_range(0..names::STREET_TYPES.len()),
            city: rng.gen_range(0..names::CITIES.len()),
            zip: format!("27{:03}", (county_id * 7 + rng.gen_range(0..100)) % 1000),
            phone: if rng.gen_bool(0.4) {
                let area = ["919", "704", "336", "910", "828", "252"][rng.gen_range(0..6)];
                format!("{area}{:07}", rng.gen_range(0..10_000_000u32))
            } else {
                String::new()
            },
            has_mail_addr: rng.gen_bool(0.02),
            po_box: rng.gen_range(1..9000),
            party: weighted_party(rng),
            drivers_lic: rng.gen_bool(0.9),
            registr_dt: Date::new(current_year.max(1900), 1, 1),
            cancellation_dt: None,
            status: Status::Active,
            recorded: None,
        }
    }

    /// True residential street address string.
    pub fn true_street_address(&self) -> String {
        format!(
            "{} {} {}",
            self.house_no,
            names::STREETS[self.street],
            names::STREET_TYPES[self.street_type]
        )
    }

    /// Capture the recorded register entry from a hand-filled form,
    /// injecting errors per the configured rates.
    pub fn register<R: Rng>(&mut self, rng: &mut R, cfg: &GeneratorConfig, date: Date) {
        self.registr_dt = date;
        let rates = &cfg.error_rates;
        let mut row = Row::empty();
        row.set(schema::NCID, self.ncid.clone());
        row.set(schema::FIRST_NAME, errors::corrupt_value(rng, rates, &self.first));
        row.set(schema::MIDL_NAME, errors::corrupt_value(rng, rates, &self.midl));
        row.set(schema::LAST_NAME, errors::corrupt_value(rng, rates, &self.last));
        row.set(schema::NAME_SUFX, self.suffix.clone());

        // Multi-attribute name irregularities.
        if rng.gen_bool(cfg.confusion_rate) {
            errors::confuse_values(rng, &mut row);
        } else if rng.gen_bool(cfg.integration_rate) {
            errors::integrate_value(&mut row);
        } else if rng.gen_bool(cfg.scatter_rate) {
            errors::scatter_values(rng, &mut row);
        }

        let (sex_code, sex_desc) = if self.sex_undesignated {
            ("U", "UNDESIGNATED")
        } else if self.female {
            ("F", "FEMALE")
        } else {
            ("M", "MALE")
        };
        row.set(schema::SEX_CODE, sex_code);
        row.set(schema::SEX, sex_desc);
        let (race_code, race_desc) = names::RACES[self.race];
        row.set(schema::RACE_CODE, race_code);
        row.set(schema::RACE_DESC, errors::corrupt_value(rng, rates, race_desc));
        let (eth_code, eth_desc) = names::ETHNICITIES[self.ethnic];
        row.set(schema::ETHNIC_CODE, eth_code);
        row.set(schema::ETHNIC_DESC, eth_desc);
        let (_, birth_state_name) = names::STATES[self.birth_state];
        row.set(
            schema::BIRTH_PLACE,
            errors::corrupt_value(rng, rates, birth_state_name),
        );
        row.set(schema::FULL_PHONE, self.phone.clone());
        row.set(
            schema::RES_STREET,
            errors::corrupt_value(rng, rates, &self.true_street_address()),
        );
        row.set(
            schema::RES_CITY,
            errors::corrupt_value(rng, rates, names::CITIES[self.city]),
        );
        row.set(schema::RES_STATE, "NC");
        row.set(schema::ZIP_CODE, self.zip.clone());
        if self.has_mail_addr {
            row.set(schema::MAIL_ADDR1, format!("PO BOX {}", self.po_box));
            row.set(schema::MAIL_CITY, names::CITIES[self.city]);
            row.set(schema::MAIL_STATE, "NC");
            row.set(schema::MAIL_ZIP, self.zip.clone());
        }

        let (county_id, county_name) = names::COUNTIES[self.county];
        row.set(schema::COUNTY_ID, county_id.to_string());
        row.set(schema::COUNTY_DESC, county_name);
        let precinct = (county_id * 7 + self.house_no) % 30 + 1;
        row.set(schema::PRECINCT_ABBRV, format!("{precinct:02}"));
        row.set(schema::PRECINCT_DESC, format!("PRECINCT {precinct:02}"));
        row.set(schema::SCHOOL_DIST, format!("SCH {}", county_id % 12 + 1));
        row.set(schema::MUNIC_ABBRV, &names::CITIES[self.city][..3.min(names::CITIES[self.city].len())]);
        row.set(schema::MUNIC_DESC, names::CITIES[self.city]);

        let (party_cd, party_desc) = names::PARTIES[self.party];
        row.set(schema::PARTY_CD, party_cd);
        row.set(schema::PARTY_DESC, party_desc);
        row.set(schema::REGISTR_DT, date.to_string());
        row.set(schema::DRIVERS_LIC, if self.drivers_lic { "Y" } else { "N" });

        let yob_recorded = if rng.gen_bool(0.01) {
            // Mis-entered year of birth.
            self.yob + rng.gen_range(-9i32..=9)
        } else {
            self.yob
        };
        let age_outlier = if rng.gen_bool(cfg.age_outlier_rate) {
            Some(errors::make_outlier_age(rng))
        } else {
            None
        };

        self.recorded = Some(Recorded {
            row,
            house_dist: (county_id * 3 + self.house_no % 7) % 120 + 1,
            congr_dist: county_id % 13 + 1,
            senate_dist: county_id % 50 + 1,
            judic_dist: county_id % 30 + 1,
            precinct,
            ward: self.house_no % 8 + 1,
            yob_recorded,
            age_outlier,
        });
    }

    /// Whether the voter currently appears in published snapshots.
    pub fn appears_in_snapshot(&self, year: i32, retention_years: i32) -> bool {
        match self.status {
            Status::Active | Status::Inactive => true,
            Status::Removed { year: removed, .. } => year - removed <= retention_years,
        }
    }

    /// Emit the voter's row for a snapshot. `recorded` must be present
    /// (the voter must have registered at least once).
    ///
    /// Per-emission effects (stray whitespace, age jitter) are re-rolled
    /// here; everything else comes from the recorded entry.
    pub fn emit_row<R: Rng>(
        &self,
        rng: &mut R,
        cfg: &GeneratorConfig,
        snapshot_date: Date,
    ) -> Row {
        let rec = self.recorded.as_ref().expect("voter has registered");
        let mut row = rec.row.clone();
        let year = snapshot_date.year;

        // Time-dependent values.
        let age_exact = year - rec.yob_recorded;
        let age = if let Some(outlier) = &rec.age_outlier {
            outlier.clone()
        } else if rng.gen_bool(cfg.age_jitter_rate) {
            (age_exact - 1).to_string()
        } else {
            age_exact.to_string()
        };
        row.set(schema::AGE, age);
        row.set(schema::AGE_GROUP, crate::snapshot::format_age_group(age_exact, year));

        // Era-dependent district labels.
        row.set(schema::NC_HOUSE, crate::snapshot::format_house_district(rec.house_dist, year));
        row.set(schema::CONGR_DIST, crate::snapshot::format_congressional(rec.congr_dist, year));
        row.set(schema::NC_SENATE, crate::snapshot::format_senate(rec.senate_dist));
        row.set(schema::JUDIC_DIST, format!("{:02}", rec.judic_dist));
        row.set(schema::WARD_ABBRV, format!("W{}", rec.ward));

        // Live status.
        let (status, reason) = match self.status {
            Status::Active => ("ACTIVE", "VERIFIED"),
            Status::Inactive => ("INACTIVE", "CONFIRMATION NOT RETURNED"),
            Status::Removed { reason, .. } => {
                let removed: Vec<&(&str, &str)> = names::STATUS_REASONS
                    .iter()
                    .filter(|(s, _)| *s == "REMOVED")
                    .collect();
                ("REMOVED", removed[reason % removed.len()].1)
            }
        };
        row.set(schema::STATUS, status);
        row.set(schema::STATUS_REASON, reason);
        if let Some(c) = self.cancellation_dt {
            row.set(schema::CANCELLATION_DT, c.to_string());
        }

        // Meta.
        row.set(schema::SNAPSHOT_DT, snapshot_date.to_string());
        let load_day = (u32::from(snapshot_date.day) % 20 + 1) as u8;
        row.set(
            schema::LOAD_DT,
            Date::new(year, snapshot_date.month, load_day).to_string(),
        );

        // Stray whitespace, re-rolled per emission.
        if cfg.whitespace_rate > 0.0 {
            for v in row.values.iter_mut() {
                if !v.is_empty() && rng.gen_bool(cfg.whitespace_rate) {
                    *v = errors::pad_whitespace(rng, v);
                }
            }
        }
        row
    }
}

/// Party selection with realistic weights.
fn weighted_party<R: Rng>(rng: &mut R) -> usize {
    let roll: f64 = rng.gen();
    if roll < 0.38 {
        0 // DEM
    } else if roll < 0.68 {
        1 // REP
    } else if roll < 0.99 {
        2 // UNA
    } else {
        3 // LIB
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mk_person(seed: u64) -> (StdRng, Person, GeneratorConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GeneratorConfig::small(seed);
        let mut p = Person::random(&mut rng, 1, "AA000001".into(), 2008);
        p.register(&mut rng, &cfg, Date::new(2008, 1, 15));
        (rng, p, cfg)
    }

    #[test]
    fn random_person_is_plausible() {
        let (_, p, _) = mk_person(1);
        assert!(!p.first.is_empty());
        assert!(!p.last.is_empty());
        let age = 2008 - p.yob;
        assert!((18..=95).contains(&age), "age {age}");
        assert!(p.zip.starts_with("27"));
    }

    #[test]
    fn register_fills_recorded_row() {
        let (_, p, _) = mk_person(2);
        let rec = p.recorded.as_ref().unwrap();
        assert_eq!(rec.row.get(schema::NCID), "AA000001");
        assert!(!rec.row.get(schema::LAST_NAME).is_empty());
        assert!(!rec.row.get(schema::COUNTY_DESC).is_empty());
        assert!(rec.house_dist >= 1 && rec.house_dist <= 120);
        assert!(rec.congr_dist >= 1 && rec.congr_dist <= 13);
    }

    #[test]
    fn emit_row_sets_snapshot_fields() {
        let (mut rng, p, cfg) = mk_person(3);
        let row = p.emit_row(&mut rng, &cfg, Date::new(2010, 11, 2));
        assert_eq!(row.get(schema::SNAPSHOT_DT), "2010-11-02");
        assert!(!row.get(schema::AGE).is_empty());
        assert!(!row.get(schema::NC_HOUSE).is_empty());
        assert_eq!(row.get(schema::STATUS), "ACTIVE");
    }

    #[test]
    fn emitted_age_tracks_snapshot_year() {
        let (mut rng, p, mut cfg) = mk_person(4);
        cfg.age_jitter_rate = 0.0;
        let rec_yob = p.recorded.as_ref().unwrap().yob_recorded;
        if p.recorded.as_ref().unwrap().age_outlier.is_none() {
            let r1 = p.emit_row(&mut rng, &cfg, Date::new(2010, 1, 1));
            let r2 = p.emit_row(&mut rng, &cfg, Date::new(2015, 1, 1));
            let a1: i32 = r1.get(schema::AGE).trim().parse().unwrap();
            let a2: i32 = r2.get(schema::AGE).trim().parse().unwrap();
            assert_eq!(a1, 2010 - rec_yob);
            assert_eq!(a2 - a1, 5);
        }
    }

    #[test]
    fn district_labels_follow_era() {
        let (mut rng, p, mut cfg) = mk_person(5);
        cfg.whitespace_rate = 0.0;
        let rec = p.recorded.clone().unwrap();
        let r_old = p.emit_row(&mut rng, &cfg, Date::new(2013, 1, 1));
        let r_new = p.emit_row(&mut rng, &cfg, Date::new(2014, 1, 1));
        assert!(r_old.get(schema::NC_HOUSE).ends_with("HOUSE"));
        assert_eq!(
            r_new.get(schema::NC_HOUSE),
            format!("NC HOUSE DISTRICT {}", rec.house_dist)
        );
    }

    #[test]
    fn removed_voters_keep_appearing_then_purge() {
        let (_, mut p, _) = mk_person(6);
        p.status = Status::Removed { year: 2012, reason: 0 };
        assert!(p.appears_in_snapshot(2014, 3));
        assert!(!p.appears_in_snapshot(2016, 3));
    }

    #[test]
    fn emission_is_stable_without_per_emission_noise() {
        let (_, p, mut cfg) = mk_person(7);
        cfg.whitespace_rate = 0.0;
        cfg.age_jitter_rate = 0.0;
        let mut rng1 = StdRng::seed_from_u64(100);
        let mut rng2 = StdRng::seed_from_u64(200);
        let r1 = p.emit_row(&mut rng1, &cfg, Date::new(2016, 3, 15));
        let r2 = p.emit_row(&mut rng2, &cfg, Date::new(2016, 3, 15));
        assert_eq!(r1, r2, "emission must be deterministic modulo noise");
    }
}
