//! Synthetic historical voter-register simulator.
//!
//! The paper builds its test dataset from the North Carolina voter
//! registration archive — 40 snapshots (2008–2020) of the full voter
//! roll, collected through manually filled registration forms. That
//! archive is hundreds of gigabytes and access-restricted, so this crate
//! provides a faithful *simulation* of it: a seeded population of voters
//! whose lives (moves, marriages, party switches, removals) unfold over
//! the real snapshot calendar, and whose records are re-entered "by hand"
//! at re-registration events, picking up exactly the error classes the
//! paper observes in the real data (Section 6.4):
//!
//! * typos, OCR confusions and phonetic misspellings,
//! * abbreviations, missing values and stray whitespace,
//! * values confused between, integrated into or scattered across the
//!   name attributes,
//! * outdated values (old addresses, maiden names, previous parties),
//! * per-era *format drift* of district labels (`64TH HOUSE` →
//!   `NC HOUSE DISTRICT 64`), which the paper identifies as the cause of
//!   surprising new-record spikes in Table 1, and
//! * a small rate of *NCID reuse*, producing the unsound clusters the
//!   plausibility check exists to catch (Figure 3).
//!
//! Records carry the voter's stable `NCID`, so the gold standard comes
//! for free — exactly the property the paper exploits.
//!
//! Generation is deterministic given a [`config::GeneratorConfig`] seed,
//! and streaming: snapshots are produced one at a time so that archives
//! far larger than memory can be fed into the `nc-core` import pipeline.
//!
//! # Example
//!
//! ```
//! use nc_votergen::config::GeneratorConfig;
//! use nc_votergen::registry::Registry;
//!
//! let cfg = GeneratorConfig { initial_population: 200, seed: 7, ..Default::default() };
//! let mut registry = Registry::new(cfg);
//! let calendar = nc_votergen::snapshot::standard_calendar();
//! let snap = registry.generate_snapshot(&calendar[0]);
//! assert_eq!(snap.date, "2008-11-04");
//! assert!(snap.rows.len() >= 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod date;
pub mod errors;
pub mod names;
pub mod person;
pub mod registry;
pub mod schema;
pub mod snapshot;
