//! A minimal calendar date type (`YYYY-MM-DD`).
//!
//! The generator and the core pipeline only need day-resolution dates
//! with ordering, formatting and year arithmetic, so a full chrono
//! dependency is unnecessary.

use std::fmt;

/// A calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Four-digit year.
    pub year: i32,
    /// Month `1..=12`.
    pub month: u8,
    /// Day `1..=31`.
    pub day: u8,
}

impl Date {
    /// Construct a date; panics on out-of-range month/day.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day out of range: {year}-{month}-{day}"
        );
        Date { year, month, day }
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('-');
        let year: i32 = parts.next()?.parse().ok()?;
        let month: u8 = parts.next()?.parse().ok()?;
        let day: u8 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }
}

/// Number of days in a month, honoring leap years.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("validated month"),
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_pads() {
        assert_eq!(Date::new(2008, 1, 5).to_string(), "2008-01-05");
    }

    #[test]
    fn parse_round_trip() {
        for s in ["2008-11-04", "2020-02-29", "1999-12-31"] {
            assert_eq!(Date::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_invalid() {
        assert!(Date::parse("2019-02-29").is_none()); // not a leap year
        assert!(Date::parse("2019-13-01").is_none());
        assert!(Date::parse("2019-00-01").is_none());
        assert!(Date::parse("2019-01-32").is_none());
        assert!(Date::parse("garbage").is_none());
        assert!(Date::parse("2019-01-01-01").is_none());
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Date::new(2008, 11, 4);
        let b = Date::new(2009, 1, 1);
        let c = Date::new(2009, 1, 2);
        assert!(a < b && b < c);
    }

    #[test]
    fn leap_years() {
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2019, 2), 28);
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn invalid_day_panics() {
        let _ = Date::new(2019, 2, 29);
    }
}
