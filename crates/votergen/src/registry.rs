//! The registry orchestrator: population evolution and snapshot emission.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::GeneratorConfig;
use crate::date::Date;
use crate::names;
use crate::person::{Person, Status};
use crate::snapshot::{Snapshot, SnapshotInfo};

/// The simulated State Board of Elections: owns the voter population and
/// publishes snapshots.
///
/// Call [`Registry::generate_snapshot`] with the entries of a calendar
/// (see [`crate::snapshot::standard_calendar`]) **in order**; the
/// population evolves between consecutive snapshots.
#[derive(Debug)]
pub struct Registry {
    cfg: GeneratorConfig,
    rng: StdRng,
    persons: Vec<Person>,
    next_person_id: u64,
    ncid_seq: u64,
    /// NCIDs of purged voters, available for (erroneous) reuse.
    retired_ncids: Vec<String>,
    /// NCIDs that were actually reused → known-unsound clusters.
    reused_ncids: HashSet<String>,
    /// Ids of persons already past retention whose NCID was retired.
    purged: HashSet<u64>,
    last_date: Option<Date>,
}

impl Registry {
    /// Create a registry. Panics when the configuration is invalid.
    pub fn new(cfg: GeneratorConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid generator config: {e}");
        }
        let rng = StdRng::seed_from_u64(cfg.seed);
        Registry {
            cfg,
            rng,
            persons: Vec::new(),
            next_person_id: 0,
            ncid_seq: 0,
            retired_ncids: Vec::new(),
            reused_ncids: HashSet::new(),
            purged: HashSet::new(),
            last_date: None,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &GeneratorConfig {
        &self.cfg
    }

    /// Number of voters ever created.
    pub fn population(&self) -> usize {
        self.persons.len()
    }

    /// NCIDs that were reused for a different person — the ground truth
    /// for evaluating the plausibility check (these clusters are
    /// unsound by construction).
    pub fn unsound_ncids(&self) -> &HashSet<String> {
        &self.reused_ncids
    }

    fn fresh_ncid(&mut self) -> String {
        let n = self.ncid_seq;
        self.ncid_seq += 1;
        let l1 = char::from(b'A' + ((n / 2_600_000) % 26) as u8);
        let l2 = char::from(b'A' + ((n / 100_000) % 26) as u8);
        format!("{l1}{l2}{:06}", n % 100_000)
    }

    fn spawn_person(&mut self, year: i32, registration: Date) -> Person {
        // Occasionally reuse a purged NCID — the data-management error
        // behind the paper's unsound clusters (Figure 3, cluster DR19657).
        let reuse = !self.retired_ncids.is_empty() && self.rng.gen_bool(self.cfg.ncid_reuse_rate);
        let ncid = if reuse {
            let i = self.rng.gen_range(0..self.retired_ncids.len());
            let id = self.retired_ncids.swap_remove(i);
            self.reused_ncids.insert(id.clone());
            id
        } else {
            self.fresh_ncid()
        };
        let id = self.next_person_id;
        self.next_person_id += 1;
        let mut p = Person::random(&mut self.rng, id, ncid, year);
        p.register(&mut self.rng, &self.cfg, registration);
        p
    }

    /// Evolve the population from the previous snapshot to `date` and
    /// emit the full voter roll.
    pub fn generate_snapshot(&mut self, info: &SnapshotInfo) -> Snapshot {
        let date = info.date;
        if let Some(last) = self.last_date {
            assert!(date > last, "snapshots must be generated in order");
        }

        if self.persons.is_empty() {
            // Initial population, registered over the preceding years.
            for _ in 0..self.cfg.initial_population {
                let years_ago = self.rng.gen_range(0..10);
                let reg = Date::new(date.year - years_ago, self.rng.gen_range(1..=12), 15);
                let p = self.spawn_person(date.year, reg);
                self.persons.push(p);
            }
        } else {
            let last = self.last_date.expect("population implies a prior snapshot");
            let elapsed = elapsed_years(last, date);
            self.evolve(last, date, elapsed);
            self.grow(date, elapsed);
        }

        // Retire NCIDs of voters that fell past retention.
        let retention = self.cfg.removed_retention_years;
        for p in &self.persons {
            if !p.appears_in_snapshot(date.year, retention) && !self.purged.contains(&p.id) {
                self.purged.insert(p.id);
                self.retired_ncids.push(p.ncid.clone());
            }
        }

        let rows = self
            .persons
            .iter()
            .filter(|p| p.appears_in_snapshot(date.year, retention))
            .map(|p| p.emit_row(&mut self.rng, &self.cfg, date))
            .collect();

        self.last_date = Some(date);
        Snapshot {
            index: info.index,
            date: date.to_string(),
            rows,
        }
    }

    /// Apply life events over `elapsed` years.
    fn evolve(&mut self, last: Date, date: Date, elapsed: f64) {
        let cfg = self.cfg.clone();
        let p_removal = (cfg.removal_rate * elapsed).min(1.0);
        let p_move = (cfg.move_rate * elapsed).min(1.0);
        let p_name = (cfg.name_change_rate * elapsed).min(1.0);
        let p_party = (cfg.party_switch_rate * elapsed).min(1.0);
        let p_flap = (0.03 * elapsed).min(1.0);

        for p in &mut self.persons {
            if matches!(p.status, Status::Removed { .. }) {
                continue;
            }
            if self.rng.gen_bool(p_removal) {
                let reason = self.rng.gen_range(0..4);
                p.status = Status::Removed {
                    year: date.year,
                    reason,
                };
                p.cancellation_dt = Some(date);
                continue;
            }
            let mut reregister = self.rng.gen_bool(cfg.reregistration_rate);
            if self.rng.gen_bool(p_move) {
                // Move: new address; sometimes a new county.
                p.house_no = self.rng.gen_range(1..9999);
                p.street = self.rng.gen_range(0..names::STREETS.len());
                p.street_type = self.rng.gen_range(0..names::STREET_TYPES.len());
                if self.rng.gen_bool(0.4) {
                    p.county = self.rng.gen_range(0..names::COUNTIES.len());
                    p.city = self.rng.gen_range(0..names::CITIES.len());
                }
                let county_id = names::COUNTIES[p.county].0;
                p.zip = format!("27{:03}", (county_id * 7 + self.rng.gen_range(0..100)) % 1000);
                reregister = true;
            }
            if self.rng.gen_bool(p_name) {
                // Name change (marriage/divorce); occasionally hyphenated.
                let new_last = names::LAST[self.rng.gen_range(0..names::LAST.len())].to_owned();
                p.last = if self.rng.gen_bool(0.2) {
                    format!("{} {new_last}", p.last)
                } else {
                    new_last
                };
                reregister = true;
            }
            if self.rng.gen_bool(p_party) {
                p.party = (p.party + self.rng.gen_range(1..names::PARTIES.len()))
                    % names::PARTIES.len();
                // A party change is a small form update: refresh the
                // recorded party fields without a full re-registration.
                if let Some(rec) = &mut p.recorded {
                    let (cd, desc) = names::PARTIES[p.party];
                    rec.row.set(crate::schema::PARTY_CD, cd);
                    rec.row.set(crate::schema::PARTY_DESC, desc);
                }
            }
            if self.rng.gen_bool(p_flap) {
                p.status = match p.status {
                    Status::Active => Status::Inactive,
                    Status::Inactive => Status::Active,
                    s => s,
                };
            }
            if reregister {
                let month_span = months_between(last, date).max(1);
                let off = self.rng.gen_range(0..month_span);
                let (ry, rm) = add_months(last, off);
                p.register(&mut self.rng, &cfg, Date::new(ry, rm, 15));
            }
        }
    }

    /// Register new voters proportional to elapsed time (boosted in
    /// presidential election years).
    fn grow(&mut self, date: Date, elapsed: f64) {
        let boost = if date.year % 4 == 0 {
            self.cfg.election_year_boost
        } else {
            1.0
        };
        let expectation =
            self.persons.len() as f64 * self.cfg.annual_growth * elapsed * boost;
        let n = expectation.floor() as usize
            + usize::from(self.rng.gen_bool(expectation.fract().clamp(0.0, 1.0)));
        for _ in 0..n {
            let reg = Date::new(date.year, date.month, 1);
            let p = self.spawn_person(date.year, reg);
            self.persons.push(p);
        }
    }
}

/// Fractional years between two dates (month resolution).
fn elapsed_years(from: Date, to: Date) -> f64 {
    f64::from(months_between(from, to)) / 12.0
}

/// Whole months between two dates.
fn months_between(from: Date, to: Date) -> i32 {
    (to.year - from.year) * 12 + i32::from(to.month) - i32::from(from.month)
}

/// Add `off` months to a date, returning (year, month).
fn add_months(d: Date, off: i32) -> (i32, u8) {
    let total = i32::from(d.month) - 1 + off;
    (d.year + total.div_euclid(12), (total.rem_euclid(12) + 1) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;
    use crate::snapshot::standard_calendar;

    fn small_registry(seed: u64, pop: usize) -> Registry {
        let cfg = GeneratorConfig {
            seed,
            initial_population: pop,
            ..Default::default()
        };
        Registry::new(cfg)
    }

    #[test]
    fn first_snapshot_contains_initial_population() {
        let mut reg = small_registry(1, 300);
        let cal = standard_calendar();
        let snap = reg.generate_snapshot(&cal[0]);
        assert_eq!(snap.rows.len(), 300);
        assert_eq!(snap.date, "2008-11-04");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cal = standard_calendar();
        let run = |seed| {
            let mut reg = small_registry(seed, 100);
            let s0 = reg.generate_snapshot(&cal[0]);
            let s1 = reg.generate_snapshot(&cal[1]);
            (s0.rows, s1.rows)
        };
        let (a0, a1) = run(7);
        let (b0, b1) = run(7);
        assert_eq!(a0, b0);
        assert_eq!(a1, b1);
        let (c0, _) = run(8);
        assert_ne!(a0, c0);
    }

    #[test]
    fn population_grows_over_time() {
        let mut reg = small_registry(2, 200);
        let cal = standard_calendar();
        let first = reg.generate_snapshot(&cal[0]).rows.len();
        let mut last = 0;
        for info in &cal[1..10] {
            last = reg.generate_snapshot(info).rows.len();
        }
        assert!(last > first, "{last} <= {first}");
    }

    #[test]
    fn ncids_are_stable_across_snapshots() {
        let mut reg = small_registry(3, 100);
        let cal = standard_calendar();
        let s0 = reg.generate_snapshot(&cal[0]);
        let ncids0: HashSet<String> = s0
            .rows
            .iter()
            .map(|r| r.ncid().to_owned())
            .collect();
        let s1 = reg.generate_snapshot(&cal[1]);
        let ncids1: HashSet<String> = s1
            .rows
            .iter()
            .map(|r| r.ncid().to_owned())
            .collect();
        // Almost all of snapshot 0's voters persist into snapshot 1.
        let survived = ncids0.intersection(&ncids1).count();
        assert!(survived as f64 >= ncids0.len() as f64 * 0.9);
    }

    #[test]
    fn most_consecutive_rows_are_unchanged() {
        // The paper's key observation: unioning snapshots yields mostly
        // exact duplicates (after excluding dates/age from comparison).
        let mut reg = small_registry(4, 300);
        let cal = standard_calendar();
        let s0 = reg.generate_snapshot(&cal[0]);
        let s1 = reg.generate_snapshot(&cal[1]);
        let key = |r: &schema::Row| {
            let attrs = schema::hash_attrs_all();
            attrs
                .iter()
                .map(|&a| r.get(a).trim().to_owned())
                .collect::<Vec<_>>()
                .join("|")
        };
        let set0: HashSet<String> = s0.rows.iter().map(key).collect();
        let dup = s1.rows.iter().filter(|r| set0.contains(&key(r))).count();
        let rate = dup as f64 / s1.rows.len() as f64;
        assert!(rate > 0.7, "duplicate rate {rate} too low");
    }

    #[test]
    fn removed_voters_eventually_disappear() {
        let cfg = GeneratorConfig {
            seed: 5,
            initial_population: 200,
            removal_rate: 0.3,
            annual_growth: 0.0,
            ..Default::default()
        };
        let mut reg = Registry::new(cfg);
        let cal = standard_calendar();
        let first = reg.generate_snapshot(&cal[0]).rows.len();
        let mut sizes = Vec::new();
        for info in &cal[1..20] {
            sizes.push(reg.generate_snapshot(info).rows.len());
        }
        let last = *sizes.last().unwrap();
        assert!(last < first, "roll should shrink: {last} vs {first}");
    }

    #[test]
    fn ncid_reuse_creates_unsound_clusters() {
        let cfg = GeneratorConfig {
            seed: 6,
            initial_population: 500,
            removal_rate: 0.15,
            removed_retention_years: 1,
            ncid_reuse_rate: 0.5,
            ..Default::default()
        };
        let mut reg = Registry::new(cfg);
        for info in standard_calendar().iter().take(25) {
            reg.generate_snapshot(info);
        }
        assert!(
            !reg.unsound_ncids().is_empty(),
            "expected some NCID reuse with a high reuse rate"
        );
    }

    #[test]
    #[should_panic(expected = "snapshots must be generated in order")]
    fn out_of_order_generation_panics() {
        let mut reg = small_registry(7, 50);
        let cal = standard_calendar();
        reg.generate_snapshot(&cal[5]);
        reg.generate_snapshot(&cal[0]);
    }

    #[test]
    fn month_helpers() {
        let a = Date::new(2010, 11, 2);
        let b = Date::new(2011, 1, 1);
        assert_eq!(months_between(a, b), 2);
        assert!((elapsed_years(a, b) - 2.0 / 12.0).abs() < 1e-12);
        assert_eq!(add_months(a, 2), (2011, 1));
        assert_eq!(add_months(a, 0), (2010, 11));
        assert_eq!(add_months(Date::new(2010, 1, 1), 11), (2010, 12));
    }
}
