//! Value pools for the synthetic voter population.
//!
//! Pools are modeled on the value distributions of the real NC register:
//! upper-case names, NC county and city names, US states as birth
//! places, and the NC party/race/ethnicity code books.

/// Common female first names.
pub const FEMALE_FIRST: &[&str] = &[
    "MARY", "PATRICIA", "LINDA", "BARBARA", "ELIZABETH", "JENNIFER", "MARIA", "SUSAN",
    "MARGARET", "DOROTHY", "LISA", "NANCY", "KAREN", "BETTY", "HELEN", "SANDRA", "DONNA",
    "CAROL", "RUTH", "SHARON", "MICHELLE", "LAURA", "SARAH", "KIMBERLY", "DEBORAH", "JESSICA",
    "SHIRLEY", "CYNTHIA", "ANGELA", "MELISSA", "BRENDA", "AMY", "ANNA", "REBECCA", "VIRGINIA",
    "KATHLEEN", "PAMELA", "MARTHA", "DEBRA", "AMANDA", "STEPHANIE", "CAROLYN", "CHRISTINE",
    "MARIE", "JANET", "CATHERINE", "FRANCES", "ANN", "JOYCE", "DIANE", "ALICE", "JULIE",
    "HEATHER", "TERESA", "DORIS", "GLORIA", "EVELYN", "JEAN", "CHERYL", "MILDRED", "KATHERINE",
    "JOAN", "ASHLEY", "JUDITH", "ROSE", "JANICE", "KELLY", "NICOLE", "JUDY", "CHRISTINA",
    "KATHY", "THERESA", "BEVERLY", "DENISE", "TAMMY", "IRENE", "JANE", "LORI", "RACHEL",
    "MARILYN", "ANDREA", "KATHRYN", "LOUISE", "SARA", "ANNE", "JACQUELINE", "WANDA", "BONNIE",
    "JULIA", "RUBY", "LOIS", "TINA", "PHYLLIS", "NORMA", "PAULA", "DIANA", "ANNIE", "LILLIAN",
    "EMILY", "ROBIN", "MARY ANN", "ANH THI", "BETTY JO",
];

/// Common male first names.
pub const MALE_FIRST: &[&str] = &[
    "JAMES", "JOHN", "ROBERT", "MICHAEL", "WILLIAM", "DAVID", "RICHARD", "CHARLES", "JOSEPH",
    "THOMAS", "CHRISTOPHER", "DANIEL", "PAUL", "MARK", "DONALD", "GEORGE", "KENNETH", "STEVEN",
    "EDWARD", "BRIAN", "RONALD", "ANTHONY", "KEVIN", "JASON", "MATTHEW", "GARY", "TIMOTHY",
    "JOSE", "LARRY", "JEFFREY", "FRANK", "SCOTT", "ERIC", "STEPHEN", "ANDREW", "RAYMOND",
    "GREGORY", "JOSHUA", "JERRY", "DENNIS", "WALTER", "PATRICK", "PETER", "HAROLD", "DOUGLAS",
    "HENRY", "CARL", "ARTHUR", "RYAN", "ROGER", "JOE", "JUAN", "JACK", "ALBERT", "JONATHAN",
    "JUSTIN", "TERRY", "GERALD", "KEITH", "SAMUEL", "WILLIE", "RALPH", "LAWRENCE", "NICHOLAS",
    "ROY", "BENJAMIN", "BRUCE", "BRANDON", "ADAM", "HARRY", "FRED", "WAYNE", "BILLY", "STEVE",
    "LOUIS", "JEREMY", "AARON", "RANDY", "HOWARD", "EUGENE", "CARLOS", "RUSSELL", "BOBBY",
    "VICTOR", "MARTIN", "ERNEST", "PHILLIP", "TODD", "JESSE", "CRAIG", "ALAN", "SHAWN",
    "CLARENCE", "SEAN", "PHILIP", "CHRIS", "JOHNNY", "EARL", "JIMMY", "ANTONIO",
    "JUAN CARLOS", "VAN MINH", "BILLY RAY",
];

/// Common middle names (either sex).
pub const MIDDLE: &[&str] = &[
    "ANN", "MARIE", "LYNN", "LEE", "MAE", "JEAN", "LOUISE", "GRACE", "ROSE", "ELIZABETH",
    "ALLEN", "WAYNE", "EUGENE", "RAY", "DEAN", "EARL", "GLENN", "DALE", "SCOTT", "ALAN",
    "EDWARD", "JAMES", "JOSEPH", "MICHAEL", "DAVID", "THOMAS", "PAUL", "MARK", "ANTHONY",
    "NICOLE", "RENEE", "MICHELLE", "DAWN", "DENISE", "KAY", "SUE", "JO", "BETH", "FAYE",
    "ANH", "THI", "VAN", "MINH",
];

/// Common last names.
pub const LAST: &[&str] = &[
    "SMITH", "JOHNSON", "WILLIAMS", "JONES", "BROWN", "DAVIS", "MILLER", "WILSON", "MOORE",
    "TAYLOR", "ANDERSON", "THOMAS", "JACKSON", "WHITE", "HARRIS", "MARTIN", "THOMPSON",
    "GARCIA", "MARTINEZ", "ROBINSON", "CLARK", "RODRIGUEZ", "LEWIS", "LEE", "WALKER", "HALL",
    "ALLEN", "YOUNG", "HERNANDEZ", "KING", "WRIGHT", "LOPEZ", "HILL", "SCOTT", "GREEN",
    "ADAMS", "BAKER", "GONZALEZ", "NELSON", "CARTER", "MITCHELL", "PEREZ", "ROBERTS",
    "TURNER", "PHILLIPS", "CAMPBELL", "PARKER", "EVANS", "EDWARDS", "COLLINS", "STEWART",
    "SANCHEZ", "MORRIS", "ROGERS", "REED", "COOK", "MORGAN", "BELL", "MURPHY", "BAILEY",
    "RIVERA", "COOPER", "RICHARDSON", "COX", "HOWARD", "WARD", "TORRES", "PETERSON", "GRAY",
    "RAMIREZ", "JAMES", "WATSON", "BROOKS", "KELLY", "SANDERS", "PRICE", "BENNETT", "WOOD",
    "BARNES", "ROSS", "HENDERSON", "COLEMAN", "JENKINS", "PERRY", "POWELL", "LONG",
    "PATTERSON", "HUGHES", "FLORES", "WASHINGTON", "BUTLER", "SIMMONS", "FOSTER", "BRYANT",
    "ALEXANDER", "RUSSELL", "GRIFFIN", "DIAZ", "HAYES", "OEHRLE", "BETHEA", "FIELDS",
    "LOCKLEAR", "OXENDINE", "BULLARD",
];

/// Name suffixes (rare).
pub const SUFFIXES: &[&str] = &["JR", "SR", "II", "III", "IV"];

/// A subset of NC counties with their official ids.
pub const COUNTIES: &[(u32, &str)] = &[
    (1, "ALAMANCE"), (2, "ALEXANDER"), (3, "ALLEGHANY"), (4, "ANSON"), (5, "ASHE"),
    (10, "BLADEN"), (11, "BRUNSWICK"), (12, "BUNCOMBE"), (13, "BURKE"), (14, "CABARRUS"),
    (18, "CATAWBA"), (19, "CHATHAM"), (25, "CRAVEN"), (26, "CUMBERLAND"), (31, "DURHAM"),
    (32, "EDGECOMBE"), (33, "FORSYTH"), (34, "FRANKLIN"), (35, "GASTON"), (40, "GUILFORD"),
    (41, "HALIFAX"), (43, "HARNETT"), (45, "HENDERSON"), (49, "IREDELL"), (51, "JOHNSTON"),
    (54, "LENOIR"), (55, "LINCOLN"), (60, "MECKLENBURG"), (63, "MOORE"), (64, "NASH"),
    (65, "NEW HANOVER"), (67, "ONSLOW"), (68, "ORANGE"), (70, "PASQUOTANK"), (74, "PITT"),
    (76, "RANDOLPH"), (77, "RICHMOND"), (78, "ROBESON"), (79, "ROCKINGHAM"), (80, "ROWAN"),
    (82, "SAMPSON"), (84, "STANLY"), (86, "SURRY"), (90, "UNION"), (92, "WAKE"),
    (93, "WARREN"), (95, "WATAUGA"), (96, "WAYNE"), (98, "WILSON"), (100, "YANCEY"),
];

/// NC cities used for residence/mailing addresses.
pub const CITIES: &[&str] = &[
    "RALEIGH", "CHARLOTTE", "GREENSBORO", "DURHAM", "WINSTON SALEM", "FAYETTEVILLE", "CARY",
    "WILMINGTON", "HIGH POINT", "ASHEVILLE", "CONCORD", "GASTONIA", "GREENVILLE",
    "JACKSONVILLE", "CHAPEL HILL", "ROCKY MOUNT", "HUNTERSVILLE", "BURLINGTON", "WILSON",
    "KANNAPOLIS", "APEX", "HICKORY", "GOLDSBORO", "INDIAN TRAIL", "MOORESVILLE", "MONROE",
    "SANFORD", "NEW BERN", "MATTHEWS", "SALISBURY", "HOLLY SPRINGS", "THOMASVILLE",
    "CORNELIUS", "GARNER", "ASHEBORO", "STATESVILLE", "KERNERSVILLE", "MINT HILL",
    "LUMBERTON", "KINSTON", "FUQUAY VARINA", "HAVELOCK", "CARRBORO", "SHELBY", "CLEMMONS",
    "LEXINGTON", "ELIZABETH CITY", "BOONE", "CLAYTON", "HENDERSON",
];

/// Street base names.
pub const STREETS: &[&str] = &[
    "MAIN", "CHURCH", "MILL", "OAK", "PINE", "MAPLE", "CEDAR", "ELM", "WASHINGTON", "LAKE",
    "HILL", "WALNUT", "SPRING", "NORTH", "RIDGE", "DOGWOOD", "HOLLY", "CHESTNUT", "POPLAR",
    "FOREST", "SUNSET", "RAILROAD", "PARK", "COLLEGE", "ACADEMY", "HIGHLAND", "RIVER",
    "JONES FERRY", "OLD STAGE", "FIRETOWER", "MILLBROOK", "FALLS OF NEUSE", "SIX FORKS",
    "TRYON", "WADE", "PERSON", "BLOUNT", "MORGAN", "HARGETT", "MARTIN",
];

/// Street types.
pub const STREET_TYPES: &[&str] = &["ST", "RD", "AVE", "DR", "LN", "CT", "PL", "BLVD", "WAY", "CIR"];

/// US states (abbreviation, name) used for birth places.
pub const STATES: &[(&str, &str)] = &[
    ("NC", "NORTH CAROLINA"), ("SC", "SOUTH CAROLINA"), ("VA", "VIRGINIA"), ("GA", "GEORGIA"),
    ("TN", "TENNESSEE"), ("NY", "NEW YORK"), ("NJ", "NEW JERSEY"), ("PA", "PENNSYLVANIA"),
    ("FL", "FLORIDA"), ("OH", "OHIO"), ("MI", "MICHIGAN"), ("IL", "ILLINOIS"),
    ("CA", "CALIFORNIA"), ("TX", "TEXAS"), ("MD", "MARYLAND"), ("WV", "WEST VIRGINIA"),
    ("AL", "ALABAMA"), ("MA", "MASSACHUSETTS"), ("CT", "CONNECTICUT"), ("KY", "KENTUCKY"),
];

/// Party code book: (code, description).
pub const PARTIES: &[(&str, &str)] = &[
    ("DEM", "DEMOCRATIC"),
    ("REP", "REPUBLICAN"),
    ("UNA", "UNAFFILIATED"),
    ("LIB", "LIBERTARIAN"),
];

/// Race code book: (code, description).
pub const RACES: &[(&str, &str)] = &[
    ("W", "WHITE"),
    ("B", "BLACK or AFRICAN AMERICAN"),
    ("A", "ASIAN"),
    ("I", "AMERICAN INDIAN or ALASKA NATIVE"),
    ("M", "TWO or MORE RACES"),
    ("O", "OTHER"),
    ("U", "UNDESIGNATED"),
];

/// Ethnicity code book: (code, description).
pub const ETHNICITIES: &[(&str, &str)] = &[
    ("HL", "HISPANIC or LATINO"),
    ("NL", "NOT HISPANIC or NOT LATINO"),
    ("UN", "UNDESIGNATED"),
];

/// Voter status values: (status, removal reason when status = REMOVED).
pub const STATUSES: &[&str] = &["ACTIVE", "INACTIVE", "REMOVED", "DENIED"];

/// Status reasons by status.
pub const STATUS_REASONS: &[(&str, &str)] = &[
    ("ACTIVE", "VERIFIED"),
    ("ACTIVE", "VERIFICATION PENDING"),
    ("INACTIVE", "CONFIRMATION NOT RETURNED"),
    ("INACTIVE", "CONFIRMATION RETURNED UNDELIVERABLE"),
    ("REMOVED", "MOVED FROM COUNTY"),
    ("REMOVED", "DECEASED"),
    ("REMOVED", "VOTER REQUESTED"),
    ("REMOVED", "DUPLICATE"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_unique() {
        fn assert_unique(pool: &[&str], name: &str) {
            let mut v = pool.to_vec();
            v.sort_unstable();
            let before = v.len();
            v.dedup();
            assert_eq!(v.len(), before, "duplicates in pool {name}");
            assert!(!pool.is_empty());
        }
        assert_unique(FEMALE_FIRST, "FEMALE_FIRST");
        assert_unique(MALE_FIRST, "MALE_FIRST");
        assert_unique(MIDDLE, "MIDDLE");
        assert_unique(LAST, "LAST");
        assert_unique(CITIES, "CITIES");
        assert_unique(STREETS, "STREETS");
    }

    #[test]
    fn county_ids_are_unique_and_sorted() {
        let mut ids: Vec<u32> = COUNTIES.iter().map(|(id, _)| *id).collect();
        let sorted = ids.windows(2).all(|w| w[0] < w[1]);
        assert!(sorted, "county ids must be ascending");
        ids.dedup();
        assert_eq!(ids.len(), COUNTIES.len());
    }

    #[test]
    fn all_values_are_uppercase() {
        for &n in FEMALE_FIRST.iter().chain(MALE_FIRST).chain(LAST) {
            assert_eq!(n, n.to_uppercase(), "pool value not uppercase: {n}");
        }
    }

    #[test]
    fn code_books_consistent() {
        assert!(PARTIES.iter().any(|(c, _)| *c == "UNA"));
        assert!(RACES.iter().any(|(c, _)| *c == "U"));
        assert!(STATUS_REASONS.iter().all(|(s, _)| STATUSES.contains(s)));
    }
}
