//! The snapshot calendar and per-era value formatting.
//!
//! The real archive consists of 40 snapshots published at elections and
//! on New Year's Day between 2008 and 2020 (Table 1). Attribute formats
//! drift over time — the paper cites `64TH HOUSE` → `NC HOUSE DISTRICT
//! 64` and `66 AND ABOVE` → `Age Over 66` as the cause of surprising
//! new-record spikes — so formatting is a function of the snapshot date.

use crate::date::Date;
use crate::schema::Row;

/// One entry of the snapshot calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Position in the calendar (0-based).
    pub index: usize,
    /// Publication date.
    pub date: Date,
}

/// A generated snapshot: the full voter roll at one date.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Calendar index.
    pub index: usize,
    /// Publication date (`YYYY-MM-DD`).
    pub date: String,
    /// All rows of the roll.
    pub rows: Vec<Row>,
}

/// The standard 40-snapshot calendar (2008–2020), matching the per-year
/// snapshot counts of the paper's Table 1.
pub fn standard_calendar() -> Vec<SnapshotInfo> {
    let dates = [
        (2008, 11, 4),
        (2009, 1, 1),
        (2010, 5, 4),
        (2010, 11, 2),
        (2011, 1, 1),
        (2011, 4, 5),
        (2011, 9, 6),
        (2011, 11, 8),
        (2012, 5, 8),
        (2012, 11, 6),
        (2013, 1, 1),
        (2014, 1, 1),
        (2014, 5, 6),
        (2014, 7, 15),
        (2014, 11, 4),
        (2015, 1, 1),
        (2015, 4, 7),
        (2015, 9, 15),
        (2015, 11, 3),
        (2016, 1, 1),
        (2016, 3, 15),
        (2016, 6, 7),
        (2016, 11, 8),
        (2017, 1, 1),
        (2017, 3, 7),
        (2017, 9, 12),
        (2017, 11, 7),
        (2018, 1, 1),
        (2018, 5, 8),
        (2018, 11, 6),
        (2019, 1, 1),
        (2019, 2, 26),
        (2019, 4, 9),
        (2019, 6, 11),
        (2019, 9, 10),
        (2019, 10, 8),
        (2020, 1, 1),
        (2020, 3, 3),
        (2020, 6, 23),
        (2020, 11, 3),
    ];
    dates
        .iter()
        .enumerate()
        .map(|(index, &(y, m, d))| SnapshotInfo {
            index,
            date: Date::new(y, m, d),
        })
        .collect()
}

/// Append the English ordinal suffix (`1ST`, `2ND`, `3RD`, `4TH`, …).
pub fn ordinal(n: u32) -> String {
    let suffix = match (n % 10, n % 100) {
        (1, 11) | (2, 12) | (3, 13) => "TH",
        (1, _) => "ST",
        (2, _) => "ND",
        (3, _) => "RD",
        _ => "TH",
    };
    format!("{n}{suffix}")
}

/// Format the NC-house district label for a given snapshot year.
pub fn format_house_district(district: u32, year: i32) -> String {
    if year < 2014 {
        format!("{} HOUSE", ordinal(district))
    } else {
        format!("NC HOUSE DISTRICT {district}")
    }
}

/// Format the congressional district label for a given snapshot year.
pub fn format_congressional(district: u32, year: i32) -> String {
    if year < 2012 {
        format!("{} CONGRESSIONAL", ordinal(district))
    } else {
        format!("CO. DISTRICT {district}")
    }
}

/// Format the NC-senate district label (stable over time).
pub fn format_senate(district: u32) -> String {
    format!("NC SENATE DISTRICT {district}")
}

/// Format the age-group band for a given snapshot year.
pub fn format_age_group(age: i32, year: i32) -> String {
    let (lo, hi) = match age {
        i32::MIN..=25 => (18, 25),
        26..=40 => (26, 40),
        41..=65 => (41, 65),
        _ => (66, i32::MAX),
    };
    if year < 2018 {
        if hi == i32::MAX {
            "66 AND ABOVE".to_owned()
        } else {
            format!("{lo} - {hi}")
        }
    } else if hi == i32::MAX {
        "Age Over 66".to_owned()
    } else {
        format!("Age {lo} to {hi}")
    }
}

/// Convenience: write a snapshot as TSV (header + one line per row).
pub fn to_tsv(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let header: Vec<&str> = crate::schema::SCHEMA.iter().map(|a| a.name).collect();
    out.push_str(&header.join("\t"));
    out.push('\n');
    for row in &snapshot.rows {
        out.push_str(&row.to_tsv());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_has_forty_snapshots() {
        let cal = standard_calendar();
        assert_eq!(cal.len(), 40);
        // Strictly increasing dates, contiguous indexes.
        for w in cal.windows(2) {
            assert!(w[0].date < w[1].date);
            assert_eq!(w[0].index + 1, w[1].index);
        }
        assert_eq!(cal[0].date.year, 2008);
        assert_eq!(cal[39].date.year, 2020);
    }

    #[test]
    fn calendar_matches_table1_yearly_counts() {
        let cal = standard_calendar();
        let count = |y: i32| cal.iter().filter(|s| s.date.year == y).count();
        assert_eq!(count(2008), 1);
        assert_eq!(count(2009), 1);
        assert_eq!(count(2010), 2);
        assert_eq!(count(2011), 4);
        assert_eq!(count(2012), 2);
        assert_eq!(count(2013), 1);
        assert_eq!(count(2014), 4);
        assert_eq!(count(2015), 4);
        assert_eq!(count(2016), 4);
        assert_eq!(count(2017), 4);
        assert_eq!(count(2018), 3);
        assert_eq!(count(2019), 6);
        assert_eq!(count(2020), 4);
    }

    #[test]
    fn ordinals() {
        assert_eq!(ordinal(1), "1ST");
        assert_eq!(ordinal(2), "2ND");
        assert_eq!(ordinal(3), "3RD");
        assert_eq!(ordinal(4), "4TH");
        assert_eq!(ordinal(11), "11TH");
        assert_eq!(ordinal(12), "12TH");
        assert_eq!(ordinal(13), "13TH");
        assert_eq!(ordinal(21), "21ST");
        assert_eq!(ordinal(64), "64TH");
        assert_eq!(ordinal(103), "103RD");
    }

    #[test]
    fn house_format_drifts_at_2014() {
        assert_eq!(format_house_district(64, 2013), "64TH HOUSE");
        assert_eq!(format_house_district(64, 2014), "NC HOUSE DISTRICT 64");
    }

    #[test]
    fn congressional_format_drifts_at_2012() {
        assert_eq!(format_congressional(1, 2011), "1ST CONGRESSIONAL");
        assert_eq!(format_congressional(1, 2012), "CO. DISTRICT 1");
    }

    #[test]
    fn age_group_format_drifts_at_2018() {
        assert_eq!(format_age_group(70, 2017), "66 AND ABOVE");
        assert_eq!(format_age_group(70, 2018), "Age Over 66");
        assert_eq!(format_age_group(30, 2017), "26 - 40");
        assert_eq!(format_age_group(30, 2018), "Age 26 to 40");
        assert_eq!(format_age_group(18, 2008), "18 - 25");
    }

    #[test]
    fn tsv_rendering_includes_header() {
        let snap = Snapshot {
            index: 0,
            date: "2008-11-04".into(),
            rows: vec![Row::empty()],
        };
        let tsv = to_tsv(&snap);
        let mut lines = tsv.lines();
        assert!(lines.next().unwrap().starts_with("ncid\t"));
        assert_eq!(lines.count(), 1);
    }
}
