//! Generator configuration.

/// Per-value corruption probabilities applied when a registration form is
/// (re-)entered. Probabilities are cumulative-exclusive: at most one
/// corruption class is applied per value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRates {
    /// Single-character typo (insert/delete/substitute/transpose).
    pub typo: f64,
    /// Letter ↔ digit OCR confusion.
    pub ocr: f64,
    /// Phonetic-preserving misspelling.
    pub phonetic: f64,
    /// Abbreviation to the first letter.
    pub abbreviation: f64,
    /// Value dropped entirely.
    pub missing: f64,
    /// Value entered in lowercase.
    pub case_flip: f64,
}

impl ErrorRates {
    /// No corruption at all.
    pub fn none() -> Self {
        ErrorRates {
            typo: 0.0,
            ocr: 0.0,
            phonetic: 0.0,
            abbreviation: 0.0,
            missing: 0.0,
            case_flip: 0.0,
        }
    }

    /// Sum of all rates (must stay ≤ 1).
    pub fn total(&self) -> f64 {
        self.typo + self.ocr + self.phonetic + self.abbreviation + self.missing + self.case_flip
    }
}

impl Default for ErrorRates {
    /// Rates calibrated to reproduce the error-frequency *order* of the
    /// paper's Table 4 (missing ≫ abbreviation ≫ typo ≈ phonetic ≫ OCR).
    fn default() -> Self {
        ErrorRates {
            typo: 0.015,
            ocr: 0.0005,
            phonetic: 0.008,
            abbreviation: 0.02,
            missing: 0.01,
            case_flip: 0.003,
        }
    }
}

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// RNG seed; equal configs generate identical archives.
    pub seed: u64,
    /// Number of voters registered before the first snapshot.
    pub initial_population: usize,
    /// Fraction of the population newly registered per year (baseline).
    pub annual_growth: f64,
    /// Extra growth multiplier in presidential election years
    /// (2008/2012/2016/2020 show large new-object spikes in Table 1).
    pub election_year_boost: f64,
    /// Probability per snapshot that an existing voter re-registers
    /// (re-entering their data by hand, picking up fresh errors).
    pub reregistration_rate: f64,
    /// Probability per year that a voter moves (address + districts
    /// change at the next re-registration).
    pub move_rate: f64,
    /// Probability per year that a voter changes their last name.
    pub name_change_rate: f64,
    /// Probability per year that a voter switches party.
    pub party_switch_rate: f64,
    /// Probability per year that a voter is removed from the rolls.
    pub removal_rate: f64,
    /// Years a removed voter keeps appearing in snapshots before being
    /// purged (removed records stay listed for a while in the real data).
    pub removed_retention_years: i32,
    /// Probability that a *new* registration reuses a purged NCID,
    /// creating an unsound cluster.
    pub ncid_reuse_rate: f64,
    /// Per-value corruption rates at (re-)registration.
    pub error_rates: ErrorRates,
    /// Probability that an emitted value carries stray whitespace (not
    /// sticky: re-rolled at every snapshot emission, producing the
    /// "exact after trimming" duplicate class of Table 2).
    pub whitespace_rate: f64,
    /// Probability that a record's names are confused between attributes
    /// at re-registration.
    pub confusion_rate: f64,
    /// Probability that the middle name is integrated into the first name
    /// at re-registration.
    pub integration_rate: f64,
    /// Probability that first/middle tokens are scattered differently at
    /// re-registration.
    pub scatter_rate: f64,
    /// Probability that the recorded age becomes an outlier value.
    pub age_outlier_rate: f64,
    /// Probability that the emitted age is off by one (form filled before
    /// vs after the birthday — the paper's YoB tolerance of 1).
    pub age_jitter_rate: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0x5EED_2021,
            initial_population: 10_000,
            annual_growth: 0.035,
            election_year_boost: 3.0,
            reregistration_rate: 0.10,
            move_rate: 0.09,
            name_change_rate: 0.012,
            party_switch_rate: 0.02,
            removal_rate: 0.02,
            removed_retention_years: 3,
            ncid_reuse_rate: 0.004,
            error_rates: ErrorRates::default(),
            whitespace_rate: 0.005,
            confusion_rate: 0.004,
            integration_rate: 0.004,
            scatter_rate: 0.001,
            age_outlier_rate: 0.003,
            age_jitter_rate: 0.3,
        }
    }
}

impl GeneratorConfig {
    /// A small configuration for unit tests and examples.
    pub fn small(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            initial_population: 500,
            ..Default::default()
        }
    }

    /// Validate rates; returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_population == 0 {
            return Err("initial_population must be positive".into());
        }
        let rates = [
            ("annual_growth", self.annual_growth),
            ("reregistration_rate", self.reregistration_rate),
            ("move_rate", self.move_rate),
            ("name_change_rate", self.name_change_rate),
            ("party_switch_rate", self.party_switch_rate),
            ("removal_rate", self.removal_rate),
            ("ncid_reuse_rate", self.ncid_reuse_rate),
            ("whitespace_rate", self.whitespace_rate),
            ("confusion_rate", self.confusion_rate),
            ("integration_rate", self.integration_rate),
            ("scatter_rate", self.scatter_rate),
            ("age_outlier_rate", self.age_outlier_rate),
            ("age_jitter_rate", self.age_jitter_rate),
        ];
        for (name, r) in rates {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("{name} must be in [0,1], got {r}"));
            }
        }
        if self.error_rates.total() > 1.0 {
            return Err(format!(
                "error rates sum to {} > 1",
                self.error_rates.total()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(GeneratorConfig::default().validate().is_ok());
        assert!(GeneratorConfig::small(1).validate().is_ok());
    }

    #[test]
    fn invalid_rates_rejected() {
        let c = GeneratorConfig { reregistration_rate: 1.5, ..Default::default() };
        assert!(c.validate().is_err());

        let c = GeneratorConfig { initial_population: 0, ..Default::default() };
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::default();
        c.error_rates.typo = 0.9;
        c.error_rates.missing = 0.9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn error_rates_total() {
        assert_eq!(ErrorRates::none().total(), 0.0);
        assert!(ErrorRates::default().total() < 0.1);
    }
}
