//! The error-injection engine.
//!
//! Re-registration forms are filled by hand and typed in by county staff;
//! this module reproduces the error classes the paper measures in its
//! Table 4 analysis. Single-value corruptions ([`typo`], [`ocr_corrupt`],
//! [`phonetic_corrupt`], [`abbreviate`], [`pad_whitespace`],
//! [`lowercase_value`], [`make_outlier_age`]) act on one string;
//! multi-attribute corruptions ([`confuse_values`], [`integrate_value`],
//! [`scatter_values`]) act on the (first, middle, last) name triple.

use rand::Rng;

use crate::config::ErrorRates;
use crate::schema::{Row, FIRST_NAME, LAST_NAME, MIDL_NAME};

/// Visually confusable (letter, digit) pairs used for OCR errors.
const OCR_PAIRS: &[(char, char)] = &[
    ('O', '0'),
    ('I', '1'),
    ('L', '1'),
    ('S', '5'),
    ('B', '8'),
    ('Z', '2'),
    ('G', '6'),
    ('T', '7'),
];

/// Phonetic-preserving rewrites (applied left to right, first match).
/// Each rewrite keeps the Soundex code intact for typical names.
const PHONETIC_REWRITES: &[(&str, &str)] = &[
    ("PH", "F"),
    ("CK", "K"),
    ("EE", "EA"),
    ("EY", "IE"),
    ("Y", "IE"),
    ("AI", "AY"),
    ("OU", "OW"),
    ("KS", "X"),
    ("C", "K"),
];

/// Characters used for random substitutions/insertions.
const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// Introduce a single random typo (insert, delete, substitute or
/// transpose). Values shorter than two characters are returned unchanged.
pub fn typo<R: Rng>(rng: &mut R, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_owned();
    }
    let mut out = chars.clone();
    match rng.gen_range(0..4u8) {
        0 => {
            // substitution
            let i = rng.gen_range(0..out.len());
            let c = ALPHABET[rng.gen_range(0..ALPHABET.len())] as char;
            out[i] = c;
        }
        1 => {
            // deletion
            let i = rng.gen_range(0..out.len());
            out.remove(i);
        }
        2 => {
            // insertion
            let i = rng.gen_range(0..=out.len());
            let c = ALPHABET[rng.gen_range(0..ALPHABET.len())] as char;
            out.insert(i, c);
        }
        _ => {
            // adjacent transposition
            let i = rng.gen_range(0..out.len() - 1);
            out.swap(i, i + 1);
        }
    }
    out.into_iter().collect()
}

/// Replace one letter with its visually confusable digit (an OCR error).
/// Returns the input unchanged if it contains no confusable letter.
pub fn ocr_corrupt<R: Rng>(rng: &mut R, s: &str) -> String {
    let positions: Vec<(usize, char)> = s
        .char_indices()
        .filter_map(|(i, c)| {
            OCR_PAIRS
                .iter()
                .find(|(l, _)| *l == c.to_ascii_uppercase())
                .map(|(_, d)| (i, *d))
        })
        .collect();
    if positions.is_empty() {
        return s.to_owned();
    }
    let (byte_idx, digit) = positions[rng.gen_range(0..positions.len())];
    let mut out = String::with_capacity(s.len());
    for (i, c) in s.char_indices() {
        out.push(if i == byte_idx { digit } else { c });
    }
    out
}

/// Apply a phonetic-preserving misspelling. Returns the input unchanged
/// when no rewrite applies.
pub fn phonetic_corrupt<R: Rng>(rng: &mut R, s: &str) -> String {
    let applicable: Vec<&(&str, &str)> = PHONETIC_REWRITES
        .iter()
        .filter(|(from, _)| s.contains(from))
        .collect();
    if applicable.is_empty() {
        return s.to_owned();
    }
    let (from, to) = applicable[rng.gen_range(0..applicable.len())];
    s.replacen(from, to, 1)
}

/// Abbreviate a value to its first letter, optionally followed by a
/// period.
pub fn abbreviate<R: Rng>(rng: &mut R, s: &str) -> String {
    match s.chars().next() {
        Some(c) if c.is_alphabetic() => {
            if rng.gen_bool(0.5) {
                format!("{c}.")
            } else {
                c.to_string()
            }
        }
        _ => s.to_owned(),
    }
}

/// Add stray leading and/or trailing whitespace.
pub fn pad_whitespace<R: Rng>(rng: &mut R, s: &str) -> String {
    if s.is_empty() {
        return s.to_owned();
    }
    match rng.gen_range(0..3u8) {
        0 => format!(" {s}"),
        1 => format!("{s} "),
        _ => format!(" {s} "),
    }
}

/// Lowercase the value (a data-entry case inconsistency).
pub fn lowercase_value(s: &str) -> String {
    s.to_lowercase()
}

/// Produce an outlier age value such as the paper's `age = 5069`.
pub fn make_outlier_age<R: Rng>(rng: &mut R) -> String {
    if rng.gen_bool(0.5) {
        // Concatenation artifact: two plausible ages glued together.
        format!("{}{}", rng.gen_range(18..99), rng.gen_range(18..99))
    } else {
        // Sentinel/garbage values seen in the wild.
        ["0", "999", "110", "150"][rng.gen_range(0..4)].to_owned()
    }
}

/// Swap the values of two name attributes (a value confusion).
pub fn confuse_values<R: Rng>(rng: &mut R, row: &mut Row) {
    let pairs = [
        (FIRST_NAME, MIDL_NAME),
        (MIDL_NAME, LAST_NAME),
        (FIRST_NAME, LAST_NAME),
    ];
    let (a, b) = pairs[rng.gen_range(0..pairs.len())];
    row.values.swap(a, b);
}

/// Integrate the middle name into the first name (`MARY` + `ANN` →
/// `MARY ANN`, middle name emptied). No-op when the middle name is
/// missing.
pub fn integrate_value(row: &mut Row) {
    let midl = row.get(MIDL_NAME).trim().to_owned();
    if midl.is_empty() {
        return;
    }
    let first = row.get(FIRST_NAME).trim().to_owned();
    row.set(FIRST_NAME, format!("{first} {midl}").trim().to_owned());
    row.set(MIDL_NAME, "");
}

/// Scatter the tokens of first + middle name across the two attributes
/// differently (e.g. `AN LE` + `MA` → `AN` + `LE MA`). No-op when there
/// are fewer than two tokens in total.
pub fn scatter_values<R: Rng>(rng: &mut R, row: &mut Row) {
    let first_tokens = row.get(FIRST_NAME).split_whitespace().count();
    let mut toks: Vec<String> = Vec::new();
    toks.extend(row.get(FIRST_NAME).split_whitespace().map(str::to_owned));
    toks.extend(row.get(MIDL_NAME).split_whitespace().map(str::to_owned));
    if toks.len() < 2 {
        return;
    }
    // Pick a split point different from the current one so the scatter
    // actually changes the assignment. Splits range over 1..len; when
    // the only alternative is the current split (two tokens currently
    // split 1|1), fall back to merging everything into the first name.
    let candidates: Vec<usize> = (1..toks.len()).filter(|&s| s != first_tokens).collect();
    let split = if candidates.is_empty() {
        toks.len()
    } else {
        candidates[rng.gen_range(0..candidates.len())]
    };
    row.set(FIRST_NAME, toks[..split].join(" "));
    row.set(MIDL_NAME, toks[split..].join(" "));
}

/// Corrupt a single value according to the configured rates. Applies at
/// most one corruption class (the paper's detectors classify pairwise
/// differences; stacking many corruptions on one value would mostly
/// create unclassifiable noise, which exists in the real data but is
/// rare).
pub fn corrupt_value<R: Rng>(rng: &mut R, rates: &ErrorRates, s: &str) -> String {
    if s.is_empty() {
        return s.to_owned();
    }
    let roll: f64 = rng.gen();
    let mut acc = rates.typo;
    if roll < acc {
        return typo(rng, s);
    }
    acc += rates.ocr;
    if roll < acc {
        return ocr_corrupt(rng, s);
    }
    acc += rates.phonetic;
    if roll < acc {
        return phonetic_corrupt(rng, s);
    }
    acc += rates.abbreviation;
    if roll < acc {
        return abbreviate(rng, s);
    }
    acc += rates.missing;
    if roll < acc {
        return String::new();
    }
    acc += rates.case_flip;
    if roll < acc {
        return lowercase_value(s);
    }
    s.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_similarity::soundex::soundex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn typo_changes_string_by_one_edit() {
        let mut r = rng();
        for _ in 0..100 {
            let out = typo(&mut r, "WILLIAMS");
            let d = nc_similarity::damerau::distance("WILLIAMS", &out);
            assert!(d <= 1, "typo produced distance {d}: {out}");
        }
    }

    #[test]
    fn typo_leaves_short_values() {
        let mut r = rng();
        assert_eq!(typo(&mut r, "A"), "A");
        assert_eq!(typo(&mut r, ""), "");
    }

    #[test]
    fn ocr_introduces_digit() {
        let mut r = rng();
        let out = ocr_corrupt(&mut r, "NICOLE");
        assert!(out.chars().any(|c| c.is_ascii_digit()), "{out}");
        assert_eq!(out.len(), "NICOLE".len());
    }

    #[test]
    fn ocr_noop_without_confusable() {
        let mut r = rng();
        assert_eq!(ocr_corrupt(&mut r, "ANNA"), "ANNA");
    }

    #[test]
    fn phonetic_preserves_soundex_mostly() {
        let mut r = rng();
        let mut preserved = 0;
        let names = ["PHILIP", "BAILEY", "JACKSON", "KATHLEEN", "MCKEE"];
        for name in names {
            let out = phonetic_corrupt(&mut r, name);
            assert_ne!(out, name, "rewrite should apply to {name}");
            if soundex(&out) == soundex(name) {
                preserved += 1;
            }
        }
        assert!(preserved >= 3, "only {preserved} soundex-preserving");
    }

    #[test]
    fn abbreviate_keeps_first_letter() {
        let mut r = rng();
        for _ in 0..10 {
            let out = abbreviate(&mut r, "KIMBERLY");
            assert!(out == "K" || out == "K.");
        }
        assert_eq!(abbreviate(&mut r, ""), "");
    }

    #[test]
    fn whitespace_padding_trims_back() {
        let mut r = rng();
        for _ in 0..10 {
            let out = pad_whitespace(&mut r, "SMITH");
            assert_eq!(out.trim(), "SMITH");
            assert_ne!(out, "SMITH");
        }
        assert_eq!(pad_whitespace(&mut r, ""), "");
    }

    #[test]
    fn outlier_age_is_out_of_range() {
        let mut r = rng();
        for _ in 0..20 {
            let out = make_outlier_age(&mut r);
            let v: i64 = out.parse().unwrap();
            assert!(!(18..=105).contains(&v), "{v} not an outlier");
        }
    }

    #[test]
    fn confusion_swaps_two_name_fields() {
        let mut r = rng();
        let mut row = Row::empty();
        row.set(FIRST_NAME, "JOSE");
        row.set(MIDL_NAME, "JUAN");
        row.set(LAST_NAME, "GARCIA");
        confuse_values(&mut r, &mut row);
        let mut after = [
            row.get(FIRST_NAME).to_owned(),
            row.get(MIDL_NAME).to_owned(),
            row.get(LAST_NAME).to_owned(),
        ];
        after.sort();
        assert_eq!(after, ["GARCIA", "JOSE", "JUAN"]);
    }

    #[test]
    fn integrate_moves_middle_into_first() {
        let mut row = Row::empty();
        row.set(FIRST_NAME, "MARY");
        row.set(MIDL_NAME, "ANN");
        integrate_value(&mut row);
        assert_eq!(row.get(FIRST_NAME), "MARY ANN");
        assert_eq!(row.get(MIDL_NAME), "");
        // No-op without a middle name.
        integrate_value(&mut row);
        assert_eq!(row.get(FIRST_NAME), "MARY ANN");
    }

    #[test]
    fn scatter_preserves_token_multiset() {
        let mut r = rng();
        let mut row = Row::empty();
        row.set(FIRST_NAME, "AN LE");
        row.set(MIDL_NAME, "MA");
        scatter_values(&mut r, &mut row);
        let mut toks: Vec<&str> = row
            .get(FIRST_NAME)
            .split_whitespace()
            .chain(row.get(MIDL_NAME).split_whitespace())
            .collect();
        toks.sort_unstable();
        assert_eq!(toks, ["AN", "LE", "MA"]);
    }

    #[test]
    fn corrupt_value_rate_zero_is_identity() {
        let mut r = rng();
        let rates = ErrorRates::none();
        for _ in 0..50 {
            assert_eq!(corrupt_value(&mut r, &rates, "SMITH"), "SMITH");
        }
    }

    #[test]
    fn corrupt_value_rate_one_always_corrupts() {
        let mut r = rng();
        let rates = ErrorRates {
            typo: 1.0,
            ..ErrorRates::none()
        };
        for _ in 0..20 {
            let out = corrupt_value(&mut r, &rates, "WILLIAMS");
            assert_ne!(out, "WILLIAMS");
        }
    }
}
