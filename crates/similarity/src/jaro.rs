//! Jaro and Jaro–Winkler similarity.
//!
//! Jaro–Winkler is one of the three record matchers evaluated in the
//! paper's usability experiment (Section 6.5, Figure 5). The measure is a
//! sequential (character-level) measure that favours strings sharing a
//! common prefix, which makes it well suited to person names.

use crate::scratch::Scratch;
use crate::{clamp01, with_thread_scratch, ScratchSimilarity, StringSimilarity};

/// Plain Jaro similarity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Jaro;

impl Jaro {
    /// Create the measure.
    pub const fn new() -> Self {
        Self
    }

    /// Allocation-free scoring against caller-provided scratch
    /// buffers; bit-identical to [`StringSimilarity::sim`].
    pub fn sim_with(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        scratch.jaro(a, b)
    }
}

/// Compute the Jaro similarity over `char` slices.
pub fn jaro(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();

    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                b_matched[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    // Count transpositions: compare matched characters in order.
    let b_matches: Vec<char> = b
        .iter()
        .zip(b_matched.iter())
        .filter(|(_, &used)| used)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    clamp01((m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0)
}

impl StringSimilarity for Jaro {
    fn sim(&self, a: &str, b: &str) -> f64 {
        with_thread_scratch(|s| self.sim_with(s, a, b))
    }
}

impl ScratchSimilarity for Jaro {
    fn sim_scratch(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        self.sim_with(scratch, a, b)
    }
}

/// Jaro–Winkler similarity: Jaro boosted by a shared-prefix bonus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JaroWinkler {
    /// Prefix scaling factor, conventionally `0.1` and at most `0.25`.
    pub prefix_scale: f64,
    /// Maximum prefix length considered, conventionally `4`.
    pub max_prefix: usize,
    /// Only apply the prefix boost if the Jaro score exceeds this
    /// threshold (Winkler's original proposal used `0.7`).
    pub boost_threshold: f64,
}

impl Default for JaroWinkler {
    fn default() -> Self {
        Self {
            prefix_scale: 0.1,
            max_prefix: 4,
            boost_threshold: 0.7,
        }
    }
}

impl JaroWinkler {
    /// Create with the conventional parameters (`p = 0.1`, `ℓ ≤ 4`,
    /// boost threshold `0.7`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocation-free scoring against caller-provided scratch
    /// buffers; bit-identical to [`StringSimilarity::sim`].
    pub fn sim_with(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        let j = scratch.jaro(a, b);
        if j <= self.boost_threshold {
            return j;
        }
        let prefix = a
            .chars()
            .zip(b.chars())
            .take(self.max_prefix)
            .take_while(|(x, y)| x == y)
            .count();
        clamp01(j + prefix as f64 * self.prefix_scale * (1.0 - j))
    }
}

impl StringSimilarity for JaroWinkler {
    fn sim(&self, a: &str, b: &str) -> f64 {
        with_thread_scratch(|s| self.sim_with(s, a, b))
    }
}

impl ScratchSimilarity for JaroWinkler {
    fn sim_scratch(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        self.sim_with(scratch, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn jaro_identical_and_empty() {
        let j = Jaro::new();
        assert_eq!(j.sim("", ""), 1.0);
        assert_eq!(j.sim("ABC", "ABC"), 1.0);
        assert_eq!(j.sim("", "ABC"), 0.0);
    }

    #[test]
    fn jaro_textbook_values() {
        let j = Jaro::new();
        approx(j.sim("MARTHA", "MARHTA"), 0.944);
        approx(j.sim("DIXON", "DICKSONX"), 0.767);
        approx(j.sim("DWAYNE", "DUANE"), 0.822);
    }

    #[test]
    fn jaro_no_common_chars() {
        assert_eq!(Jaro::new().sim("ABC", "XYZ"), 0.0);
    }

    #[test]
    fn jaro_winkler_textbook_values() {
        let jw = JaroWinkler::new();
        approx(jw.sim("MARTHA", "MARHTA"), 0.961);
        approx(jw.sim("DIXON", "DICKSONX"), 0.813);
        approx(jw.sim("DWAYNE", "DUANE"), 0.840);
    }

    #[test]
    fn jaro_winkler_prefix_boost_only_above_threshold() {
        let jw = JaroWinkler::new();
        let j = Jaro::new();
        // Low-similarity pair: no boost even with shared first letter.
        let pair = ("AXXXXX", "AYYYYY");
        assert_eq!(jw.sim(pair.0, pair.1), j.sim(pair.0, pair.1));
    }

    #[test]
    fn jaro_winkler_symmetric() {
        let jw = JaroWinkler::new();
        for (a, b) in [("JONES", "JOHNSON"), ("MASSEY", "MASSIE"), ("ABROMS", "ABRAMS")] {
            assert!((jw.sim(a, b) - jw.sim(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn jaro_winkler_bounded() {
        let jw = JaroWinkler::new();
        for (a, b) in [("AAAA", "AAAA"), ("AAAA", "AAAB"), ("A", "B"), ("", "")] {
            let s = jw.sim(a, b);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
