//! Tokenization helpers shared by the hybrid similarity measures.

/// Split a string into non-empty whitespace-separated tokens.
pub fn tokens(s: &str) -> Vec<&str> {
    s.split_whitespace().filter(|t| !t.is_empty()).collect()
}

/// Split a string into tokens, treating hyphens and slashes as
/// separators in addition to whitespace. Useful for addresses and
/// double-barrelled names.
pub fn tokens_extended(s: &str) -> Vec<&str> {
    s.split(|c: char| c.is_whitespace() || c == '-' || c == '/')
        .filter(|t| !t.is_empty())
        .collect()
}

/// Whether two strings consist of the same multiset of tokens (order
/// ignored). Used by the token-transposition irregularity detector.
pub fn same_token_multiset(a: &str, b: &str) -> bool {
    let mut ta = tokens(a);
    let mut tb = tokens(b);
    ta.sort_unstable();
    tb.sort_unstable();
    ta == tb
}

/// Remove every non-alphanumeric character from a string, preserving
/// character order. Used by formatting-difference detectors.
pub fn strip_non_alnum(s: &str) -> String {
    s.chars().filter(|c| c.is_alphanumeric()).collect()
}

/// Remove every non-letter character (digits too). Used by the phonetic
/// irregularity detector.
pub fn strip_non_alpha(s: &str) -> String {
    s.chars().filter(|c| c.is_alphabetic()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_basic() {
        assert_eq!(tokens("  MARY  ANN "), vec!["MARY", "ANN"]);
        assert!(tokens("   ").is_empty());
        assert!(tokens("").is_empty());
    }

    #[test]
    fn tokens_extended_splits_hyphens() {
        assert_eq!(tokens_extended("SMITH-JONES"), vec!["SMITH", "JONES"]);
        assert_eq!(tokens_extended("A/B C"), vec!["A", "B", "C"]);
    }

    #[test]
    fn same_token_multiset_detects_transposition() {
        assert!(same_token_multiset("ANH THI", "THI ANH"));
        assert!(!same_token_multiset("ANH THI", "ANH"));
        assert!(!same_token_multiset("ANH ANH", "ANH"));
        assert!(same_token_multiset("", "   "));
    }

    #[test]
    fn strip_helpers() {
        assert_eq!(strip_non_alnum("O'BRIEN-3"), "OBRIEN3");
        assert_eq!(strip_non_alpha("O'BRIEN-3"), "OBRIEN");
        assert_eq!(strip_non_alnum(""), "");
    }
}
