//! Maximum-weight 1:1 assignment (Hungarian algorithm).
//!
//! The Generalized Jaccard Coefficient and the paper's name matcher
//! (Section 6.5: "we matched every combination of them and used the 1:1
//! matching with the highest similarity") need an exact maximum-weight
//! bipartite matching. Token sets are tiny (person names have ≤ 4
//! tokens), so the `O(n³)` Hungarian algorithm is more than fast enough
//! while avoiding the pitfalls of greedy matching.

/// Result of a maximum-weight assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `pairs[k] = (i, j)` assigns row `i` to column `j`.
    pub pairs: Vec<(usize, usize)>,
    /// Sum of `weights[i][j]` over all assigned pairs.
    pub total: f64,
}

/// Reusable working set for the Hungarian algorithm: potentials,
/// matching state and the output pair list. Owned by
/// [`crate::scratch::Scratch`] so repeated assignments allocate
/// nothing after warm-up.
#[derive(Debug, Default)]
pub struct AssignScratch {
    u: Vec<f64>,
    v: Vec<f64>,
    matched_col: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
    /// Assigned `(row, col)` pairs of the most recent run, sorted.
    pub(crate) pairs: Vec<(usize, usize)>,
}

impl AssignScratch {
    /// The `(row, col)` pairs assigned by the most recent run, sorted
    /// by row.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }
}

/// Hungarian algorithm over an abstract weight accessor with reusable
/// buffers. `weight(i, j)` must be finite, non-negative and cheap (it
/// is consulted `O(n³)` times — precompute a matrix for expensive
/// weights). Fills `scratch.pairs` (sorted by row) and returns the
/// total assigned weight. Produces exactly the pairs
/// [`max_weight_assignment`] would.
pub(crate) fn assign_core(
    scratch: &mut AssignScratch,
    n: usize,
    m: usize,
    weight: impl Fn(usize, usize) -> f64,
) -> f64 {
    scratch.pairs.clear();
    if n == 0 || m == 0 {
        return 0.0;
    }

    // The potential-based Hungarian algorithm minimizes cost over a matrix
    // with rows <= cols; we maximize weight by negating. Transpose when
    // there are more rows than columns.
    let transpose = n > m;
    let (rows, cols) = if transpose { (m, n) } else { (n, m) };
    let cost = |i: usize, j: usize| -> f64 {
        if transpose {
            -weight(j, i)
        } else {
            -weight(i, j)
        }
    };

    const INF: f64 = f64::INFINITY;
    // 1-indexed potentials and matching arrays, as in the classic
    // formulation.
    scratch.u.clear();
    scratch.u.resize(rows + 1, 0.0);
    scratch.v.clear();
    scratch.v.resize(cols + 1, 0.0);
    scratch.matched_col.clear();
    scratch.matched_col.resize(cols + 1, 0); // column -> row (0 = free)
    scratch.way.clear();
    scratch.way.resize(cols + 1, 0);
    let u = &mut scratch.u;
    let v = &mut scratch.v;
    let matched_col = &mut scratch.matched_col;
    let way = &mut scratch.way;

    for i in 1..=rows {
        matched_col[0] = i;
        let mut j0 = 0usize;
        scratch.minv.clear();
        scratch.minv.resize(cols + 1, INF);
        scratch.used.clear();
        scratch.used.resize(cols + 1, false);
        let minv = &mut scratch.minv;
        let used = &mut scratch.used;
        loop {
            used[j0] = true;
            let i0 = matched_col[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=cols {
                if used[j] {
                    u[matched_col[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if matched_col[j0] == 0 {
                break;
            }
        }
        // Augment along the found path.
        loop {
            let j1 = way[j0];
            matched_col[j0] = matched_col[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut total = 0.0;
    #[allow(clippy::needless_range_loop)] // j is also the column id, not just an index
    for j in 1..=cols {
        let i = matched_col[j];
        if i != 0 {
            let (ri, cj) = if transpose { (j - 1, i - 1) } else { (i - 1, j - 1) };
            scratch.pairs.push((ri, cj));
            total += weight(ri, cj);
        }
    }
    scratch.pairs.sort_unstable();
    total
}

/// Compute a maximum-weight 1:1 assignment for a (possibly rectangular)
/// weight matrix `weights[i][j] ≥ 0`.
///
/// Every row and column is matched at most once; `min(rows, cols)` pairs
/// are produced. Weights must be finite and non-negative.
///
/// # Panics
///
/// Panics if rows have inconsistent lengths or any weight is negative or
/// non-finite.
pub fn max_weight_assignment(weights: &[Vec<f64>]) -> Assignment {
    let n = weights.len();
    if n == 0 {
        return Assignment { pairs: Vec::new(), total: 0.0 };
    }
    let m = weights[0].len();
    for row in weights {
        assert_eq!(row.len(), m, "ragged weight matrix");
        for &w in row {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
        }
    }
    let mut scratch = AssignScratch::default();
    let total = assign_core(&mut scratch, n, m, |i, j| weights[i][j]);
    Assignment { pairs: scratch.pairs, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(weights: &[Vec<f64>]) -> f64 {
        // Exhaustive search over all injections rows -> cols.
        let n = weights.len();
        if n == 0 {
            return 0.0;
        }
        let m = weights[0].len();
        fn rec(weights: &[Vec<f64>], i: usize, used: &mut Vec<bool>) -> f64 {
            if i == weights.len() {
                return 0.0;
            }
            let m = used.len();
            // Option 1: leave row i unmatched.
            let mut best = rec(weights, i + 1, used);
            // Option 2: match row i to any free column.
            for j in 0..m {
                if !used[j] {
                    used[j] = true;
                    let s = weights[i][j] + rec(weights, i + 1, used);
                    used[j] = false;
                    best = best.max(s);
                }
            }
            best
        }
        let mut used = vec![false; m];
        rec(weights, 0, &mut used)
    }

    #[test]
    fn empty_matrix() {
        let a = max_weight_assignment(&[]);
        assert!(a.pairs.is_empty());
        assert_eq!(a.total, 0.0);
    }

    #[test]
    fn single_cell() {
        let a = max_weight_assignment(&[vec![0.7]]);
        assert_eq!(a.pairs, vec![(0, 0)]);
        assert!((a.total - 0.7).abs() < 1e-12);
    }

    #[test]
    fn square_prefers_diagonal_swap() {
        // Greedy would take (0,0)=0.9 then be forced into (1,1)=0.0,
        // total 0.9. Optimal is (0,1)+(1,0) = 0.8 + 0.8 = 1.6.
        let w = vec![vec![0.9, 0.8], vec![0.8, 0.0]];
        let a = max_weight_assignment(&w);
        assert_eq!(a.pairs, vec![(0, 1), (1, 0)]);
        assert!((a.total - 1.6).abs() < 1e-12);
    }

    #[test]
    fn rectangular_wide() {
        let w = vec![vec![0.1, 0.9, 0.2]];
        let a = max_weight_assignment(&w);
        assert_eq!(a.pairs, vec![(0, 1)]);
    }

    #[test]
    fn rectangular_tall() {
        let w = vec![vec![0.1], vec![0.9], vec![0.2]];
        let a = max_weight_assignment(&w);
        assert_eq!(a.pairs, vec![(1, 0)]);
        assert!((a.total - 0.9).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        // Deterministic pseudo-random matrices via a simple LCG.
        let mut state = 0x2545F491u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for n in 1..=4usize {
            for m in 1..=4usize {
                for _ in 0..20 {
                    let w: Vec<Vec<f64>> =
                        (0..n).map(|_| (0..m).map(|_| next()).collect()).collect();
                    let a = max_weight_assignment(&w);
                    let bf = brute_force(&w);
                    assert!(
                        (a.total - bf).abs() < 1e-9,
                        "n={n} m={m}: hungarian={} brute={bf}",
                        a.total
                    );
                    // 1:1 property.
                    let mut ri: Vec<usize> = a.pairs.iter().map(|p| p.0).collect();
                    let mut cj: Vec<usize> = a.pairs.iter().map(|p| p.1).collect();
                    ri.sort_unstable();
                    ri.dedup();
                    cj.sort_unstable();
                    cj.dedup();
                    assert_eq!(ri.len(), a.pairs.len());
                    assert_eq!(cj.len(), a.pairs.len());
                    assert_eq!(a.pairs.len(), n.min(m));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_panics() {
        let _ = max_weight_assignment(&[vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_panics() {
        let _ = max_weight_assignment(&[vec![-1.0]]);
    }
}
