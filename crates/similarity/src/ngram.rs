//! q-gram based token similarity (Jaccard over n-gram sets).
//!
//! The paper's third matcher (Section 6.5) is "the Jaccard Similarity
//! using trigrams". [`NgramJaccard`] reproduces it: both strings are
//! decomposed into their (optionally padded) q-gram multisets and the
//! Jaccard coefficient of the two sets is returned.

use std::collections::HashMap;

use crate::{clamp01, StringSimilarity};

/// Jaccard similarity over q-gram multisets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NgramJaccard {
    /// Gram size (`3` for trigrams).
    pub q: usize,
    /// Pad the string with `q - 1` sentinel characters on each side so
    /// that leading/trailing characters carry the same weight as inner
    /// ones. Padding uses `#` (begin) and `$` (end), which do not occur in
    /// the upper-cased voter data.
    pub padded: bool,
}

impl Default for NgramJaccard {
    fn default() -> Self {
        Self { q: 3, padded: true }
    }
}

impl NgramJaccard {
    /// Trigram Jaccard with padding — the paper's configuration.
    pub fn trigram() -> Self {
        Self::default()
    }

    /// Custom gram size.
    pub fn new(q: usize, padded: bool) -> Self {
        assert!(q >= 1, "gram size must be positive");
        Self { q, padded }
    }

    /// Produce the q-gram multiset of `s` as a map gram → count.
    pub fn grams(&self, s: &str) -> HashMap<Vec<char>, usize> {
        let mut chars: Vec<char> = Vec::new();
        if self.padded {
            chars.extend(std::iter::repeat_n('#', self.q - 1));
        }
        chars.extend(s.chars());
        if self.padded {
            chars.extend(std::iter::repeat_n('$', self.q - 1));
        }
        let mut out: HashMap<Vec<char>, usize> = HashMap::new();
        if chars.len() < self.q {
            if !chars.is_empty() {
                *out.entry(chars).or_insert(0) += 1;
            }
            return out;
        }
        for w in chars.windows(self.q) {
            *out.entry(w.to_vec()).or_insert(0) += 1;
        }
        out
    }
}

impl StringSimilarity for NgramJaccard {
    fn sim(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        let ga = self.grams(a);
        let gb = self.grams(b);
        if ga.is_empty() && gb.is_empty() {
            return 1.0;
        }
        let mut inter = 0usize;
        let mut total_a = 0usize;
        for (g, &ca) in &ga {
            total_a += ca;
            if let Some(&cb) = gb.get(g) {
                inter += ca.min(cb);
            }
        }
        let total_b: usize = gb.values().sum();
        let union = total_a + total_b - inter;
        if union == 0 {
            return 1.0;
        }
        clamp01(inter as f64 / union as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_are_one() {
        let t = NgramJaccard::trigram();
        assert_eq!(t.sim("NIGHT", "NIGHT"), 1.0);
        assert_eq!(t.sim("", ""), 1.0);
    }

    #[test]
    fn disjoint_strings_are_zero() {
        let t = NgramJaccard::trigram();
        assert_eq!(t.sim("AAAA", "BBBB"), 0.0);
    }

    #[test]
    fn empty_vs_nonempty_is_zero() {
        let t = NgramJaccard::trigram();
        assert_eq!(t.sim("", "ABC"), 0.0);
    }

    #[test]
    fn similar_strings_are_high() {
        let t = NgramJaccard::trigram();
        let s = t.sim("WILLIAMS", "WILLIAMSON");
        assert!(s > 0.5, "{s}");
        assert!(s < 1.0);
    }

    #[test]
    fn padding_weights_endpoints() {
        let padded = NgramJaccard::new(3, true);
        let unpadded = NgramJaccard::new(3, false);
        // A leading-character typo hurts the padded variant more because
        // the prefix contributes three grams instead of one.
        let sp = padded.sim("MILLER", "TILLER");
        let su = unpadded.sim("MILLER", "TILLER");
        assert!(sp < su, "{sp} vs {su}");
    }

    #[test]
    fn grams_counts_multiset() {
        let t = NgramJaccard::new(2, false);
        let g = t.grams("AAA");
        assert_eq!(g.get(&vec!['A', 'A']), Some(&2));
    }

    #[test]
    fn short_strings_handled() {
        let t = NgramJaccard::new(3, false);
        // Shorter than q without padding: compared as single chunks.
        assert_eq!(t.sim("AB", "AB"), 1.0);
        assert_eq!(t.sim("AB", "BA"), 0.0);
    }

    #[test]
    fn symmetric() {
        let t = NgramJaccard::trigram();
        for (a, b) in [("JACCARD", "JACARD"), ("SMITH", "SMYTHE"), ("X", "")] {
            assert!((t.sim(a, b) - t.sim(b, a)).abs() < 1e-12);
        }
    }
}
