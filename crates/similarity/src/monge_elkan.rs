//! Monge–Elkan hybrid similarity.
//!
//! The heterogeneity scorer (Section 6.3) uses Monge–Elkan with
//! Damerau–Levenshtein as the internal token measure because the
//! Generalized Jaccard Coefficient is "computationally too expensive when
//! working on 90 attributes". Monge–Elkan is asymmetric, so — following
//! the paper's footnote 13 — [`MongeElkan`] computes it in both
//! directions and averages.

use crate::scratch::{self, Scratch};
use crate::{clamp01, ScratchSimilarity, StringSimilarity};

/// Symmetrized Monge–Elkan similarity with inner measure `S`.
///
/// The one-directional score is
/// `ME(A → B) = (1/|A|) Σ_{a ∈ A} max_{b ∈ B} sim(a, b)`;
/// the reported score is `(ME(A → B) + ME(B → A)) / 2`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MongeElkan<S> {
    inner: S,
}

impl<S: StringSimilarity> MongeElkan<S> {
    /// Create the symmetrized measure.
    pub fn new(inner: S) -> Self {
        Self { inner }
    }

    /// One-directional Monge–Elkan from `a`'s tokens to `b`'s tokens.
    pub fn directed(&self, a: &[&str], b: &[&str]) -> f64 {
        if a.is_empty() {
            return f64::from(b.is_empty());
        }
        if b.is_empty() {
            return 0.0;
        }
        let sum: f64 = a
            .iter()
            .map(|ta| {
                b.iter()
                    .map(|tb| self.inner.sim(ta, tb))
                    .fold(0.0f64, f64::max)
            })
            .sum();
        clamp01(sum / a.len() as f64)
    }

    /// Symmetric score over already-tokenized inputs.
    pub fn sim_tokens(&self, a: &[&str], b: &[&str]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        clamp01((self.directed(a, b) + self.directed(b, a)) / 2.0)
    }
}

impl<S: ScratchSimilarity> MongeElkan<S> {
    /// Allocation-free [`MongeElkan::directed`]; bit-identical scores.
    pub fn directed_with(&self, scratch: &mut Scratch, a: &[&str], b: &[&str]) -> f64 {
        if a.is_empty() {
            return f64::from(b.is_empty());
        }
        if b.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for ta in a {
            let mut best = 0.0f64;
            for tb in b {
                best = best.max(self.inner.sim_scratch(scratch, ta, tb));
            }
            sum += best;
        }
        clamp01(sum / a.len() as f64)
    }

    /// Allocation-free [`MongeElkan::sim_tokens`]; bit-identical scores.
    pub fn sim_tokens_with(&self, scratch: &mut Scratch, a: &[&str], b: &[&str]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        clamp01((self.directed_with(scratch, a, b) + self.directed_with(scratch, b, a)) / 2.0)
    }

    /// Allocation-free [`StringSimilarity::sim`]: tokenizes into the
    /// scratch's token-range buffers instead of allocating a token
    /// vector per call. Bit-identical scores.
    pub fn sim_with(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        let mut ta = std::mem::take(&mut scratch.tokens_a);
        let mut tb = std::mem::take(&mut scratch.tokens_b);
        scratch::tokenize_into(a, &mut ta);
        scratch::tokenize_into(b, &mut tb);
        let out = if ta.is_empty() && tb.is_empty() {
            1.0
        } else {
            let ab = self.directed_ranges(scratch, a, &ta, b, &tb);
            let ba = self.directed_ranges(scratch, b, &tb, a, &ta);
            clamp01((ab + ba) / 2.0)
        };
        scratch.tokens_a = ta;
        scratch.tokens_b = tb;
        out
    }

    /// [`MongeElkan::directed`] over token byte ranges into the
    /// original strings.
    fn directed_ranges(
        &self,
        scratch: &mut Scratch,
        sa: &str,
        ta: &[(usize, usize)],
        sb: &str,
        tb: &[(usize, usize)],
    ) -> f64 {
        if ta.is_empty() {
            return f64::from(tb.is_empty());
        }
        if tb.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for &(s0, e0) in ta {
            let mut best = 0.0f64;
            for &(s1, e1) in tb {
                best = best.max(self.inner.sim_scratch(scratch, &sa[s0..e0], &sb[s1..e1]));
            }
            sum += best;
        }
        clamp01(sum / ta.len() as f64)
    }
}

impl<S: ScratchSimilarity> ScratchSimilarity for MongeElkan<S> {
    fn sim_scratch(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        self.sim_with(scratch, a, b)
    }
}

impl<S: StringSimilarity> StringSimilarity for MongeElkan<S> {
    fn sim(&self, a: &str, b: &str) -> f64 {
        let ta = crate::token::tokens(a);
        let tb = crate::token::tokens(b);
        self.sim_tokens(&ta, &tb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::damerau::DamerauLevenshtein;

    fn me() -> MongeElkan<DamerauLevenshtein> {
        MongeElkan::new(DamerauLevenshtein::new())
    }

    #[test]
    fn identical_is_one() {
        assert_eq!(me().sim("PAUL A JONES", "PAUL A JONES"), 1.0);
        assert_eq!(me().sim("", ""), 1.0);
    }

    #[test]
    fn empty_vs_nonempty_is_zero() {
        assert_eq!(me().sim("", "PAUL"), 0.0);
    }

    #[test]
    fn token_order_invariant() {
        let m = me();
        assert!((m.sim("PAUL JONES", "JONES PAUL") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_directions_differ() {
        let m = me();
        let a = ["PAUL"];
        let b = ["PAUL", "ZZZZZZ"];
        let ab = m.directed(&a, &b);
        let ba = m.directed(&b, &a);
        assert!((ab - 1.0).abs() < 1e-12);
        assert!(ba < 1.0);
        // Symmetrized score is the average.
        assert!((m.sim_tokens(&a, &b) - (ab + ba) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn symmetrized_is_symmetric() {
        let m = me();
        for (a, b) in [
            ("MARY ANN SMITH", "SMITH MARYANN"),
            ("COMPTR SCI DEPT", "COMPUTER SCIENCE DEPARTMENT"),
            ("A", "A B C"),
        ] {
            assert!((m.sim(a, b) - m.sim(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn typo_in_token_scores_high() {
        let s = me().sim("DEBRA OEHRIE", "DEBRA OEHRLE");
        assert!(s > 0.9, "{s}");
    }

    #[test]
    fn unrelated_scores_low() {
        let s = me().sim("FIELDS MARY", "BETHEA JOSHUA");
        assert!(s < 0.45, "{s}");
    }
}
