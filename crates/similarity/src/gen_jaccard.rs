//! Generalized Jaccard Coefficient — a hybrid (token-level) measure.
//!
//! The paper computes its name plausibility (Section 6.2) as
//! `GenJacc_DamLev(name(o1), name(o2))` where the token sets are the
//! (first, middle, last) name triples and the inner token measure is the
//! extended Damerau–Levenshtein similarity.
//!
//! Given token sequences `A` and `B` and an inner similarity `sim`, the
//! Generalized Jaccard Coefficient finds a maximum-weight 1:1 matching
//! `M ⊆ A × B` (only keeping pairs with `sim ≥ threshold`) and scores
//!
//! ```text
//! GJ(A, B) = Σ_{(a,b) ∈ M} sim(a, b)  /  (|A| + |B| − |M|)
//! ```
//!
//! With a threshold of `0` and exact matching this degrades gracefully to
//! the classic Jaccard coefficient when `sim` is binary equality.

use crate::assignment::{self, max_weight_assignment};
use crate::scratch::{self, Scratch};
use crate::{clamp01, ScratchSimilarity, StringSimilarity};

/// Generalized Jaccard Coefficient over whitespace tokens with inner
/// measure `S`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralizedJaccard<S> {
    inner: S,
    /// Token pairs with inner similarity below this threshold are not
    /// matched (treated as unrelated tokens). `0.0` keeps every pair.
    pub threshold: f64,
}

impl<S: StringSimilarity> GeneralizedJaccard<S> {
    /// Create with a match threshold of `0.0` (all pairs eligible).
    pub fn new(inner: S) -> Self {
        Self { inner, threshold: 0.0 }
    }

    /// Create with a custom token match threshold.
    pub fn with_threshold(inner: S, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold));
        Self { inner, threshold }
    }

    /// Score two already-tokenized inputs.
    pub fn sim_tokens(&self, a: &[&str], b: &[&str]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let weights: Vec<Vec<f64>> = a
            .iter()
            .map(|ta| b.iter().map(|tb| self.inner.sim(ta, tb)).collect())
            .collect();
        let assignment = max_weight_assignment(&weights);
        let mut total = 0.0;
        let mut matched = 0usize;
        for &(i, j) in &assignment.pairs {
            let w = weights[i][j];
            if w >= self.threshold && w > 0.0 {
                total += w;
                matched += 1;
            }
        }
        let denom = (a.len() + b.len() - matched) as f64;
        if denom <= 0.0 {
            return 1.0;
        }
        clamp01(total / denom)
    }
}

impl<S: ScratchSimilarity> GeneralizedJaccard<S> {
    /// Allocation-free [`GeneralizedJaccard::sim_tokens`]: the weight
    /// matrix lives flattened in the scratch and the Hungarian
    /// algorithm reuses its working set. Bit-identical scores.
    pub fn sim_tokens_with(&self, scratch: &mut Scratch, a: &[&str], b: &[&str]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let mut weights = std::mem::take(&mut scratch.weights);
        weights.clear();
        for ta in a {
            for tb in b {
                weights.push(self.inner.sim_scratch(scratch, ta, tb));
            }
        }
        let score = self.score_weights(scratch, &weights, a.len(), b.len());
        scratch.weights = weights;
        score
    }

    /// Allocation-free [`StringSimilarity::sim`]: tokenizes into the
    /// scratch's token-range buffers. Bit-identical scores.
    pub fn sim_with(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        let mut ta = std::mem::take(&mut scratch.tokens_a);
        let mut tb = std::mem::take(&mut scratch.tokens_b);
        scratch::tokenize_into(a, &mut ta);
        scratch::tokenize_into(b, &mut tb);
        let out = if ta.is_empty() && tb.is_empty() {
            1.0
        } else if ta.is_empty() || tb.is_empty() {
            0.0
        } else {
            let mut weights = std::mem::take(&mut scratch.weights);
            weights.clear();
            for &(s0, e0) in &ta {
                for &(s1, e1) in &tb {
                    weights.push(self.inner.sim_scratch(scratch, &a[s0..e0], &b[s1..e1]));
                }
            }
            let score = self.score_weights(scratch, &weights, ta.len(), tb.len());
            scratch.weights = weights;
            score
        };
        scratch.tokens_a = ta;
        scratch.tokens_b = tb;
        out
    }

    /// Shared tail of the scratch paths: run the assignment over the
    /// flattened `rows × cols` weight matrix and apply the threshold
    /// and Jaccard normalization exactly as `sim_tokens` does.
    fn score_weights(&self, scratch: &mut Scratch, weights: &[f64], rows: usize, cols: usize) -> f64 {
        assignment::assign_core(&mut scratch.assign, rows, cols, |i, j| weights[i * cols + j]);
        let mut total = 0.0;
        let mut matched = 0usize;
        for &(i, j) in scratch.assign.pairs() {
            let w = weights[i * cols + j];
            if w >= self.threshold && w > 0.0 {
                total += w;
                matched += 1;
            }
        }
        let denom = (rows + cols - matched) as f64;
        if denom <= 0.0 {
            return 1.0;
        }
        clamp01(total / denom)
    }
}

impl<S: ScratchSimilarity> ScratchSimilarity for GeneralizedJaccard<S> {
    fn sim_scratch(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        self.sim_with(scratch, a, b)
    }
}

impl<S: StringSimilarity> StringSimilarity for GeneralizedJaccard<S> {
    fn sim(&self, a: &str, b: &str) -> f64 {
        let ta = crate::token::tokens(a);
        let tb = crate::token::tokens(b);
        self.sim_tokens(&ta, &tb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::damerau::{DamerauLevenshtein, ExtendedDamerauLevenshtein};

    /// Binary equality inner measure — reduces GJ to classic Jaccard on
    /// distinct tokens.
    struct Eq01;
    impl StringSimilarity for Eq01 {
        fn sim(&self, a: &str, b: &str) -> f64 {
            f64::from(a == b)
        }
    }

    #[test]
    fn reduces_to_classic_jaccard_with_binary_inner() {
        let gj = GeneralizedJaccard::new(Eq01);
        // {A,B} vs {B,C}: intersection 1, union 3.
        assert!((gj.sim("A B", "B C") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(gj.sim("A B", "A B"), 1.0);
        assert_eq!(gj.sim("A", "B"), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let gj = GeneralizedJaccard::new(DamerauLevenshtein::new());
        assert_eq!(gj.sim("", ""), 1.0);
        assert_eq!(gj.sim("", "X"), 0.0);
        assert_eq!(gj.sim("   ", "   "), 1.0);
    }

    #[test]
    fn token_order_does_not_matter() {
        let gj = GeneralizedJaccard::new(DamerauLevenshtein::new());
        let s1 = gj.sim("MARY ANN SMITH", "SMITH MARY ANN");
        assert!((s1 - 1.0).abs() < 1e-12, "{s1}");
    }

    #[test]
    fn name_confusion_scores_high_with_extended_inner() {
        // Figure 3 scenario: name values mixed up between attributes plus
        // one typo; GJ with extended DamLev should stay high.
        let gj = GeneralizedJaccard::new(ExtendedDamerauLevenshtein::new());
        let s = gj.sim_tokens(
            &["WILLIAMS", "DEBRA", "OEHRIE"],
            &["OEHRLE", "DEBRA", "WILLIAMS"],
        );
        assert!(s > 0.9, "{s}");
    }

    #[test]
    fn threshold_drops_weak_matches() {
        let strict = GeneralizedJaccard::with_threshold(DamerauLevenshtein::new(), 0.8);
        let lax = GeneralizedJaccard::new(DamerauLevenshtein::new());
        let a = "ABCDEF";
        let b = "UVWXYZ";
        assert_eq!(strict.sim(a, b), 0.0);
        assert!(lax.sim(a, b) >= 0.0);
    }

    #[test]
    fn unequal_token_counts_penalized() {
        let gj = GeneralizedJaccard::new(Eq01);
        // {A} vs {A,B}: 1 match / (1 + 2 - 1) = 0.5.
        assert!((gj.sim("A", "A B") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let gj = GeneralizedJaccard::new(DamerauLevenshtein::new());
        for (a, b) in [("MARY ANN", "ANN MARIE"), ("JOHN", "JON H"), ("A B C", "C B")] {
            assert!((gj.sim(a, b) - gj.sim(b, a)).abs() < 1e-9);
        }
    }
}
