//! String, token and record similarity measures for duplicate detection.
//!
//! This crate implements every similarity measure used by the EDBT 2021
//! paper *"Generating Realistic Test Datasets for Duplicate Detection at
//! Scale Using Historical Voter Data"*:
//!
//! * [`damerau`] — Damerau–Levenshtein distance and similarity, plus the
//!   paper's *extended* variant that treats missing values and prefixes as
//!   perfect matches (Section 6.2).
//! * [`jaro`] — Jaro and Jaro–Winkler similarity.
//! * [`ngram`] — q-gram (default: trigram) Jaccard similarity.
//! * [`monge_elkan`] — the (symmetrized) Monge–Elkan hybrid measure.
//! * [`gen_jaccard`] — the Generalized Jaccard Coefficient with an exact
//!   maximum-weight 1:1 token matching (via the Hungarian algorithm in
//!   [`assignment`]).
//! * [`soundex`] — American Soundex phonetic codes.
//! * [`entropy`] — Shannon-entropy based attribute uniqueness weighting
//!   (Section 6.3).
//! * [`token`] — whitespace tokenization helpers shared by the hybrid
//!   measures.
//!
//! All measures return scores in `[0, 1]` where `1` means identical. They
//! operate on `char` sequences, so multi-byte UTF-8 input is handled
//! correctly.
//!
//! # Example
//!
//! ```
//! use nc_similarity::{StringSimilarity, damerau::DamerauLevenshtein, jaro::JaroWinkler};
//!
//! let dl = DamerauLevenshtein::new();
//! assert!(dl.sim("JONATHAN", "JONATHAN") == 1.0);
//! assert!(dl.sim("JONATHAN", "JONATHAM") > 0.8);
//!
//! let jw = JaroWinkler::default();
//! assert!(jw.sim("MARTHA", "MARHTA") > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod damerau;
pub mod entropy;
pub mod gen_jaccard;
pub mod jaro;
pub mod monge_elkan;
pub mod ngram;
pub mod scratch;
pub mod soundex;
pub mod token;

pub use scratch::Scratch;

/// A normalized similarity measure over strings.
///
/// Implementations must return values in `[0, 1]`, with `1.0` meaning the
/// two inputs are considered identical by the measure.
pub trait StringSimilarity {
    /// Similarity between `a` and `b` in `[0, 1]`.
    fn sim(&self, a: &str, b: &str) -> f64;
}

/// A similarity measure aware of missing (NULL) values.
///
/// The paper's plausibility scoring (Section 6.2) demands that comparisons
/// against a missing value yield `1.0` ("no evidence to mistrust the
/// data"). Measures used there implement this trait.
pub trait OptionalSimilarity {
    /// Similarity between two possibly-missing values in `[0, 1]`.
    fn sim_opt(&self, a: Option<&str>, b: Option<&str>) -> f64;
}

impl<T: StringSimilarity> OptionalSimilarity for T {
    /// Default lifting: any comparison involving a missing value is `1.0`.
    fn sim_opt(&self, a: Option<&str>, b: Option<&str>) -> f64 {
        match (a, b) {
            (Some(a), Some(b)) => self.sim(a, b),
            _ => 1.0,
        }
    }
}

/// A similarity measure with an allocation-free entry point.
///
/// `sim_scratch` must return exactly the same value as
/// [`StringSimilarity::sim`] — the scratch only changes *where*
/// working memory lives, never the arithmetic. Implemented by the
/// kernels on the scoring hot path (Damerau–Levenshtein and its
/// extended variant, Jaro, Jaro–Winkler, and the hybrid measures
/// built from them).
pub trait ScratchSimilarity: StringSimilarity {
    /// Similarity between `a` and `b` using caller-provided buffers.
    fn sim_scratch(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64;
}

thread_local! {
    static THREAD_SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::new());
}

/// Run `f` with this thread's shared scratch. The plain `sim()`
/// wrappers route through here so every existing call site becomes
/// allocation-free after warm-up; downstream scorers can use it the
/// same way to offer scratch-based fast paths behind unchanged
/// signatures. Falls back to a fresh scratch if the thread-local is
/// already borrowed (a custom inner measure re-entering `sim()`
/// mid-kernel) rather than panicking.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut Scratch::new()),
    })
}

/// Clamp a floating-point score into `[0, 1]`, mapping NaN to `0`.
#[inline]
pub(crate) fn clamp01(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::damerau::DamerauLevenshtein;

    #[test]
    fn optional_lifting_treats_missing_as_match() {
        let dl = DamerauLevenshtein::new();
        assert_eq!(dl.sim_opt(None, Some("ABC")), 1.0);
        assert_eq!(dl.sim_opt(Some("ABC"), None), 1.0);
        assert_eq!(dl.sim_opt(None, None), 1.0);
        assert_eq!(dl.sim_opt(Some("ABC"), Some("ABC")), 1.0);
    }

    #[test]
    fn clamp01_handles_edge_values() {
        assert_eq!(clamp01(f64::NAN), 0.0);
        assert_eq!(clamp01(-0.5), 0.0);
        assert_eq!(clamp01(1.5), 1.0);
        assert_eq!(clamp01(0.25), 0.25);
    }
}
