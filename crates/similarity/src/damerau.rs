//! Damerau–Levenshtein edit distance and derived similarities.
//!
//! Two variants are provided:
//!
//! * [`DamerauLevenshtein`] — the classic *optimal string alignment*
//!   distance (insertions, deletions, substitutions and adjacent
//!   transpositions, no substring edited twice). This is the definition
//!   used throughout the record-linkage literature when speaking of a
//!   "Damerau-Levenshtein distance of 1" for typo detection, and it is the
//!   variant the paper uses for its typo irregularity detector
//!   (Section 6.4).
//! * [`ExtendedDamerauLevenshtein`] — the paper's Section 6.2 extension for
//!   plausibility scoring: comparisons against missing values score `1.0`
//!   and a value that is a *prefix* of the other (an abbreviation) also
//!   scores `1.0`, because neither contradicts the duplicate assumption.

use crate::scratch::Scratch;
use crate::{clamp01, with_thread_scratch, OptionalSimilarity, ScratchSimilarity, StringSimilarity};

/// Optimal-string-alignment Damerau–Levenshtein distance between two
/// `char` slices.
///
/// Runs in `O(|a| * |b|)` time and `O(min(|a|, |b|))`-ish space (three
/// rolling rows).
pub fn osa_distance(a: &[char], b: &[char]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let m = b.len();

    // Three rolling rows: two previous rows are needed for transpositions.
    let mut prev2: Vec<usize> = vec![0; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur: Vec<usize> = vec![0; m + 1];

    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let mut d = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
            if i > 0 && j > 0 && ca == b[j - 1] && a[i - 1] == cb {
                d = d.min(prev2[j - 1] + 1);
            }
            cur[j + 1] = d;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Convenience wrapper over [`osa_distance`] for `&str` inputs.
pub fn distance(a: &str, b: &str) -> usize {
    with_thread_scratch(|s| distance_with(s, a, b))
}

/// Allocation-free variant of [`distance`]: reuses the scratch's DP
/// rows, taking the ASCII byte path when both inputs are ASCII.
pub fn distance_with(scratch: &mut Scratch, a: &str, b: &str) -> usize {
    scratch.osa(a, b)
}

/// Normalized Damerau–Levenshtein similarity:
/// `1 - distance / max(|a|, |b|)`, and `1.0` when both strings are empty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DamerauLevenshtein;

impl DamerauLevenshtein {
    /// Create the measure.
    pub const fn new() -> Self {
        Self
    }

    /// Allocation-free scoring against caller-provided scratch
    /// buffers; bit-identical to [`StringSimilarity::sim`].
    pub fn sim_with(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        // For ASCII inputs byte length equals char count, so the
        // normalization denominator is unchanged on the fast path.
        let max_len = if a.is_ascii() && b.is_ascii() {
            a.len().max(b.len())
        } else {
            a.chars().count().max(b.chars().count())
        };
        if max_len == 0 {
            return 1.0;
        }
        let d = scratch.osa(a, b);
        clamp01(1.0 - d as f64 / max_len as f64)
    }
}

impl StringSimilarity for DamerauLevenshtein {
    fn sim(&self, a: &str, b: &str) -> f64 {
        with_thread_scratch(|s| self.sim_with(s, a, b))
    }
}

impl ScratchSimilarity for DamerauLevenshtein {
    fn sim_scratch(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        self.sim_with(scratch, a, b)
    }
}

/// The paper's extended Damerau–Levenshtein similarity (Section 6.2).
///
/// Used as the inner token measure of the Generalized Jaccard name
/// similarity and as the birthplace measure during plausibility scoring.
/// Its extensions encode the plausibility-check philosophy that only
/// *contradictions* should lower similarity:
///
/// * a comparison against a missing/empty value scores `1.0`;
/// * if one value is a prefix of the other (e.g. the abbreviation `A.` vs
///   `ANNE`, after stripping a trailing punctuation mark) the score is
///   `1.0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtendedDamerauLevenshtein;

impl ExtendedDamerauLevenshtein {
    /// Create the measure.
    pub const fn new() -> Self {
        Self
    }

    /// Strip one trailing punctuation mark, as allowed for abbreviations.
    fn strip_trailing_punct(s: &str) -> &str {
        s.strip_suffix(['.', ',', ';']).unwrap_or(s)
    }

    /// Allocation-free scoring against caller-provided scratch
    /// buffers; bit-identical to [`StringSimilarity::sim`].
    pub fn sim_with(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        let a = a.trim();
        let b = b.trim();
        if a.is_empty() || b.is_empty() {
            return 1.0;
        }
        let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let short_stripped = Self::strip_trailing_punct(short);
        // `str::starts_with` compares UTF-8 bytes, which is exactly a
        // char-sequence prefix test — no decode buffers needed.
        if !short_stripped.is_empty() && long.starts_with(short_stripped) {
            return 1.0;
        }
        DamerauLevenshtein::new().sim_with(scratch, a, b)
    }
}

impl StringSimilarity for ExtendedDamerauLevenshtein {
    fn sim(&self, a: &str, b: &str) -> f64 {
        with_thread_scratch(|s| self.sim_with(s, a, b))
    }
}

impl ScratchSimilarity for ExtendedDamerauLevenshtein {
    fn sim_scratch(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        self.sim_with(scratch, a, b)
    }
}

impl ExtendedDamerauLevenshtein {
    /// Optional-value comparison (missing ⇒ `1.0`), the form used by the
    /// plausibility scorer.
    pub fn sim_optional(&self, a: Option<&str>, b: Option<&str>) -> f64 {
        <Self as OptionalSimilarity>::sim_opt(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(a: &str, b: &str) -> usize {
        distance(a, b)
    }

    #[test]
    fn distance_identical_is_zero() {
        assert_eq!(d("", ""), 0);
        assert_eq!(d("WILLIAMS", "WILLIAMS"), 0);
    }

    #[test]
    fn distance_empty_vs_nonempty() {
        assert_eq!(d("", "ABC"), 3);
        assert_eq!(d("ABC", ""), 3);
    }

    #[test]
    fn distance_substitution() {
        assert_eq!(d("OEHRIE", "OEHRLE"), 1);
    }

    #[test]
    fn distance_insertion_deletion() {
        assert_eq!(d("ADELL", "ADELLE"), 1);
        assert_eq!(d("ADELLE", "ADELL"), 1);
    }

    #[test]
    fn distance_transposition_counts_once() {
        // Plain Levenshtein would give 2 here.
        assert_eq!(d("MARHTA", "MARTHA"), 1);
        assert_eq!(d("AB", "BA"), 1);
    }

    #[test]
    fn distance_osa_classic_example() {
        // The classic OSA example: CA -> ABC is 3 under OSA (2 under
        // unrestricted Damerau-Levenshtein).
        assert_eq!(d("CA", "ABC"), 3);
    }

    #[test]
    fn distance_is_symmetric() {
        for (a, b) in [("KITTEN", "SITTING"), ("BAILEY", "BAYLEE"), ("", "X")] {
            assert_eq!(d(a, b), d(b, a));
        }
    }

    #[test]
    fn distance_unicode_aware() {
        assert_eq!(d("MÜLLER", "MULLER"), 1);
        assert_eq!(d("ÆON", "AEON"), 2);
    }

    #[test]
    fn similarity_range_and_values() {
        let dl = DamerauLevenshtein::new();
        assert_eq!(dl.sim("", ""), 1.0);
        assert_eq!(dl.sim("ABCD", "ABCD"), 1.0);
        assert_eq!(dl.sim("ABCD", ""), 0.0);
        assert!((dl.sim("ABCD", "ABCE") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn extended_prefix_is_perfect() {
        let e = ExtendedDamerauLevenshtein::new();
        assert_eq!(e.sim("KIM", "KIMBERLY"), 1.0);
        assert_eq!(e.sim("KIMBERLY", "KIM"), 1.0);
        assert_eq!(e.sim("A.", "ANNE"), 1.0);
        assert_eq!(e.sim("A", "ANNE"), 1.0);
    }

    #[test]
    fn extended_missing_is_perfect() {
        let e = ExtendedDamerauLevenshtein::new();
        assert_eq!(e.sim("", "ANNE"), 1.0);
        assert_eq!(e.sim("   ", "ANNE"), 1.0);
        assert_eq!(e.sim_optional(None, Some("ANNE")), 1.0);
    }

    #[test]
    fn extended_falls_back_to_damerau() {
        let e = ExtendedDamerauLevenshtein::new();
        let dl = DamerauLevenshtein::new();
        assert_eq!(e.sim("OEHRIE", "OEHRLE"), dl.sim("OEHRIE", "OEHRLE"));
        assert!(e.sim("FIELDS", "BETHEA") < 0.35);
    }

    #[test]
    fn extended_nonprefix_not_perfect() {
        let e = ExtendedDamerauLevenshtein::new();
        assert!(e.sim("ANN", "ANDREW") < 1.0);
    }
}
