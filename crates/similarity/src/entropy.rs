//! Entropy-based attribute uniqueness weighting.
//!
//! Section 6.3: "we weighted every attribute by its uniqueness, where we
//! quantified this uniqueness by the attribute's entropy". The weights
//! are the Shannon entropies of the attributes' value distributions,
//! normalized to sum to one. For heterogeneity scoring the paper computes
//! entropy over *one record per cluster* (duplicates would distort the
//! distribution); for detection it uses all records, since a user cannot
//! know the duplicates in advance. Both usages funnel through
//! [`EntropyAccumulator`].

use std::collections::HashMap;

/// Streaming accumulator for the value distribution of one attribute.
#[derive(Debug, Clone, Default)]
pub struct EntropyAccumulator {
    counts: HashMap<String, u64>,
    total: u64,
}

impl EntropyAccumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observed value. Missing values should be passed as the
    /// empty string so that sparsity lowers an attribute's entropy.
    pub fn observe(&mut self, value: &str) {
        *self.counts.entry(value.to_owned()).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of observations so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Shannon entropy (base 2) of the observed distribution; `0.0` when
    /// empty.
    ///
    /// Summed in sorted-count order, not `HashMap` iteration order:
    /// float addition is not associative, and the map's per-instance
    /// random ordering would otherwise let two accumulators over the
    /// same multiset disagree by an ulp — breaking the bit-identity
    /// contracts of parallel scoring and sharded stores.
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        let mut counts: Vec<u64> = self.counts.values().copied().collect();
        counts.sort_unstable();
        counts
            .iter()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }
}

/// Compute the Shannon entropy of a column of values.
pub fn column_entropy<'a, I: IntoIterator<Item = &'a str>>(values: I) -> f64 {
    let mut acc = EntropyAccumulator::new();
    for v in values {
        acc.observe(v);
    }
    acc.entropy()
}

/// Normalize raw entropies into weights that sum to `1.0`.
///
/// If every entropy is zero (e.g. a single record), uniform weights are
/// returned so that downstream weighted averages stay well defined.
pub fn normalize_weights(entropies: &[f64]) -> Vec<f64> {
    let sum: f64 = entropies.iter().sum();
    if sum <= 0.0 {
        if entropies.is_empty() {
            return Vec::new();
        }
        return vec![1.0 / entropies.len() as f64; entropies.len()];
    }
    entropies.iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_constant_column_is_zero() {
        assert_eq!(column_entropy(["A", "A", "A"]), 0.0);
        assert_eq!(column_entropy([]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_column() {
        // Four equally likely values: entropy = 2 bits.
        let e = column_entropy(["A", "B", "C", "D"]);
        assert!((e - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_skewed_column_is_lower() {
        let uniform = column_entropy(["A", "B", "C", "D"]);
        let skewed = column_entropy(["A", "A", "A", "B"]);
        assert!(skewed < uniform);
        assert!(skewed > 0.0);
    }

    #[test]
    fn unique_column_has_max_entropy() {
        let vals: Vec<String> = (0..64).map(|i| format!("V{i}")).collect();
        let e = column_entropy(vals.iter().map(|s| s.as_str()));
        assert!((e - 6.0).abs() < 1e-12); // log2(64)
    }

    #[test]
    fn weights_sum_to_one() {
        let w = normalize_weights(&[2.0, 1.0, 1.0]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_entropies_yield_uniform_weights() {
        let w = normalize_weights(&[0.0, 0.0]);
        assert_eq!(w, vec![0.5, 0.5]);
        assert!(normalize_weights(&[]).is_empty());
    }

    #[test]
    fn accumulator_counts() {
        let mut acc = EntropyAccumulator::new();
        acc.observe("X");
        acc.observe("X");
        acc.observe("");
        assert_eq!(acc.total(), 3);
        assert_eq!(acc.distinct(), 2);
        assert!(acc.entropy() > 0.0);
    }
}
