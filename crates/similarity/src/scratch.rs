//! Reusable scratch buffers for the allocation-free kernel entry points.
//!
//! Every hot similarity kernel ([`crate::damerau`], [`crate::jaro`],
//! [`crate::monge_elkan`], [`crate::gen_jaccard`]) has a `*_with`
//! variant taking a `&mut Scratch`. The scratch owns every buffer the
//! kernels would otherwise allocate per call — Damerau–Levenshtein DP
//! rows, Jaro match bitmaps, `char` decode buffers for non-ASCII
//! input, token ranges, Generalized-Jaccard weight matrices and the
//! Hungarian-algorithm working set — so a tight scoring loop performs
//! no heap allocation after warm-up.
//!
//! All `*_with` entry points take an ASCII byte-slice fast path when
//! both inputs are ASCII (voter data always is): byte length equals
//! `char` count there, so every distance, window and normalization is
//! bit-identical to the `char` path, which remains as the fallback for
//! arbitrary UTF-8.
//!
//! A `Scratch` is cheap to create and intended to live one-per-thread;
//! it is deliberately `!Sync` in usage (`&mut` everywhere) so a worker
//! pool gives each worker its own.

use crate::assignment::AssignScratch;

/// Working memory shared by every `*_with` kernel entry point.
///
/// Buffers grow to the high-water mark of the inputs seen and are
/// never shrunk. The contents between calls are unspecified.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Rolling DP rows for the OSA distance (`prev2`, `prev`, `cur`).
    pub(crate) dp: DpRows,
    /// `char` decode buffers for the non-ASCII fallback paths.
    pub(crate) chars: CharBufs,
    /// Jaro match bookkeeping.
    pub(crate) jaro: JaroBufs,
    /// Token byte ranges of the first tokenized input.
    pub(crate) tokens_a: Vec<(usize, usize)>,
    /// Token byte ranges of the second tokenized input.
    pub(crate) tokens_b: Vec<(usize, usize)>,
    /// Flattened `rows × cols` weight matrix for Generalized Jaccard.
    pub(crate) weights: Vec<f64>,
    /// Hungarian-algorithm working set.
    pub(crate) assign: AssignScratch,
}

impl Scratch {
    /// Create an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// OSA Damerau–Levenshtein distance between two strings, using the
    /// ASCII byte path when possible.
    pub(crate) fn osa(&mut self, a: &str, b: &str) -> usize {
        if a.is_ascii() && b.is_ascii() {
            osa_core(&mut self.dp, a.as_bytes(), b.as_bytes())
        } else {
            self.chars.fill(a, b);
            osa_core(&mut self.dp, &self.chars.a, &self.chars.b)
        }
    }

    /// Jaro similarity between two strings, using the ASCII byte path
    /// when possible.
    pub(crate) fn jaro(&mut self, a: &str, b: &str) -> f64 {
        if a.is_ascii() && b.is_ascii() {
            jaro_core(&mut self.jaro, a.as_bytes(), b.as_bytes())
        } else {
            self.chars.fill(a, b);
            jaro_core(&mut self.jaro, &self.chars.a, &self.chars.b)
        }
    }
}

/// Three rolling DP rows (two previous rows are needed for adjacent
/// transpositions).
#[derive(Debug, Default)]
pub(crate) struct DpRows {
    prev2: Vec<usize>,
    prev: Vec<usize>,
    cur: Vec<usize>,
}

/// `char` decode buffers for non-ASCII inputs.
#[derive(Debug, Default)]
pub(crate) struct CharBufs {
    pub(crate) a: Vec<char>,
    pub(crate) b: Vec<char>,
}

impl CharBufs {
    fn fill(&mut self, a: &str, b: &str) {
        self.a.clear();
        self.a.extend(a.chars());
        self.b.clear();
        self.b.extend(b.chars());
    }
}

/// Jaro match bookkeeping: a matched-flag per `b` element and the
/// matched positions of both sides in match order.
#[derive(Debug, Default)]
pub(crate) struct JaroBufs {
    matched_b: Vec<bool>,
    match_idx_a: Vec<usize>,
    match_idx_b: Vec<usize>,
}

/// OSA Damerau–Levenshtein distance over generic symbol slices with
/// caller-provided DP rows. Identical arithmetic to
/// [`crate::damerau::osa_distance`]; generic so the ASCII fast path
/// (`&[u8]`) and the Unicode fallback (`&[char]`) share one
/// implementation.
pub(crate) fn osa_core<T: PartialEq + Copy>(dp: &mut DpRows, a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let m = b.len();

    dp.prev2.clear();
    dp.prev2.resize(m + 1, 0);
    dp.prev.clear();
    dp.prev.extend(0..=m);
    dp.cur.clear();
    dp.cur.resize(m + 1, 0);

    for (i, &ca) in a.iter().enumerate() {
        dp.cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let mut d = (dp.prev[j + 1] + 1)
                .min(dp.cur[j] + 1)
                .min(dp.prev[j] + cost);
            if i > 0 && j > 0 && ca == b[j - 1] && a[i - 1] == cb {
                d = d.min(dp.prev2[j - 1] + 1);
            }
            dp.cur[j + 1] = d;
        }
        std::mem::swap(&mut dp.prev2, &mut dp.prev);
        std::mem::swap(&mut dp.prev, &mut dp.cur);
    }
    dp.prev[m]
}

/// Jaro similarity over generic symbol slices with caller-provided
/// match buffers. Identical arithmetic to [`crate::jaro::jaro`];
/// matched symbols are tracked by index so the buffers are
/// type-independent.
pub(crate) fn jaro_core<T: PartialEq + Copy>(bufs: &mut JaroBufs, a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    bufs.matched_b.clear();
    bufs.matched_b.resize(b.len(), false);
    bufs.match_idx_a.clear();

    for (i, &ca) in a.iter().enumerate() {
        let hi = (i + match_window + 1).min(b.len());
        let lo = i.saturating_sub(match_window).min(hi);
        for (matched, &cb) in bufs.matched_b[lo..hi].iter_mut().zip(&b[lo..hi]) {
            if !*matched && cb == ca {
                *matched = true;
                bufs.match_idx_a.push(i);
                break;
            }
        }
    }
    let m = bufs.match_idx_a.len();
    if m == 0 {
        return 0.0;
    }
    bufs.match_idx_b.clear();
    bufs.match_idx_b
        .extend((0..b.len()).filter(|&j| bufs.matched_b[j]));
    let transpositions = bufs
        .match_idx_a
        .iter()
        .zip(bufs.match_idx_b.iter())
        .filter(|&(&i, &j)| a[i] != b[j])
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    crate::clamp01((m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0)
}

/// Append the byte ranges of the whitespace-separated tokens of `s`
/// to `out` (cleared first). Produces the same tokens as
/// [`crate::token::tokens`] without allocating per call.
pub(crate) fn tokenize_into(s: &str, out: &mut Vec<(usize, usize)>) {
    out.clear();
    let base = s.as_ptr() as usize;
    out.extend(s.split_whitespace().map(|tok| {
        let start = tok.as_ptr() as usize - base;
        (start, start + tok.len())
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::damerau::osa_distance;
    use crate::jaro::jaro;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn osa_core_matches_reference_on_reused_buffers() {
        let mut dp = DpRows::default();
        let cases = [
            ("", ""),
            ("", "ABC"),
            ("MARHTA", "MARTHA"),
            ("CA", "ABC"),
            ("KITTEN", "SITTING"),
            ("WILLIAMS", "WILLIAMS"),
            ("A", "LONGERSTRINGHERE"),
        ];
        // Interleave long and short inputs so stale buffer contents
        // would be caught.
        for _ in 0..3 {
            for (a, b) in cases {
                assert_eq!(
                    osa_core(&mut dp, a.as_bytes(), b.as_bytes()),
                    osa_distance(&chars(a), &chars(b)),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn jaro_core_matches_reference_on_reused_buffers() {
        let mut bufs = JaroBufs::default();
        let cases = [
            ("", ""),
            ("", "ABC"),
            ("MARTHA", "MARHTA"),
            ("DIXON", "DICKSONX"),
            ("DWAYNE", "DUANE"),
            ("ABC", "XYZ"),
            ("A", "LONGERSTRINGHERE"),
        ];
        for _ in 0..3 {
            for (a, b) in cases {
                let got = jaro_core(&mut bufs, a.as_bytes(), b.as_bytes());
                let want = jaro(&chars(a), &chars(b));
                assert!((got - want).abs() < 1e-15, "{a} vs {b}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn cores_handle_unicode_via_char_slices() {
        let mut dp = DpRows::default();
        assert_eq!(
            osa_core(&mut dp, &chars("MÜLLER"), &chars("MULLER")),
            osa_distance(&chars("MÜLLER"), &chars("MULLER"))
        );
        let mut bufs = JaroBufs::default();
        let got = jaro_core(&mut bufs, &chars("MÜLLER"), &chars("MULLER"));
        let want = jaro(&chars("MÜLLER"), &chars("MULLER"));
        assert!((got - want).abs() < 1e-15);
    }

    #[test]
    fn tokenize_into_matches_token_helper() {
        let mut buf = Vec::new();
        for s in ["  MARY  ANN ", "", "   ", "ONE", "A B C D"] {
            tokenize_into(s, &mut buf);
            let via_ranges: Vec<&str> = buf.iter().map(|&(x, y)| &s[x..y]).collect();
            assert_eq!(via_ranges, crate::token::tokens(s), "{s:?}");
        }
    }
}
