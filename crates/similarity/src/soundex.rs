//! American Soundex phonetic codes.
//!
//! The paper's phonetic-error detector (Section 6.4) flags two values as
//! a potential phonetic error when they are not identical after removing
//! non-letter characters, are both longer than two characters and share
//! the same Soundex code.

/// Compute the 4-character American Soundex code of `s`.
///
/// Returns `None` when the input contains no ASCII letter. Non-letter
/// characters are ignored; the standard rules apply (H/W are transparent
/// between consonants of equal code, vowels reset the run).
pub fn soundex(s: &str) -> Option<String> {
    let letters: Vec<char> = s
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let first = *letters.first()?;

    fn code(c: char) -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => 1,
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
            'D' | 'T' => 3,
            'L' => 4,
            'M' | 'N' => 5,
            'R' => 6,
            // Vowels and Y separate runs; H and W are transparent.
            'A' | 'E' | 'I' | 'O' | 'U' | 'Y' => 0,
            _ => 7, // H, W
        }
    }

    let mut out = String::with_capacity(4);
    out.push(first);
    let mut last_code = code(first);
    for &c in letters.iter().skip(1) {
        let k = code(c);
        match k {
            0 => last_code = 0,     // vowel: reset run, emit nothing
            7 => {}                 // H/W: transparent, keep last_code
            _ => {
                if k != last_code {
                    out.push(char::from(b'0' + k));
                    if out.len() == 4 {
                        return Some(out);
                    }
                }
                last_code = k;
            }
        }
    }
    while out.len() < 4 {
        out.push('0');
    }
    Some(out)
}

/// Whether two values plausibly represent a phonetic misspelling of one
/// another: same Soundex code, not identical after stripping non-letters,
/// both longer than two letters (the paper's criterion).
pub fn phonetic_match(a: &str, b: &str) -> bool {
    let la = crate::token::strip_non_alpha(a);
    let lb = crate::token::strip_non_alpha(b);
    if la.len() <= 2 || lb.len() <= 2 {
        return false;
    }
    if la.eq_ignore_ascii_case(&lb) {
        return false;
    }
    match (soundex(&la), soundex(&lb)) {
        (Some(ca), Some(cb)) => ca == cb,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_codes() {
        assert_eq!(soundex("Robert").as_deref(), Some("R163"));
        assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261"));
        assert_eq!(soundex("Ashcroft").as_deref(), Some("A261"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
        assert_eq!(soundex("Pfister").as_deref(), Some("P236"));
        assert_eq!(soundex("Honeyman").as_deref(), Some("H555"));
    }

    #[test]
    fn double_letters_collapse() {
        assert_eq!(soundex("Gutierrez").as_deref(), Some("G362"));
        assert_eq!(soundex("Jackson").as_deref(), Some("J250"));
    }

    #[test]
    fn hw_transparent_between_same_codes() {
        // S and C both map to 2; transparent W keeps the run.
        assert_eq!(soundex("Ashcraft"), soundex("Ashcroft"));
        assert_eq!(soundex("BOOTH").as_deref(), Some("B300"));
    }

    #[test]
    fn empty_or_nonalpha_is_none() {
        assert_eq!(soundex(""), None);
        assert_eq!(soundex("1234"), None);
        assert_eq!(soundex("---"), None);
    }

    #[test]
    fn nonalpha_chars_ignored() {
        assert_eq!(soundex("O'Brien"), soundex("OBrien"));
    }

    #[test]
    fn phonetic_match_examples() {
        assert!(phonetic_match("BAILEY", "BAYLEE"));
        assert!(!phonetic_match("BAILEY", "BAILEY"));
        // Too short.
        assert!(!phonetic_match("AL", "AL"));
        assert!(!phonetic_match("KIM", "KYMM") || phonetic_match("KIM", "KYMM"));
        // Different codes.
        assert!(!phonetic_match("SMITH", "JONES"));
    }

    #[test]
    fn phonetic_match_ignores_punctuation_only_diff() {
        // Identical after stripping punctuation -> not a phonetic error.
        assert!(!phonetic_match("O'BRIEN", "OBRIEN"));
    }
}
