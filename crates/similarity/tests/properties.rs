//! Property-based tests for the similarity measures.

use nc_similarity::damerau::{distance, DamerauLevenshtein, ExtendedDamerauLevenshtein};
use nc_similarity::gen_jaccard::GeneralizedJaccard;
use nc_similarity::jaro::{Jaro, JaroWinkler};
use nc_similarity::monge_elkan::MongeElkan;
use nc_similarity::ngram::NgramJaccard;
use nc_similarity::soundex::soundex;
use nc_similarity::StringSimilarity;
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Z]{0,12}").unwrap()
}

fn phrase() -> impl Strategy<Value = String> {
    proptest::collection::vec(word(), 0..4).prop_map(|ws| ws.join(" "))
}

macro_rules! measure_properties {
    ($name:ident, $measure:expr, $gen:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #[test]
                fn bounded(a in $gen, b in $gen) {
                    let s = $measure.sim(&a, &b);
                    prop_assert!((0.0..=1.0).contains(&s), "sim out of range: {s}");
                }

                #[test]
                fn symmetric(a in $gen, b in $gen) {
                    let ab = $measure.sim(&a, &b);
                    let ba = $measure.sim(&b, &a);
                    prop_assert!((ab - ba).abs() < 1e-9, "asymmetric: {ab} vs {ba}");
                }

                #[test]
                fn reflexive(a in $gen) {
                    prop_assert_eq!($measure.sim(&a, &a), 1.0);
                }
            }
        }
    };
}

measure_properties!(damerau_props, DamerauLevenshtein::new(), word());
measure_properties!(ext_damerau_props, ExtendedDamerauLevenshtein::new(), word());
measure_properties!(jaro_props, Jaro::new(), word());
measure_properties!(jaro_winkler_props, JaroWinkler::new(), word());
measure_properties!(ngram_props, NgramJaccard::trigram(), word());
measure_properties!(
    monge_elkan_props,
    MongeElkan::new(DamerauLevenshtein::new()),
    phrase()
);
measure_properties!(
    gen_jaccard_props,
    GeneralizedJaccard::new(DamerauLevenshtein::new()),
    phrase()
);

proptest! {
    /// Edit distance is a metric on the OSA-reachable space: triangle
    /// inequality holds for the OSA distance on short strings.
    #[test]
    fn damerau_triangle_inequality(
        a in "[A-Z]{0,6}",
        b in "[A-Z]{0,6}",
        c in "[A-Z]{0,6}",
    ) {
        let ab = distance(&a, &b);
        let bc = distance(&b, &c);
        let ac = distance(&a, &c);
        prop_assert!(ac <= ab + bc, "triangle violated: d({a},{c})={ac} > {ab}+{bc}");
    }

    /// Single-character edits move the distance by at most one.
    #[test]
    fn damerau_edit_changes_distance_by_at_most_one(
        a in "[A-Z]{1,10}",
        b in "[A-Z]{1,10}",
        idx in 0usize..10,
        ch in proptest::char::range('A', 'Z'),
    ) {
        let mut chars: Vec<char> = a.chars().collect();
        let idx = idx % chars.len();
        chars[idx] = ch;
        let a2: String = chars.iter().collect();
        let d1 = distance(&a, &b);
        let d2 = distance(&a2, &b);
        prop_assert!(d1.abs_diff(d2) <= 1);
    }

    /// Soundex always yields a letter followed by three digits.
    #[test]
    fn soundex_shape(s in "[A-Za-z'\\- ]{1,20}") {
        if let Some(code) = soundex(&s) {
            prop_assert_eq!(code.len(), 4);
            let cs: Vec<char> = code.chars().collect();
            prop_assert!(cs[0].is_ascii_uppercase());
            prop_assert!(cs[1..].iter().all(|c| c.is_ascii_digit()));
        }
    }

    /// Soundex is insensitive to case and non-letter characters.
    #[test]
    fn soundex_case_insensitive(s in "[A-Za-z]{1,12}") {
        prop_assert_eq!(soundex(&s), soundex(&s.to_uppercase()));
        prop_assert_eq!(soundex(&s), soundex(&s.to_lowercase()));
    }

    /// The extended measure dominates the plain one (its relaxations can
    /// only raise similarity).
    #[test]
    fn extended_damerau_dominates_plain(a in word(), b in word()) {
        let plain = DamerauLevenshtein::new().sim(&a, &b);
        let ext = ExtendedDamerauLevenshtein::new().sim(&a, &b);
        prop_assert!(ext >= plain - 1e-12, "ext {ext} < plain {plain}");
    }
}
