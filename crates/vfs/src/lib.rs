//! Injectable filesystem abstraction for durability-critical writes.
//!
//! Every write path whose crash-safety the workspace asserts — the
//! docstore's atomic saves, the shard WAL appenders and segment
//! rotation, the shard manifest commit, and the checkpoint manifests —
//! performs its mutating syscalls through the [`Vfs`] trait instead of
//! `std::fs` directly. [`StdVfs`] is the zero-cost production
//! implementation; [`fault::FaultVfs`] is the adversarial one, able to
//! fail any individual syscall (`EIO`, `ENOSPC`, short writes, fsync
//! and rename failures) or to *crash* at operation K — refusing every
//! mutating syscall from the K-th on, exactly like a process that died
//! there.
//!
//! Only mutating operations go through the trait. Reads stay on
//! `std::fs`: recovery code reads whatever bytes actually landed, and
//! the faults under test are write-side faults. The trait is
//! deliberately small — it models the syscalls the commit protocols
//! rely on (`write`, `fsync`, `fdatasync`-equivalent `sync_file`,
//! directory fsync, `rename`, `unlink`, `ftruncate`) and nothing more,
//! so a fault sweep over an operation trace enumerates every crash
//! point a real kernel could expose.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

pub use fault::{FaultRng, FaultVfs, InjectedFault};

/// An open, writable file handle obtained from a [`Vfs`].
///
/// The handle owns exactly the operations the durability protocols
/// issue on an open descriptor: buffered-writer-driven `write`s, fsync
/// ([`VfsFile::sync_file`]), truncation ([`VfsFile::set_len`]) and a
/// length probe for append-position bookkeeping.
pub trait VfsFile: Write + Send + fmt::Debug {
    /// Flush file contents (and metadata) to stable storage — `fsync`.
    fn sync_file(&mut self) -> io::Result<()>;

    /// Truncate (or extend) the file to `len` bytes — `ftruncate`.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Current on-disk length of the file, in bytes.
    fn file_len(&self) -> io::Result<u64>;
}

/// The mutating filesystem surface of every durability-critical write
/// path in the workspace.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Create (truncating) a file for writing — `open(O_CREAT|O_TRUNC)`.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Open (creating if absent) a file for appending —
    /// `open(O_CREAT|O_APPEND)`.
    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Atomically rename `from` onto `to` — `rename`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove a file — `unlink`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Create a directory and its ancestors — `mkdir -p`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Fsync a directory, making renamed/created entries durable.
    /// Best-effort on the open (not every filesystem permits opening a
    /// directory), but an fsync that was issued and failed is an error.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: a zero-cost passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

/// A real [`File`] behind the [`VfsFile`] trait.
#[derive(Debug)]
pub struct StdFile(File);

impl Write for StdFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl VfsFile for StdFile {
    fn sync_file(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn file_len(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

impl Vfs for StdVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(File::create(path)?)))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().append(true).create(true).open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nc_vfs_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn std_vfs_create_write_sync_rename() {
        let a = tmp("std_a");
        let b = tmp("std_b");
        let vfs = StdVfs;
        let mut f = vfs.create(&a).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_file().unwrap();
        assert_eq!(f.file_len().unwrap(), 5);
        drop(f);
        vfs.rename(&a, &b).unwrap();
        vfs.sync_dir(b.parent().unwrap()).unwrap();
        assert_eq!(std::fs::read(&b).unwrap(), b"hello");
        vfs.remove_file(&b).unwrap();
        assert!(!a.exists() && !b.exists());
    }

    #[test]
    fn std_vfs_append_continues_and_set_len_truncates() {
        let p = tmp("std_append");
        let vfs = StdVfs;
        let mut f = vfs.append(&p).unwrap();
        f.write_all(b"one\n").unwrap();
        drop(f);
        let mut f = vfs.append(&p).unwrap();
        assert_eq!(f.file_len().unwrap(), 4);
        f.write_all(b"two\n").unwrap();
        f.flush().unwrap();
        f.set_len(4).unwrap();
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"one\n");
        vfs.remove_file(&p).unwrap();
    }

    #[test]
    fn sync_dir_is_best_effort_on_missing_path() {
        StdVfs.sync_dir(Path::new("/nonexistent/nc_vfs_dir")).unwrap();
    }
}
