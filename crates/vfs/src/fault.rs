//! Deterministic syscall-level fault injection.
//!
//! [`FaultVfs`] wraps [`StdVfs`](crate::StdVfs) and numbers every
//! mutating syscall it forwards (creates, appends, writes, fsyncs,
//! renames, unlinks, truncations, directory fsyncs). A test either
//! pins a specific fault to a specific operation index
//! ([`FaultVfs::fail_op`]) or declares a *crash point*
//! ([`FaultVfs::crash_at`]): from the K-th operation on, every
//! mutating syscall fails — data written before K is on disk, nothing
//! after it is, exactly the prefix a real crash leaves behind.
//!
//! The full operation trace is recorded, so a sweep can first run a
//! scenario fault-free to learn its trace length N, then re-run it
//! with `crash_at(K)` for every `K < N` and assert the recovery
//! invariant at each prefix. All randomized modes draw from the
//! SplitMix64 [`FaultRng`], so every schedule is reproducible from its
//! seed.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use crate::{StdVfs, Vfs, VfsFile};

/// A small deterministic RNG (SplitMix64): no external dependencies,
/// identical sequences on every platform for a given seed.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift reduction; bias is negligible for test usage.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 >= 1.0 - p
    }
}

/// One fault pinned to one syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The syscall fails with `EIO` without taking effect.
    Eio,
    /// The syscall fails with `ENOSPC` without taking effect.
    Enospc,
    /// A `write` lands only the first half of its buffer, then fails
    /// with `ENOSPC` — the torn write a full disk produces. On
    /// non-write syscalls this degrades to [`InjectedFault::Enospc`].
    ShortWrite,
    /// An `fsync` (file or directory) fails with `EIO`: the kernel
    /// accepted the writes but could not make them durable. On
    /// non-sync syscalls this degrades to [`InjectedFault::Eio`].
    SyncFail,
    /// A `rename` fails with `EIO`, leaving both names untouched. On
    /// non-rename syscalls this degrades to [`InjectedFault::Eio`].
    RenameFail,
}

/// ENOSPC as an `io::Error` (errno 28 on every Unix this runs on).
fn enospc() -> io::Error {
    io::Error::from_raw_os_error(28)
}

/// EIO as an `io::Error` (errno 5).
fn eio() -> io::Error {
    io::Error::from_raw_os_error(5)
}

fn crash_error(index: u64) -> io::Error {
    io::Error::other(format!("simulated crash: syscall {index} and everything after it refused"))
}

/// One recorded mutating syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Zero-based operation index (sweep over `0..trace.len()`).
    pub index: u64,
    /// Syscall name (`create`, `append`, `write`, `sync_file`,
    /// `sync_dir`, `rename`, `remove`, `set_len`, `mkdir`).
    pub op: &'static str,
    /// Path the syscall targeted.
    pub path: PathBuf,
}

#[derive(Debug, Default)]
struct FaultState {
    next_index: u64,
    crash_at: Option<u64>,
    crashed: bool,
    pinned: BTreeMap<u64, InjectedFault>,
    random: Option<(FaultRng, f64)>,
    trace: Vec<OpRecord>,
    faults_fired: u64,
}

impl FaultState {
    /// Number a syscall, record it, and decide its fate.
    fn enter(&mut self, op: &'static str, path: &Path) -> Result<Option<InjectedFault>, io::Error> {
        let index = self.next_index;
        self.next_index += 1;
        self.trace.push(OpRecord {
            index,
            op,
            path: path.to_path_buf(),
        });
        if self.crashed || self.crash_at.is_some_and(|k| index >= k) {
            self.crashed = true;
            self.faults_fired += 1;
            return Err(crash_error(index));
        }
        if let Some(fault) = self.pinned.remove(&index) {
            self.faults_fired += 1;
            return Ok(Some(fault));
        }
        if let Some((rng, p)) = &mut self.random {
            if rng.chance(*p) {
                let fault = match rng.below(5) {
                    0 => InjectedFault::Eio,
                    1 => InjectedFault::Enospc,
                    2 => InjectedFault::ShortWrite,
                    3 => InjectedFault::SyncFail,
                    _ => InjectedFault::RenameFail,
                };
                self.faults_fired += 1;
                return Ok(Some(fault));
            }
        }
        Ok(None)
    }
}

/// A [`Vfs`] that forwards to [`StdVfs`] while injecting faults by
/// syscall index. Cloning shares the fault schedule and the trace, so
/// a handle kept by the test observes everything the system under test
/// did.
#[derive(Debug, Clone, Default)]
pub struct FaultVfs {
    inner: StdVfs,
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// A fault-free recorder: every syscall succeeds and is traced.
    /// Run the scenario once through this to learn its trace, then
    /// sweep [`FaultVfs::crash_at`] over `0..ops()`.
    pub fn recorder() -> Self {
        FaultVfs::default()
    }

    /// Crash at operation `k`: syscalls `0..k` succeed, syscall `k`
    /// and every one after it fail. `crash_at(0)` refuses everything.
    pub fn crash_at(k: u64) -> Self {
        let vfs = FaultVfs::default();
        vfs.lock().crash_at = Some(k);
        vfs
    }

    /// Inject `fault` at operation `index` (once); everything else
    /// succeeds. May be called repeatedly to pin several faults.
    pub fn fail_op(self, index: u64, fault: InjectedFault) -> Self {
        self.lock().pinned.insert(index, fault);
        self
    }

    /// Random chaos mode: every syscall independently fails with
    /// probability `p`, drawn from the seeded [`FaultRng`] —
    /// reproducible from `(seed, p)`.
    pub fn with_seed(seed: u64, p: f64) -> Self {
        let vfs = FaultVfs::default();
        vfs.lock().random = Some((FaultRng::new(seed), p));
        vfs
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutating syscalls issued so far (attempted ones included).
    pub fn ops(&self) -> u64 {
        self.lock().next_index
    }

    /// Faults (crash refusals included) fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.lock().faults_fired
    }

    /// Whether a crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Snapshot of the recorded operation trace.
    pub fn trace(&self) -> Vec<OpRecord> {
        self.lock().trace.clone()
    }

    /// Clear the crash state and schedule so the same handle can keep
    /// operating (models a post-crash remount in in-process tests).
    pub fn heal(&self) {
        let mut state = self.lock();
        state.crash_at = None;
        state.crashed = false;
        state.pinned.clear();
        state.random = None;
    }
}

/// A writable handle that re-enters the shared fault schedule on every
/// `write`/`sync_file`/`set_len`.
#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn VfsFile>,
    path: PathBuf,
    state: Arc<Mutex<FaultState>>,
}

impl FaultFile {
    fn enter(&self, op: &'static str) -> Result<Option<InjectedFault>, io::Error> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .enter(op, &self.path)
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.enter("write")? {
            None => self.inner.write(buf),
            Some(InjectedFault::ShortWrite) => {
                // Half the buffer reaches the disk, then the device is
                // full: the torn line every framed format must detect.
                let landed = buf.len() / 2;
                self.inner.write_all(&buf[..landed])?;
                Err(enospc())
            }
            Some(InjectedFault::Enospc) => Err(enospc()),
            Some(_) => Err(eio()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        // Userspace buffer drain, not a syscall: never faulted (the
        // `write`s it issues are).
        self.inner.flush()
    }
}

impl VfsFile for FaultFile {
    fn sync_file(&mut self) -> io::Result<()> {
        match self.enter("sync_file")? {
            None => self.inner.sync_file(),
            Some(InjectedFault::Enospc) => Err(enospc()),
            Some(_) => Err(eio()),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.enter("set_len")? {
            None => self.inner.set_len(len),
            Some(InjectedFault::Enospc) => Err(enospc()),
            Some(_) => Err(eio()),
        }
    }

    fn file_len(&self) -> io::Result<u64> {
        // A read-side probe; never faulted.
        self.inner.file_len()
    }
}

impl FaultVfs {
    fn wrap(&self, inner: Box<dyn VfsFile>, path: &Path) -> Box<dyn VfsFile> {
        Box::new(FaultFile {
            inner,
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
        })
    }

    fn simple(&self, op: &'static str, path: &Path) -> io::Result<()> {
        match self.lock().enter(op, path)? {
            None => Ok(()),
            Some(InjectedFault::Enospc | InjectedFault::ShortWrite) => Err(enospc()),
            Some(_) => Err(eio()),
        }
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.simple("create", path)?;
        Ok(self.wrap(self.inner.create(path)?, path))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.simple("append", path)?;
        Ok(self.wrap(self.inner.append(path)?, path))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.lock().enter("rename", from)? {
            None => self.inner.rename(from, to),
            Some(InjectedFault::Enospc) => Err(enospc()),
            Some(_) => Err(eio()), // RenameFail and degradations alike
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.simple("remove", path)?;
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.simple("mkdir", path)?;
        self.inner.create_dir_all(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.lock().enter("sync_dir", dir)? {
            None => self.inner.sync_dir(dir),
            Some(InjectedFault::Enospc) => Err(enospc()),
            Some(_) => Err(eio()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nc_faultvfs_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = FaultRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FaultRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = FaultRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn recorder_traces_every_syscall() {
        let p = tmp("trace");
        let vfs = FaultVfs::recorder();
        let mut f = vfs.create(&p).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_file().unwrap();
        drop(f);
        vfs.remove_file(&p).unwrap();
        let ops: Vec<&str> = vfs.trace().iter().map(|r| r.op).collect();
        assert_eq!(ops, ["create", "write", "sync_file", "remove"]);
        assert_eq!(vfs.ops(), 4);
        assert_eq!(vfs.faults_fired(), 0);
    }

    #[test]
    fn crash_at_k_keeps_the_prefix_and_refuses_the_rest() {
        let p = tmp("crash");
        let _ = std::fs::remove_file(&p);
        // Ops: 0=create 1=write 2=write 3=sync_file.
        let vfs = FaultVfs::crash_at(2);
        let mut f = vfs.create(&p).unwrap();
        f.write_all(b"first\n").unwrap();
        let err = f.write_all(b"second\n").unwrap_err();
        assert!(err.to_string().contains("simulated crash"), "{err}");
        assert!(f.sync_file().is_err(), "crashed state persists");
        assert!(vfs.crashed());
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"first\n", "prefix landed");
        // Healing restores service for the same handle.
        vfs.heal();
        vfs.remove_file(&p).unwrap();
    }

    #[test]
    fn short_write_tears_mid_buffer() {
        let p = tmp("short");
        let vfs = FaultVfs::recorder().fail_op(1, InjectedFault::ShortWrite);
        let mut f = vfs.create(&p).unwrap();
        let err = f.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "ENOSPC: {err}");
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"01234", "half landed");
        assert_eq!(vfs.faults_fired(), 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn pinned_faults_hit_their_exact_syscall() {
        let p = tmp("pinned");
        let q = tmp("pinned_to");
        let vfs = FaultVfs::recorder()
            .fail_op(2, InjectedFault::SyncFail)
            .fail_op(3, InjectedFault::RenameFail);
        let mut f = vfs.create(&p).unwrap();
        f.write_all(b"x").unwrap();
        assert_eq!(f.sync_file().unwrap_err().raw_os_error(), Some(5));
        drop(f);
        assert_eq!(vfs.rename(&p, &q).unwrap_err().raw_os_error(), Some(5));
        assert!(p.exists() && !q.exists(), "failed rename touched nothing");
        // The schedule is spent; the same ops now succeed.
        let mut f = vfs.append(&p).unwrap();
        f.sync_file().unwrap();
        drop(f);
        vfs.rename(&p, &q).unwrap();
        vfs.remove_file(&q).unwrap();
    }

    #[test]
    fn random_mode_is_reproducible() {
        let runs: Vec<(u64, u64)> = (0..2)
            .map(|i| {
                let p = tmp(&format!("rand{i}"));
                let vfs = FaultVfs::with_seed(99, 0.3);
                for _ in 0..50 {
                    if let Ok(mut f) = vfs.create(&p) {
                        let _ = f.write_all(b"payload");
                        let _ = f.sync_file();
                    }
                }
                let _ = std::fs::remove_file(&p);
                (vfs.ops(), vfs.faults_fired())
            })
            .collect();
        assert_eq!(runs[0], runs[1], "same seed, same schedule");
        assert!(runs[0].1 > 0, "p=0.3 over ~150 ops must fire");
    }

    #[test]
    fn error_kinds_map_to_their_errnos() {
        let p = tmp("kinds");
        let vfs = FaultVfs::recorder()
            .fail_op(0, InjectedFault::Enospc)
            .fail_op(1, InjectedFault::Eio)
            .fail_op(3, InjectedFault::Enospc);
        assert_eq!(vfs.create(&p).unwrap_err().raw_os_error(), Some(28));
        assert_eq!(vfs.create(&p).unwrap_err().raw_os_error(), Some(5));
        let mut f = vfs.create(&p).unwrap(); // op 2 succeeds
        assert_eq!(f.write(b"x").unwrap_err().raw_os_error(), Some(28)); // op 3
        f.write_all(b"ok").unwrap(); // schedule spent
        drop(f);
        std::fs::remove_file(&p).unwrap();
    }
}
