//! Fidelity of the encoded space: encoded-space similarity must track
//! the plaintext quantity it estimates, and encoded-space blocking
//! must actually find the gold pairs — measured, not assumed.

use std::collections::HashSet;

use nc_detect::bitsample::BitSampleBlocker;
use nc_detect::dataset::Pair;
use nc_detect::sink::{PairCollector, QualitySink};
use nc_pprl::encode::{normalize_into, plaintext_qgram_dice};
use nc_pprl::kernels::dice_bitset;
use nc_pprl::{Bitset, EncodeScratch, EncodingParams, RecordEncoder};
use nc_votergen::schema::{Row, FIRST_NAME, LAST_NAME, NCID, RES_CITY, RES_STREET};
use proptest::prelude::*;

/// Plan position of `last_name` in the default voter plan.
const LAST_NAME_SLOT: usize = 0;

proptest! {
    /// Encoded Dice estimates plaintext q-gram set Dice. With the
    /// default geometry (1024 bits, k = 10) and name-length values the
    /// filters stay sparse, so the absolute estimation error stays
    /// small: bounded by 0.15 per pair here, a loose cover for the
    /// collision bias (which only pushes the estimate *up*).
    #[test]
    fn encoded_dice_tracks_plaintext_dice(
        key in any::<u64>(),
        a in "[A-Z]{1,14}",
        b in "[A-Z]{1,14}",
    ) {
        let params = EncodingParams { key, ..Default::default() };
        let encoder = RecordEncoder::new(params);
        let mut norm_a = String::new();
        let mut norm_b = String::new();
        normalize_into(&a, &mut norm_a);
        normalize_into(&b, &mut norm_b);
        let mut clk_a = Bitset::zero(params.bits);
        let mut clk_b = Bitset::zero(params.bits);
        encoder.encode_value(LAST_NAME_SLOT, &norm_a, &mut clk_a);
        encoder.encode_value(LAST_NAME_SLOT, &norm_b, &mut clk_b);

        let encoded = dice_bitset(&clk_a, &clk_b);
        let plain = plaintext_qgram_dice(&norm_a, &norm_b, params.q as usize);
        let error = (encoded - plain).abs();
        prop_assert!(
            error <= 0.15,
            "encoded {encoded:.4} vs plaintext {plain:.4} (|err| {error:.4}) for {norm_a:?} / {norm_b:?}"
        );
        // Identical values are exactly 1 in both spaces.
        if norm_a == norm_b {
            prop_assert_eq!(encoded, 1.0);
        }
    }
}

/// One splitmix64 step for deterministic test perturbations.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Flip one letter of `value` at a position derived from `salt`.
fn typo(value: &str, salt: u64) -> String {
    let mut bytes = value.as_bytes().to_vec();
    let pos = (splitmix64(salt) % bytes.len() as u64) as usize;
    let replacement = b'A' + (splitmix64(salt ^ 0xBEEF) % 26) as u8;
    bytes[pos] = if bytes[pos] == replacement {
        b'Z' - (replacement - b'A')
    } else {
        replacement
    };
    String::from_utf8(bytes).expect("ascii perturbation")
}

fn duplicate_pair(i: u64) -> (Row, Row) {
    let surnames = [
        "WILLIAMS", "JOHNSON", "RODRIGUEZ", "THOMPSON", "MARTINEZ", "ANDERSON", "PATTERSON",
        "RICHARDSON", "HENDERSON", "WASHINGTON", "KOWALCZYK", "FITZGERALD", "OYELARAN",
        "SCARBOROUGH", "VILLANUEVA", "MCALLISTER",
    ];
    let firsts = [
        "PATRICIA", "MICHAEL", "ELIZABETH", "CHRISTOPHER", "STEPHANIE", "JONATHAN", "KATHERINE",
        "ALEXANDER", "GWENDOLYN", "DEMETRIUS", "MARGUERITE", "THEODORE",
    ];
    let streets = [
        "MAPLE AVE", "OAK RIDGE RD", "CHURCH ST", "MILL CREEK LN", "JUNIPER CT", "BIRCHWOOD DR",
        "HARVEST MOON WAY", "PIEDMONT BLVD", "QUAIL HOLLOW RD", "SYCAMORE TRL",
    ];
    let cities = [
        "GREENSBORO", "ASHEVILLE", "WILMINGTON", "DURHAM", "FAYETTEVILLE", "HICKORY",
        "ELIZABETH CITY", "MOREHEAD", "KANNAPOLIS", "LUMBERTON", "STATESVILLE", "MOCKSVILLE",
    ];
    let last = format!(
        "{}{}",
        surnames[(i % surnames.len() as u64) as usize],
        splitmix64(i ^ 0x11) % 1000
    );
    let first = firsts[(splitmix64(i) % firsts.len() as u64) as usize];
    let street = format!(
        "{} {}",
        splitmix64(i ^ 0x22) % 9000 + 100,
        streets[(splitmix64(i ^ 0x33) % streets.len() as u64) as usize]
    );
    let city = cities[(splitmix64(i ^ 0x44) % cities.len() as u64) as usize];

    let mut a = Row::empty();
    a.set(NCID, format!("D{i}"));
    a.set(FIRST_NAME, first);
    a.set(LAST_NAME, &last);
    a.set(RES_STREET, &street);
    a.set(RES_CITY, city);

    // The duplicate carries one typo in the last name and one in the
    // street — the classic moderately-dirty duplicate.
    let mut b = Row::empty();
    b.set(NCID, format!("D{i}"));
    b.set(FIRST_NAME, first);
    b.set(LAST_NAME, typo(&last, i));
    b.set(RES_STREET, typo(&street, i ^ 0x5A5A));
    b.set(RES_CITY, city);
    (a, b)
}

/// Encoded-space blocking completeness over typo'd duplicates is
/// *measured* with a [`QualitySink`] and asserted against a floor —
/// never assumed. 300 clusters of 2 (one record typo'd), record-level
/// CLKs, default bit-sampling configuration.
#[test]
fn encoded_blocking_completeness_is_measured() {
    let encoder = RecordEncoder::new(EncodingParams::default());
    let mut scratch = EncodeScratch::new();
    let mut clks: Vec<Vec<u64>> = Vec::new();
    let mut gold: HashSet<Pair> = HashSet::new();
    for i in 0..300u64 {
        let (a, b) = duplicate_pair(i);
        gold.insert(Pair::new(clks.len(), clks.len() + 1));
        clks.push(encoder.encode_row(&a, &mut scratch).record_clk.words().to_vec());
        clks.push(encoder.encode_row(&b, &mut scratch).record_clk.words().to_vec());
    }

    let blocker = BitSampleBlocker::default();
    let mut sink = QualitySink::new(&gold);
    blocker.stream_into(&clks, &mut sink);

    let completeness = sink.completeness();
    assert!(
        completeness >= 0.9,
        "encoded blocking found {}/{} gold pairs (completeness {completeness:.3})",
        sink.gold_hits(),
        gold.len()
    );
    // And it must be selective: the distinct candidate set is a small
    // fraction of the full cross-product of 600 records (179700 pairs).
    let mut collector = PairCollector::new();
    blocker.stream_into(&clks, &mut collector);
    let distinct = collector.finish_count();
    assert!(
        distinct < 179_700 / 10,
        "{distinct} distinct candidates is not selective"
    );
}
