//! Property tests on the encoding's reproducibility contract: a fixed
//! `(key, params)` produces byte-identical encodings everywhere — on
//! any thread, and through a sharded ingest + publish + carve — while
//! different keys produce unlinkable encodings.

use nc_core::cluster::ClusterStore;
use nc_core::customize::{customize, customize_clusters, CustomDataset, CustomizeParams};
use nc_core::heterogeneity::Scope;
use nc_core::import::import_snapshot;
use nc_core::record::DedupPolicy;
use nc_core::snapshot::StoreSnapshot;
use nc_pprl::{render_encoded_record, EncodeScratch, EncodingParams, RecordEncoder};
use nc_shard::ShardedStore;
use nc_votergen::config::GeneratorConfig;
use nc_votergen::registry::Registry;
use nc_votergen::schema::{Row, FIRST_NAME, LAST_NAME, NCID, RES_STREET};
use nc_votergen::snapshot::{standard_calendar, Snapshot};
use proptest::prelude::*;

fn row(ncid: &str, first: &str, last: &str, street: &str) -> Row {
    let mut r = Row::empty();
    r.set(NCID, ncid);
    r.set(FIRST_NAME, first);
    r.set(LAST_NAME, last);
    r.set(RES_STREET, street);
    r
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Z]{1,12}"
}

proptest! {
    /// Same `(key, params)` on independent encoders on independent
    /// threads: byte-identical rendered lines.
    #[test]
    fn encoding_is_identical_across_threads(
        key in any::<u64>(),
        first in name_strategy(),
        last in name_strategy(),
        street in "[A-Z0-9 ]{0,20}",
    ) {
        let params = EncodingParams { key, ..Default::default() };
        let r = row("C1", &first, &last, &street);
        let here = {
            let encoder = RecordEncoder::new(params);
            let mut scratch = EncodeScratch::new();
            render_encoded_record(0, &encoder.encode_row(&r, &mut scratch))
        };
        let threads: Vec<String> = std::thread::scope(|scope| {
            (0..2)
                .map(|_| {
                    let r = &r;
                    scope.spawn(move || {
                        let encoder = RecordEncoder::new(params);
                        let mut scratch = EncodeScratch::new();
                        render_encoded_record(0, &encoder.encode_row(r, &mut scratch))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("encoder thread"))
                .collect()
        });
        for line in threads {
            prop_assert_eq!(&line, &here);
        }
    }

    /// Different keys never produce linkable encodings: the NCID
    /// tokens differ and the record CLKs differ (beyond-chance
    /// collisions would need 64 matching bits resp. hundreds).
    #[test]
    fn different_keys_are_unlinkable(
        key_a in any::<u64>(),
        key_b in any::<u64>(),
        first in name_strategy(),
        last in name_strategy(),
    ) {
        prop_assume!(key_a != key_b);
        let r = row("C7", &first, &last, "12 OAK ST");
        let mut scratch = EncodeScratch::new();
        let ea = RecordEncoder::new(EncodingParams { key: key_a, ..Default::default() })
            .encode_row(&r, &mut scratch);
        let eb = RecordEncoder::new(EncodingParams { key: key_b, ..Default::default() })
            .encode_row(&r, &mut scratch);
        prop_assert_ne!(ea.ncid_token, eb.ncid_token);
        prop_assert_ne!(ea.record_clk, eb.record_clk);
    }
}

fn generate_snapshots(seed: u64, population: usize, count: usize) -> Vec<Snapshot> {
    let mut registry = Registry::new(GeneratorConfig {
        seed,
        initial_population: population,
        ..Default::default()
    });
    standard_calendar()
        .iter()
        .take(count)
        .map(|info| registry.generate_snapshot(info))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The full export path is shard-count independent: ingesting the
    /// same snapshots through 1/2/3/8 shards, publishing, carving and
    /// encoding yields byte-identical encoded lines.
    #[test]
    fn sharded_publish_encodes_identically(
        seed in 0u64..10_000,
        key in any::<u64>(),
        population in 40usize..70,
    ) {
        let snapshots = generate_snapshots(seed, population, 2);
        let params = CustomizeParams::nc2(20, 8, seed);
        let encoding = EncodingParams { key, ..Default::default() };

        // Unsharded reference: import, capture, carve, encode.
        let mut plain = ClusterStore::new();
        for snap in &snapshots {
            import_snapshot(&mut plain, snap, DedupPolicy::Trimmed, 1);
        }
        let reference = StoreSnapshot::capture(&plain, 1);
        let entropy = reference.entropy_scorer(Scope::Person);
        let reference_lines = encode_carve(&customize(&plain, &entropy, &params), &encoding);
        prop_assert!(!reference_lines.is_empty(), "carve produced no records");

        for shards in [2usize, 3, 8] {
            let mut sharded = ShardedStore::new(shards);
            for snap in &snapshots {
                sharded.ingest_snapshot(snap, DedupPolicy::Trimmed, 1);
            }
            // Carve and encode straight off the sharded publish.
            let published = sharded.publish(1);
            let carved = customize_clusters(
                published.clusters(),
                &published.entropy_scorer(Scope::Person),
                &params,
            );
            let lines = encode_carve(&carved, &encoding);
            prop_assert_eq!(&lines, &reference_lines, "shards={}", shards);
        }
    }
}

/// Encode every record of a carved dataset as its rendered line, with
/// the gold NCID token taken from the cluster label.
fn encode_carve(carved: &CustomDataset, encoding: &EncodingParams) -> Vec<String> {
    let encoder = RecordEncoder::new(*encoding);
    let mut scratch = EncodeScratch::new();
    let mut lines = Vec::new();
    for (cluster, c) in carved.clusters.iter().enumerate() {
        let token = encoder.ncid_token(&c.ncid);
        for record in &c.records {
            let mut encoded = encoder.encode_row(record, &mut scratch);
            encoded.ncid_token = token;
            lines.push(render_encoded_record(cluster, &encoded));
        }
    }
    lines
}
