//! `nc-pprl`: privacy-preserving record-linkage encodings.
//!
//! A major class of real duplicate-detection deployments — national
//! healthcare and registry settings — cannot compare plaintext records
//! at all: each data holder encodes its records under a shared secret
//! key and linkage runs entirely in the encoded space. This crate
//! turns any carved voter dataset into that regime's benchmark
//! artifact:
//!
//! * [`hashing`] — the HMAC-style keyed SplitMix64 salt chain every
//!   encoder hash descends from: reproducible for a fixed
//!   `(key, params)`, unlinkable across keys.
//! * [`bitset`] — fixed-width `u64`-word bitsets, the wire and compute
//!   representation of CLK encodings (canonical hex rendering).
//! * [`encode`] — field-level encoders: per-field **CLK Bloom
//!   filters** (q-grams of the normalized value hashed by `k` keyed
//!   hash functions under the double-hashing scheme) for the
//!   error-prone fields, **keyed exact-hash tokens** for match-only
//!   fields, a composite record-level CLK for blocking, and the
//!   labeled JSON-line rendering served by `POST /carve`.
//! * [`kernels`] — allocation-free encoded-space similarity: Dice,
//!   Jaccard and Hamming over the packed words via popcount, so
//!   scoring and detection never decode anything.
//!
//! The threat model is deliberately modest: CLKs leak gram-frequency
//! information and this crate's mixing function is not a cryptographic
//! PRF — the encodings make *benchmark datasets* for
//! privacy-preserving linkage research, not a privacy product.
//! DESIGN.md §15 spells out the parameters, the leakage and the serve
//! integration (encoded carves, cache fingerprints, invalidation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod encode;
pub mod hashing;
pub mod kernels;

pub use bitset::Bitset;
pub use encode::{
    render_encoded_record, EncodeScratch, EncodedField, EncodedRecord, EncodingParams, FieldKind,
    FieldPlan, RecordEncoder, ENCODING_VERSION,
};
