//! Fixed-width bitsets stored as `u64` words.
//!
//! A [`Bitset`] is the wire and compute representation of one CLK
//! Bloom-filter encoding: `bits / 64` machine words, bit `i` living in
//! word `i / 64` at position `i % 64`. The similarity kernels in
//! [`crate::kernels`] operate directly on the word slices, so scoring
//! never touches a per-bit representation.

use std::fmt::Write as _;

/// A fixed-width bitset. Width is always a multiple of 64.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    /// An all-zero bitset of `bits` width.
    ///
    /// # Panics
    /// When `bits` is zero or not a multiple of 64.
    pub fn zero(bits: u32) -> Self {
        assert!(bits > 0 && bits.is_multiple_of(64), "width must be a positive multiple of 64");
        Bitset {
            words: vec![0u64; bits as usize / 64],
        }
    }

    /// Clear every bit, keeping the width (buffer-reuse entry point).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Width in bits.
    pub fn bits(&self) -> u32 {
        (self.words.len() * 64) as u32
    }

    /// Set bit `idx` (callers reduce modulo the width beforehand).
    #[inline]
    pub fn set(&mut self, idx: u32) {
        debug_assert!((idx as usize) < self.words.len() * 64);
        self.words[idx as usize / 64] |= 1u64 << (idx % 64);
    }

    /// Whether bit `idx` is set.
    #[inline]
    pub fn get(&self, idx: u32) -> bool {
        self.words[idx as usize / 64] >> (idx % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// The backing words, low bits first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// OR another bitset of the same width into this one.
    ///
    /// # Panics
    /// When the widths differ.
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.words.len(), other.words.len(), "width mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Append the canonical lowercase-hex rendering (16 digits per
    /// word, word 0 first) to `out`.
    pub fn hex_into(&self, out: &mut String) {
        out.reserve(self.words.len() * 16);
        for word in &self.words {
            let _ = write!(out, "{word:016x}");
        }
    }

    /// The canonical hex rendering as a fresh string.
    pub fn to_hex(&self) -> String {
        let mut out = String::new();
        self.hex_into(&mut out);
        out
    }

    /// Parse the canonical hex rendering produced by [`Bitset::to_hex`].
    pub fn from_hex(hex: &str) -> Result<Self, String> {
        if hex.is_empty() || !hex.len().is_multiple_of(16) {
            return Err(format!(
                "bitset hex must be a positive multiple of 16 digits, got {}",
                hex.len()
            ));
        }
        let mut words = Vec::with_capacity(hex.len() / 16);
        for i in (0..hex.len()).step_by(16) {
            let digits = hex
                .get(i..i + 16)
                .ok_or_else(|| "bitset hex must be ASCII".to_string())?;
            let word = u64::from_str_radix(digits, 16)
                .map_err(|e| format!("bad bitset hex word at {i}: {e}"))?;
            words.push(word);
        }
        Ok(Bitset { words })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_ones() {
        let mut b = Bitset::zero(128);
        assert_eq!(b.bits(), 128);
        assert_eq!(b.ones(), 0);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(127);
        assert_eq!(b.ones(), 4);
        assert!(b.get(63) && b.get(64));
        assert!(!b.get(1));
        b.clear();
        assert_eq!(b.ones(), 0);
        assert_eq!(b.bits(), 128);
    }

    #[test]
    fn union_ors_words() {
        let mut a = Bitset::zero(64);
        let mut b = Bitset::zero(64);
        a.set(1);
        b.set(2);
        a.union_with(&b);
        assert!(a.get(1) && a.get(2));
        assert_eq!(a.ones(), 2);
    }

    #[test]
    fn hex_round_trips() {
        let mut b = Bitset::zero(192);
        for idx in [0, 5, 64, 100, 191] {
            b.set(idx);
        }
        let hex = b.to_hex();
        assert_eq!(hex.len(), 48);
        assert_eq!(Bitset::from_hex(&hex).unwrap(), b);
        assert!(Bitset::from_hex("xyz").is_err());
        assert!(Bitset::from_hex("").is_err());
        assert!(Bitset::from_hex(&hex[..8]).is_err());
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn odd_width_panics() {
        let _ = Bitset::zero(100);
    }
}
