//! Encoded-space similarity kernels: Dice, Jaccard and Hamming over
//! `u64`-word bitsets.
//!
//! These are the PPRL counterparts of the plaintext kernels in
//! `nc-similarity`: scores in `[0, 1]` with `1` meaning identical,
//! computed entirely from popcounts over the packed words. Unlike the
//! string kernels they need no working memory at all — the
//! `nc-similarity` `Scratch` convention ("the allocation-free entry
//! point is the hot path") is satisfied trivially, so there is no
//! `*_with` variant: the plain functions *are* the allocation-free
//! form, and a scoring loop over millions of pairs performs zero heap
//! traffic.
//!
//! All pairwise kernels panic on width mismatch — comparing encodings
//! of different widths is always a configuration bug, never a data
//! condition.

use crate::bitset::Bitset;

/// Popcount of the intersection (`a AND b`).
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "bitset width mismatch");
    a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum()
}

/// Popcount of the union (`a OR b`).
#[inline]
pub fn or_count(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "bitset width mismatch");
    a.iter().zip(b).map(|(x, y)| (x | y).count_ones()).sum()
}

/// Popcount of the symmetric difference (`a XOR b`) — the Hamming
/// distance in bits.
#[inline]
pub fn xor_count(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "bitset width mismatch");
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// Dice coefficient `2·|a∧b| / (|a| + |b|)`. Two empty encodings are
/// identical by convention (`1.0`) — both values hashed to nothing.
#[inline]
pub fn dice(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len(), "bitset width mismatch");
    let total = a.iter().map(|w| w.count_ones()).sum::<u32>()
        + b.iter().map(|w| w.count_ones()).sum::<u32>();
    if total == 0 {
        return 1.0;
    }
    f64::from(2 * and_count(a, b)) / f64::from(total)
}

/// Jaccard coefficient `|a∧b| / |a∨b|`. Two empty encodings are `1.0`.
#[inline]
pub fn jaccard(a: &[u64], b: &[u64]) -> f64 {
    let union = or_count(a, b);
    if union == 0 {
        return 1.0;
    }
    f64::from(and_count(a, b)) / f64::from(union)
}

/// Hamming similarity `1 − xor/width`: the fraction of bit positions
/// that agree. Unlike Dice/Jaccard this counts agreeing zeros, so it
/// is the kernel of choice for near-duplicate *filtering* rather than
/// graded similarity.
#[inline]
pub fn hamming_sim(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() {
        assert!(b.is_empty(), "bitset width mismatch");
        return 1.0;
    }
    1.0 - f64::from(xor_count(a, b)) / ((a.len() * 64) as f64)
}

/// [`dice`] over [`Bitset`]s (width-checked by the slice kernel).
#[inline]
pub fn dice_bitset(a: &Bitset, b: &Bitset) -> f64 {
    dice(a.words(), b.words())
}

/// [`jaccard`] over [`Bitset`]s.
#[inline]
pub fn jaccard_bitset(a: &Bitset, b: &Bitset) -> f64 {
    jaccard(a.words(), b.words())
}

/// [`hamming_sim`] over [`Bitset`]s.
#[inline]
pub fn hamming_bitset(a: &Bitset, b: &Bitset) -> f64 {
    hamming_sim(a.words(), b.words())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(bits: u32, set: &[u32]) -> Bitset {
        let mut b = Bitset::zero(bits);
        for &i in set {
            b.set(i);
        }
        b
    }

    #[test]
    fn identical_bitsets_score_one() {
        let a = bs(128, &[1, 64, 100]);
        assert_eq!(dice_bitset(&a, &a), 1.0);
        assert_eq!(jaccard_bitset(&a, &a), 1.0);
        assert_eq!(hamming_bitset(&a, &a), 1.0);
    }

    #[test]
    fn empty_bitsets_are_identical_by_convention() {
        let a = Bitset::zero(64);
        assert_eq!(dice_bitset(&a, &a), 1.0);
        assert_eq!(jaccard_bitset(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_bitsets_score_zero() {
        let a = bs(128, &[0, 1]);
        let b = bs(128, &[2, 3]);
        assert_eq!(dice_bitset(&a, &b), 0.0);
        assert_eq!(jaccard_bitset(&a, &b), 0.0);
        assert_eq!(hamming_bitset(&a, &b), 1.0 - 4.0 / 128.0);
    }

    #[test]
    fn partial_overlap_matches_hand_computation() {
        // |a| = 3, |b| = 2, |a∧b| = 1, |a∨b| = 4, xor = 3.
        let a = bs(64, &[0, 1, 2]);
        let b = bs(64, &[2, 63]);
        assert_eq!(dice_bitset(&a, &b), 2.0 / 5.0);
        assert_eq!(jaccard_bitset(&a, &b), 1.0 / 4.0);
        assert_eq!(hamming_bitset(&a, &b), 1.0 - 3.0 / 64.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = dice_bitset(&Bitset::zero(64), &Bitset::zero(128));
    }
}
