//! Keyed hashing for linkage encodings.
//!
//! Every hash an encoder computes descends from one `u64` linkage key
//! through an HMAC-style keyed [SplitMix64] chain: the key is mixed in
//! both before and after the data is absorbed, so neither prefix nor
//! suffix extension can relate digests across keys, and a fixed
//! `(key, label)` pair always derives the same salt on every thread,
//! process and platform (the chain is pure integer arithmetic — no
//! pointer, endianness or `HashMap`-order dependence).
//!
//! This is **not** a cryptographic MAC. SplitMix64 is an invertible
//! mixing function, not a PRF with a security proof; the construction
//! buys *unlinkability by obscurity of the key* for benchmark datasets,
//! which is exactly the threat model of the encodings themselves (see
//! DESIGN.md §15). Anyone needing real privacy guarantees must swap in
//! a keyed cryptographic hash behind the same derivation interface.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// One SplitMix64 mixing step.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain-separation constant folded into every chain so pprl digests
/// can never collide with other SplitMix64 users in the workspace.
const DOMAIN: u64 = 0x6E63_2D70_7072_6C31; // "nc-pprl1"

/// Absorb a byte string into a running chain state: full little-endian
/// `u64` words, then the tail bytes, then the length (so `"AB","C"`
/// and `"A","BC"` chains differ).
#[inline]
fn absorb(mut state: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        state = splitmix64(state ^ word);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut word = [0u8; 8];
        word[..rest.len()].copy_from_slice(rest);
        state = splitmix64(state ^ u64::from_le_bytes(word));
    }
    splitmix64(state ^ (bytes.len() as u64))
}

/// Derive a salt from `key` and a sequence of labels (field name,
/// role, parameter rendering …). HMAC-style: the key enters the chain
/// first and is re-mixed after the labels, so a derived salt reveals
/// nothing usable about sibling salts without the key.
pub fn derive_salt(key: u64, labels: &[&[u8]]) -> u64 {
    let mut state = splitmix64(DOMAIN ^ key);
    for label in labels {
        state = absorb(state, label);
    }
    splitmix64(state ^ key.rotate_left(32))
}

/// Hash a value under a derived salt (the per-gram / per-value hash).
#[inline]
pub fn keyed_hash(salt: u64, bytes: &[u8]) -> u64 {
    splitmix64(absorb(splitmix64(DOMAIN ^ salt), bytes) ^ salt.rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_label_sensitive() {
        let a = derive_salt(42, &[b"last_name", b"h1"]);
        assert_eq!(a, derive_salt(42, &[b"last_name", b"h1"]));
        assert_ne!(a, derive_salt(42, &[b"last_name", b"h2"]));
        assert_ne!(a, derive_salt(42, &[b"first_name", b"h1"]));
        assert_ne!(a, derive_salt(43, &[b"last_name", b"h1"]));
    }

    #[test]
    fn label_boundaries_matter() {
        assert_ne!(
            derive_salt(7, &[b"AB", b"C"]),
            derive_salt(7, &[b"A", b"BC"])
        );
        assert_ne!(derive_salt(7, &[b"AB"]), derive_salt(7, &[b"AB", b""]));
    }

    #[test]
    fn keyed_hash_varies_with_salt_and_input() {
        let h = keyed_hash(1, b"SM");
        assert_eq!(h, keyed_hash(1, b"SM"));
        assert_ne!(h, keyed_hash(2, b"SM"));
        assert_ne!(h, keyed_hash(1, b"SN"));
        // Length is absorbed: a prefix is not a truncation fixed point.
        assert_ne!(keyed_hash(1, b""), keyed_hash(1, b"\0"));
    }
}
