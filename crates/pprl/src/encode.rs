//! Field-level record encoders: CLK Bloom filters and keyed
//! exact-hash tokens.
//!
//! A [`RecordEncoder`] maps one voter [`Row`] into an
//! [`EncodedRecord`] under a fixed [`EncodingParams`]:
//!
//! * **CLK fields** (names, street, city — anything duplicates
//!   misspell): the normalized value's q-grams are hashed by `k`
//!   keyed hash functions into a `bits`-wide Bloom filter, using the
//!   double-hashing scheme `idx_i = (h1 + i·h2) mod bits` so only two
//!   base hashes are computed per gram. Encoded-space Dice over two
//!   CLKs tracks plaintext q-gram Dice (property-tested in
//!   `tests/fidelity.rs`).
//! * **Exact fields** (codes, zip, phone — fields matched only on
//!   equality): one keyed 64-bit hash of the normalized value.
//!   Equality is preserved under a fixed key, nothing else.
//! * Everything else (meta dates, derived age fields, the redundant
//!   description columns) is dropped from the encoding entirely.
//!
//! Every hash descends from the linkage key through the HMAC-style
//! salt chain in [`crate::hashing`]: encodings are byte-reproducible
//! for a fixed `(key, params)` and unlinkable across keys. The salts
//! also absorb the parameter rendering, so the *same* key with
//! different `(bits, k, q)` produces unrelated bit patterns rather
//! than truncations of each other.

use nc_votergen::schema::{
    self, AttrId, Row, BIRTH_PLACE, COUNTY_ID, DRIVERS_LIC, FIRST_NAME, FULL_PHONE, LAST_NAME,
    MAIL_ADDR1, MIDL_NAME, NAME_SUFX, PARTY_CD, RACE_CODE, RES_CITY, RES_STREET, SEX_CODE,
    ZIP_CODE,
};

use crate::bitset::Bitset;
use crate::hashing::{derive_salt, keyed_hash};

/// Version tag baked into every salt derivation. Bump it when the
/// encoding semantics change so old and new encodings never mix.
pub const ENCODING_VERSION: &str = "clk1";

/// The reproducibility contract of one encoded dataset: the linkage
/// key plus the CLK geometry. Two encoders with equal params produce
/// byte-identical encodings for the same rows; differing in any field
/// (including the key) produces unrelated encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodingParams {
    /// The linkage key. Holders of the key can re-encode plaintext to
    /// probe membership; everyone else sees only bit patterns.
    pub key: u64,
    /// CLK width in bits (a positive multiple of 64, at most 65536).
    pub bits: u32,
    /// Hash functions per q-gram (`k` in Bloom-filter terms), 1..=64.
    pub hashes: u32,
    /// Gram size for the CLK fields, 1..=8 (2 = the PPRL-standard
    /// bigram choice).
    pub q: u32,
}

impl Default for EncodingParams {
    fn default() -> Self {
        EncodingParams {
            key: 0,
            bits: 1024,
            hashes: 10,
            q: 2,
        }
    }
}

impl EncodingParams {
    /// Validate the geometry; the error names the offending knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.bits == 0 || !self.bits.is_multiple_of(64) || self.bits > 65_536 {
            return Err(format!(
                "bits must be a positive multiple of 64 up to 65536, got {}",
                self.bits
            ));
        }
        if self.hashes == 0 || self.hashes > 64 {
            return Err(format!("hashes must be in 1..=64, got {}", self.hashes));
        }
        if self.q == 0 || self.q > 8 {
            return Err(format!("q must be in 1..=8, got {}", self.q));
        }
        Ok(())
    }

    /// The canonical parameter rendering, used both as a salt label
    /// (so geometry changes re-derive every salt) and by the serve
    /// layer's cache-fingerprint grammar.
    pub fn canonical(&self) -> String {
        format!(
            "enc={}|key={}|bits={}|k={}|q={}",
            ENCODING_VERSION, self.key, self.bits, self.hashes, self.q
        )
    }
}

/// How one attribute is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// q-gram CLK Bloom filter (fuzzy-comparable in encoded space).
    Clk,
    /// Keyed exact-hash token (equality-comparable only).
    Exact,
}

/// The per-field encoding plan: which attributes are encoded and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldPlan {
    fields: Vec<(AttrId, FieldKind)>,
}

impl FieldPlan {
    /// The default voter plan: CLKs over the error-prone free-text
    /// fields, exact tokens over the code-like match-only fields,
    /// everything meta/derived dropped.
    pub fn voter_default() -> Self {
        FieldPlan {
            fields: vec![
                (LAST_NAME, FieldKind::Clk),
                (FIRST_NAME, FieldKind::Clk),
                (MIDL_NAME, FieldKind::Clk),
                (RES_STREET, FieldKind::Clk),
                (RES_CITY, FieldKind::Clk),
                (MAIL_ADDR1, FieldKind::Clk),
                (NAME_SUFX, FieldKind::Exact),
                (SEX_CODE, FieldKind::Exact),
                (RACE_CODE, FieldKind::Exact),
                (BIRTH_PLACE, FieldKind::Exact),
                (ZIP_CODE, FieldKind::Exact),
                (COUNTY_ID, FieldKind::Exact),
                (FULL_PHONE, FieldKind::Exact),
                (PARTY_CD, FieldKind::Exact),
                (DRIVERS_LIC, FieldKind::Exact),
            ],
        }
    }

    /// A custom plan. Panics when an attribute id is out of schema
    /// range or listed twice — plans are static configuration.
    pub fn new(fields: Vec<(AttrId, FieldKind)>) -> Self {
        let mut seen = [false; schema::NUM_ATTRS];
        for &(attr, _) in &fields {
            assert!(attr < schema::NUM_ATTRS, "attribute id out of range");
            assert!(!seen[attr], "attribute listed twice in the plan");
            seen[attr] = true;
        }
        FieldPlan { fields }
    }

    /// The planned fields in encoding order.
    pub fn fields(&self) -> &[(AttrId, FieldKind)] {
        &self.fields
    }
}

/// One encoded attribute value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodedField {
    /// A CLK Bloom-filter encoding.
    Clk(Bitset),
    /// A keyed exact-hash token.
    Exact(u64),
}

/// One encoded record: the linkage token of its NCID, the composite
/// record-level CLK (the OR of every field CLK — the classic
/// "cryptographic long-term key" used for blocking), and the per-field
/// encodings in plan order. Empty attribute values are omitted, like
/// the plaintext JSON rendering omits them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedRecord {
    /// Keyed exact-hash of the record's NCID. Equal tokens ⇔ equal
    /// NCIDs under one key; across keys the tokens are unlinkable.
    pub ncid_token: u64,
    /// OR of every present field CLK — the blocking/record-level CLK.
    pub record_clk: Bitset,
    /// Per-field encodings, `(attr, encoding)` in plan order, empty
    /// values omitted.
    pub fields: Vec<(AttrId, EncodedField)>,
}

/// Reusable working memory for the encoder: the normalization buffer.
/// One per thread, like `nc_similarity::Scratch`.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    norm: String,
}

impl EncodeScratch {
    /// An empty scratch; the buffer grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-field derived salts.
#[derive(Debug, Clone, Copy)]
struct FieldSalts {
    h1: u64,
    h2: u64,
}

/// The record encoder: a [`FieldPlan`] with every salt pre-derived.
#[derive(Debug, Clone)]
pub struct RecordEncoder {
    params: EncodingParams,
    plan: FieldPlan,
    salts: Vec<FieldSalts>,
    ncid_salt: u64,
}

impl RecordEncoder {
    /// An encoder over the default voter plan.
    ///
    /// # Panics
    /// When the parameters fail [`EncodingParams::validate`].
    pub fn new(params: EncodingParams) -> Self {
        Self::with_plan(params, FieldPlan::voter_default())
    }

    /// An encoder over a custom plan.
    pub fn with_plan(params: EncodingParams, plan: FieldPlan) -> Self {
        if let Err(why) = params.validate() {
            panic!("invalid encoding parameters: {why}");
        }
        let geometry = params.canonical();
        let salts = plan
            .fields()
            .iter()
            .map(|&(attr, _)| {
                let name = schema::SCHEMA[attr].name.as_bytes();
                FieldSalts {
                    h1: derive_salt(params.key, &[geometry.as_bytes(), name, b"h1"]),
                    h2: derive_salt(params.key, &[geometry.as_bytes(), name, b"h2"]),
                }
            })
            .collect();
        let ncid_salt = derive_salt(params.key, &[geometry.as_bytes(), b"ncid", b"token"]);
        RecordEncoder {
            params,
            plan,
            salts,
            ncid_salt,
        }
    }

    /// The parameters this encoder was built with.
    pub fn params(&self) -> &EncodingParams {
        &self.params
    }

    /// The field plan this encoder applies.
    pub fn plan(&self) -> &FieldPlan {
        &self.plan
    }

    /// The linkage token of an NCID (also used for gold labels).
    pub fn ncid_token(&self, ncid: &str) -> u64 {
        keyed_hash(self.ncid_salt, ncid.trim().as_bytes())
    }

    /// Encode one row.
    pub fn encode_row(&self, row: &Row, scratch: &mut EncodeScratch) -> EncodedRecord {
        let mut fields = Vec::with_capacity(self.plan.fields().len());
        let mut record_clk = Bitset::zero(self.params.bits);
        for (&(attr, kind), salts) in self.plan.fields().iter().zip(&self.salts) {
            normalize_into(&row.values[attr], &mut scratch.norm);
            if scratch.norm.is_empty() {
                continue;
            }
            match kind {
                FieldKind::Clk => {
                    let mut clk = Bitset::zero(self.params.bits);
                    self.clk_into(salts, &scratch.norm, &mut clk);
                    record_clk.union_with(&clk);
                    fields.push((attr, EncodedField::Clk(clk)));
                }
                FieldKind::Exact => {
                    fields.push((
                        attr,
                        EncodedField::Exact(keyed_hash(salts.h1, scratch.norm.as_bytes())),
                    ));
                }
            }
        }
        EncodedRecord {
            ncid_token: self.ncid_token(row.ncid()),
            record_clk,
            fields,
        }
    }

    /// Encode one already-normalized value into `out` (cleared first)
    /// under the salts of plan position `field_index`. Exposed so the
    /// fidelity suite and benches can encode single values without a
    /// whole row.
    pub fn encode_value(&self, field_index: usize, normalized: &str, out: &mut Bitset) {
        out.clear();
        self.clk_into(&self.salts[field_index], normalized, out);
    }

    /// Set the CLK bits of every q-gram of `normalized`.
    fn clk_into(&self, salts: &FieldSalts, normalized: &str, out: &mut Bitset) {
        let bits = self.params.bits;
        for_each_gram(normalized, self.params.q as usize, |gram| {
            let h1 = keyed_hash(salts.h1, gram);
            // Odd h2 is never ≡ 0 mod the (even) width, so the k
            // probes always span k distinct residues when k ≤ bits.
            let h2 = keyed_hash(salts.h2, gram) | 1;
            for i in 0..u64::from(self.params.hashes) {
                let idx = (h1.wrapping_add(i.wrapping_mul(h2)) % u64::from(bits)) as u32;
                out.set(idx);
            }
        });
    }
}

/// Blocking-style normalization: trim + uppercase, with an ASCII fast
/// path. Matches the normalization the detection index applies, so
/// encoded-space and plaintext pipelines see the same tokens.
pub fn normalize_into(raw: &str, out: &mut String) {
    out.clear();
    let trimmed = raw.trim();
    if trimmed.is_ascii() {
        out.reserve(trimmed.len());
        for &b in trimmed.as_bytes() {
            out.push(b.to_ascii_uppercase() as char);
        }
    } else {
        for c in trimmed.chars() {
            out.extend(c.to_uppercase());
        }
    }
}

/// Visit every q-gram of a normalized value as a byte slice: windows
/// of `q` characters (byte windows on the ASCII fast path), the whole
/// value when shorter than `q`, nothing when empty. Same gram
/// semantics as the detection index, so plaintext q-gram Dice and
/// encoded Dice are computed over the same gram sets.
pub fn for_each_gram(value: &str, q: usize, mut f: impl FnMut(&[u8])) {
    let q = q.max(1);
    if value.is_empty() {
        return;
    }
    let bytes = value.as_bytes();
    if value.is_ascii() {
        if bytes.len() < q {
            f(bytes);
        } else {
            for w in bytes.windows(q) {
                f(w);
            }
        }
        return;
    }
    let bounds: Vec<usize> = value
        .char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(value.len()))
        .collect();
    let chars = bounds.len() - 1;
    if chars < q {
        f(bytes);
    } else {
        for s in 0..=(chars - q) {
            f(&bytes[bounds[s]..bounds[s + q]]);
        }
    }
}

/// Plaintext q-gram *set* Dice between two already-normalized values:
/// `2·|A∩B| / (|A| + |B|)` over the distinct-gram sets — the quantity
/// a CLK Dice estimates. The fidelity property suite bounds the
/// absolute error between this and [`crate::kernels::dice`].
pub fn plaintext_qgram_dice(a: &str, b: &str, q: usize) -> f64 {
    let mut ga: Vec<Vec<u8>> = Vec::new();
    for_each_gram(a, q, |g| ga.push(g.to_vec()));
    ga.sort_unstable();
    ga.dedup();
    let mut gb: Vec<Vec<u8>> = Vec::new();
    for_each_gram(b, q, |g| gb.push(g.to_vec()));
    gb.sort_unstable();
    gb.dedup();
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.iter().filter(|g| gb.binary_search(g).is_ok()).count();
    2.0 * inter as f64 / (ga.len() + gb.len()) as f64
}

/// Render one encoded record as a labeled JSON line:
/// `{"cluster":N,"ncid_token":"…","record_clk":"…","clk":{…},"exact":{…}}`.
/// Hand-rolled like every other renderer in the workspace; all values
/// are hex or decimal, so no JSON escaping is ever needed.
pub fn render_encoded_record(cluster: usize, record: &EncodedRecord) -> String {
    let mut line = String::with_capacity(64 + record.record_clk.words().len() * 20);
    line.push_str("{\"cluster\":");
    line.push_str(&cluster.to_string());
    line.push_str(",\"ncid_token\":\"");
    line.push_str(&format!("{:016x}", record.ncid_token));
    line.push_str("\",\"record_clk\":\"");
    record.record_clk.hex_into(&mut line);
    line.push('"');

    let mut first = true;
    for (attr, field) in &record.fields {
        if let EncodedField::Clk(clk) = field {
            line.push_str(if first { ",\"clk\":{" } else { "," });
            first = false;
            line.push('"');
            line.push_str(schema::SCHEMA[*attr].name);
            line.push_str("\":\"");
            clk.hex_into(&mut line);
            line.push('"');
        }
    }
    if !first {
        line.push('}');
    }

    let mut first = true;
    for (attr, field) in &record.fields {
        if let EncodedField::Exact(token) = field {
            line.push_str(if first { ",\"exact\":{" } else { "," });
            first = false;
            line.push('"');
            line.push_str(schema::SCHEMA[*attr].name);
            line.push_str("\":\"");
            line.push_str(&format!("{token:016x}"));
            line.push('"');
        }
    }
    if !first {
        line.push('}');
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_votergen::schema::{AGE, FIRST_NAME, LAST_NAME, NCID, SEX_CODE};

    fn row(ncid: &str, first: &str, last: &str) -> Row {
        let mut r = Row::empty();
        r.set(NCID, ncid);
        r.set(FIRST_NAME, first);
        r.set(LAST_NAME, last);
        r.set(SEX_CODE, "F");
        r
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut p = EncodingParams::default();
        assert!(p.validate().is_ok());
        p.bits = 100;
        assert!(p.validate().is_err());
        p.bits = 0;
        assert!(p.validate().is_err());
        p = EncodingParams {
            hashes: 0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        p = EncodingParams {
            q: 9,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn encoding_is_deterministic_for_a_fixed_key() {
        let enc = RecordEncoder::new(EncodingParams::default());
        let mut s1 = EncodeScratch::new();
        let mut s2 = EncodeScratch::new();
        let r = row("C1", "PATRICIA", "SMITH");
        assert_eq!(enc.encode_row(&r, &mut s1), enc.encode_row(&r, &mut s2));
    }

    #[test]
    fn different_keys_produce_unrelated_encodings() {
        let a = RecordEncoder::new(EncodingParams {
            key: 1,
            ..Default::default()
        });
        let b = RecordEncoder::new(EncodingParams {
            key: 2,
            ..Default::default()
        });
        let mut scratch = EncodeScratch::new();
        let r = row("C1", "PATRICIA", "SMITH");
        let ea = a.encode_row(&r, &mut scratch);
        let eb = b.encode_row(&r, &mut scratch);
        assert_ne!(ea.ncid_token, eb.ncid_token);
        assert_ne!(ea.record_clk, eb.record_clk);
    }

    #[test]
    fn geometry_changes_rederive_salts_not_truncate() {
        let wide = RecordEncoder::new(EncodingParams {
            bits: 2048,
            ..Default::default()
        });
        let narrow = RecordEncoder::new(EncodingParams {
            bits: 1024,
            ..Default::default()
        });
        let mut scratch = EncodeScratch::new();
        let r = row("C1", "PATRICIA", "SMITH");
        let ew = wide.encode_row(&r, &mut scratch);
        let en = narrow.encode_row(&r, &mut scratch);
        // Same key, different width: even the exact-hash tokens (which
        // do not depend on the width arithmetically) must differ,
        // because the geometry is absorbed into every salt.
        assert_ne!(ew.ncid_token, en.ncid_token);
    }

    #[test]
    fn empty_fields_are_omitted() {
        let enc = RecordEncoder::new(EncodingParams::default());
        let mut scratch = EncodeScratch::new();
        let r = row("C1", "", "SMITH");
        let e = enc.encode_row(&r, &mut scratch);
        assert!(e.fields.iter().all(|&(attr, _)| attr != FIRST_NAME));
        assert!(e.fields.iter().any(|&(attr, _)| attr == LAST_NAME));
    }

    #[test]
    fn similar_values_share_more_bits_than_dissimilar() {
        let enc = RecordEncoder::new(EncodingParams::default());
        let last = 0usize; // plan position of last_name
        let mut a = Bitset::zero(1024);
        let mut b = Bitset::zero(1024);
        let mut c = Bitset::zero(1024);
        enc.encode_value(last, "WILLIAMS", &mut a);
        enc.encode_value(last, "WILLIAMSON", &mut b);
        enc.encode_value(last, "KRZYZEWSKI", &mut c);
        let near = crate::kernels::dice_bitset(&a, &b);
        let far = crate::kernels::dice_bitset(&a, &c);
        assert!(near > far, "near {near} vs far {far}");
        assert!(near > 0.7, "near {near}");
        assert!(far < 0.35, "far {far}");
    }

    #[test]
    fn record_clk_is_the_union_of_field_clks() {
        let enc = RecordEncoder::new(EncodingParams::default());
        let mut scratch = EncodeScratch::new();
        let e = enc.encode_row(&row("C1", "PATRICIA", "SMITH"), &mut scratch);
        let mut union = Bitset::zero(1024);
        for (_, field) in &e.fields {
            if let EncodedField::Clk(clk) = field {
                union.union_with(clk);
            }
        }
        assert_eq!(union, e.record_clk);
    }

    #[test]
    fn custom_plan_rejects_duplicates_and_bad_ids() {
        let plan = FieldPlan::new(vec![(LAST_NAME, FieldKind::Clk)]);
        assert_eq!(plan.fields().len(), 1);
        assert!(std::panic::catch_unwind(|| {
            FieldPlan::new(vec![(LAST_NAME, FieldKind::Clk), (LAST_NAME, FieldKind::Exact)])
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            FieldPlan::new(vec![(schema::NUM_ATTRS, FieldKind::Clk)])
        })
        .is_err());
    }

    #[test]
    fn default_plan_skips_meta_and_derived_fields() {
        let plan = FieldPlan::voter_default();
        assert!(plan.fields().iter().all(|&(attr, _)| attr != AGE));
        assert!(plan.fields().iter().all(|&(attr, _)| attr != NCID));
    }

    #[test]
    fn rendering_is_labeled_hex_json() {
        let enc = RecordEncoder::new(EncodingParams {
            bits: 64,
            ..Default::default()
        });
        let mut scratch = EncodeScratch::new();
        let e = enc.encode_row(&row("C1", "PAT", "SMITH"), &mut scratch);
        let line = render_encoded_record(3, &e);
        assert!(line.starts_with("{\"cluster\":3,\"ncid_token\":\""));
        assert!(line.contains("\"record_clk\":\""));
        assert!(line.contains("\"clk\":{\"last_name\":\""));
        assert!(line.contains("\"exact\":{"));
        assert!(line.contains("\"sex_code\":\""));
        assert!(line.ends_with("}}"));
        // No plaintext leaks into the line.
        assert!(!line.contains("PAT") && !line.contains("SMITH") && !line.contains("C1"));
    }

    #[test]
    fn normalization_matches_detection_semantics() {
        let mut out = String::new();
        normalize_into("  smith  ", &mut out);
        assert_eq!(out, "SMITH");
        normalize_into("müller", &mut out);
        assert_eq!(out, "MÜLLER");
        normalize_into("   ", &mut out);
        assert_eq!(out, "");
    }

    #[test]
    fn plaintext_dice_reference_values() {
        assert_eq!(plaintext_qgram_dice("", "", 2), 1.0);
        assert_eq!(plaintext_qgram_dice("AB", "AB", 2), 1.0);
        assert_eq!(plaintext_qgram_dice("AB", "CD", 2), 0.0);
        // SMITH: {SM,MI,IT,TH}; SMYTH: {SM,MY,YT,TH} → 2·2/8 = 0.5.
        assert_eq!(plaintext_qgram_dice("SMITH", "SMYTH", 2), 0.5);
    }
}
