//! Customization: carving user-specific test datasets out of the full
//! cluster store (Section 6.5).
//!
//! The paper's three-step recipe:
//!
//! 1. pick heterogeneity bounds `[h_low, h_high]`,
//! 2. randomly sample clusters; scan each cluster's records in order and
//!    drop every record whose heterogeneity to its preceding *kept*
//!    records falls outside the bounds,
//! 3. sort the reduced clusters by size and keep the largest `k`.
//!
//! Applied with bounds (0.06, 0.2), (0.2, 0.4) and (0.4, 1.0) this
//! produces the paper's NC1, NC2 and NC3 datasets.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nc_votergen::schema::Row;

use crate::cluster::ClusterStore;
use crate::heterogeneity::HeterogeneityScorer;

/// Parameters of the customization step.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomizeParams {
    /// Lower heterogeneity bound (inclusive) between kept records.
    pub h_low: f64,
    /// Upper heterogeneity bound (inclusive).
    pub h_high: f64,
    /// Number of clusters to sample from the store (the paper samples
    /// "over 100 thousand"). Capped at the store size.
    pub sample_clusters: usize,
    /// Number of (largest) reduced clusters to keep (the paper keeps
    /// 10 thousand).
    pub output_clusters: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl CustomizeParams {
    /// The paper's NC1 setting (clean: heterogeneity 0.06–0.2).
    pub fn nc1(sample: usize, output: usize, seed: u64) -> Self {
        CustomizeParams { h_low: 0.06, h_high: 0.2, sample_clusters: sample, output_clusters: output, seed }
    }
    /// The paper's NC2 setting (medium: 0.2–0.4).
    pub fn nc2(sample: usize, output: usize, seed: u64) -> Self {
        CustomizeParams { h_low: 0.2, h_high: 0.4, sample_clusters: sample, output_clusters: output, seed }
    }
    /// The paper's NC3 setting (dirty: 0.4–1.0).
    pub fn nc3(sample: usize, output: usize, seed: u64) -> Self {
        CustomizeParams { h_low: 0.4, h_high: 1.0, sample_clusters: sample, output_clusters: output, seed }
    }
}

/// One cluster of a customized dataset.
#[derive(Debug, Clone)]
pub struct CustomCluster {
    /// The gold-standard cluster id (the voter's NCID).
    pub ncid: String,
    /// The kept records.
    pub records: Vec<Row>,
}

/// A customized test dataset with its gold standard.
#[derive(Debug, Clone, Default)]
pub struct CustomDataset {
    /// Clusters, largest first.
    pub clusters: Vec<CustomCluster>,
    /// NCIDs of every cluster drawn in the sampling step (2a), in
    /// sample order — a superset of `clusters`, because ranking may
    /// cut sampled clusters. Cache invalidation needs the *sampled*
    /// set: a revision to any sampled cluster (kept or cut) can change
    /// the ranking outcome, while clusters never sampled cannot affect
    /// this carve at all.
    pub sampled: Vec<String>,
}

impl CustomDataset {
    /// Total number of records.
    pub fn record_count(&self) -> usize {
        self.clusters.iter().map(|c| c.records.len()).sum()
    }

    /// Number of duplicate pairs in the gold standard.
    pub fn duplicate_pairs(&self) -> u64 {
        self.clusters
            .iter()
            .map(|c| crate::stats::pairs_in_cluster(c.records.len() as u64))
            .sum()
    }

    /// Number of clusters with at least two records.
    pub fn non_singletons(&self) -> usize {
        self.clusters.iter().filter(|c| c.records.len() >= 2).count()
    }

    /// Maximum cluster size.
    pub fn max_cluster_size(&self) -> usize {
        self.clusters.iter().map(|c| c.records.len()).max().unwrap_or(0)
    }

    /// Average cluster size.
    pub fn avg_cluster_size(&self) -> f64 {
        if self.clusters.is_empty() {
            0.0
        } else {
            self.record_count() as f64 / self.clusters.len() as f64
        }
    }

    /// Flatten into `(cluster_index, record)` pairs, e.g. as matcher
    /// input. The cluster index is the gold-standard label.
    pub fn labeled_records(&self) -> Vec<(usize, &Row)> {
        self.clusters
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.records.iter().map(move |r| (i, r)))
            .collect()
    }
}

/// Step 2b of the recipe for one cluster: scan the records in order and
/// keep every record whose heterogeneity to all previously *kept*
/// records lies within the bounds (the first record is always kept).
fn reduce_cluster<'a, I>(rows: I, scorer: &HeterogeneityScorer, params: &CustomizeParams) -> Vec<Row>
where
    I: IntoIterator<Item = &'a Row>,
{
    let mut kept: Vec<Row> = Vec::new();
    for row in rows {
        let ok = kept.iter().all(|prev| {
            let h = scorer.pair(prev, row);
            (params.h_low..=params.h_high).contains(&h)
        });
        if ok || kept.is_empty() {
            kept.push(row.clone());
        }
    }
    kept
}

/// Sort reduced clusters largest-first (NCID breaks ties) and keep the
/// best `output_clusters` (step 3 of the recipe).
fn rank_and_truncate(
    mut reduced: Vec<CustomCluster>,
    sampled: Vec<String>,
    params: &CustomizeParams,
) -> CustomDataset {
    reduced.sort_by(|a, b| {
        b.records
            .len()
            .cmp(&a.records.len())
            .then_with(|| a.ncid.cmp(&b.ncid))
    });
    reduced.truncate(params.output_clusters);
    CustomDataset {
        clusters: reduced,
        sampled,
    }
}

/// Run the customization recipe over a cluster store.
pub fn customize(
    store: &ClusterStore,
    scorer: &HeterogeneityScorer,
    params: &CustomizeParams,
) -> CustomDataset {
    assert!(params.h_low <= params.h_high, "invalid heterogeneity bounds");
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Step 2a: random sample of clusters.
    let mut ids = store.cluster_ids();
    ids.shuffle(&mut rng);
    ids.truncate(params.sample_clusters);

    // Step 2b: reduce every cluster to records within the bounds.
    let sampled: Vec<String> = ids.iter().map(|(ncid, _)| ncid.clone()).collect();
    let mut reduced: Vec<CustomCluster> = Vec::with_capacity(ids.len());
    for (ncid, _) in ids {
        let rows = store.cluster_rows(&ncid);
        let records = reduce_cluster(&rows, scorer, params);
        reduced.push(CustomCluster { ncid, records });
    }

    rank_and_truncate(reduced, sampled, params)
}

/// Run the customization recipe over pre-materialized clusters — the
/// borrowed-snapshot twin of [`customize`].
///
/// `clusters` must be in [`ClusterStore::cluster_ids`] order (which is
/// what [`crate::snapshot::StoreSnapshot`] captures). Sampling shuffles
/// the cluster *indices* with the same seeded RNG as [`customize`]
/// shuffles its id list; a Fisher–Yates shuffle draws only from the
/// slice length, so for the same store both paths sample the same
/// clusters in the same order and the result is **bit-identical** to
/// `customize(store, ..)` — asserted by the determinism tests
/// (`crates/core/tests/customize_determinism.rs`).
pub fn customize_clusters(
    clusters: &[(String, Vec<Row>)],
    scorer: &HeterogeneityScorer,
    params: &CustomizeParams,
) -> CustomDataset {
    assert!(params.h_low <= params.h_high, "invalid heterogeneity bounds");
    let mut rng = StdRng::seed_from_u64(params.seed);

    let mut order: Vec<usize> = (0..clusters.len()).collect();
    order.shuffle(&mut rng);
    order.truncate(params.sample_clusters);

    let sampled: Vec<String> = order.iter().map(|&i| clusters[i].0.clone()).collect();
    let mut reduced: Vec<CustomCluster> = Vec::with_capacity(order.len());
    for i in order {
        let (ncid, rows) = &clusters[i];
        let records = reduce_cluster(rows, scorer, params);
        reduced.push(CustomCluster {
            ncid: ncid.clone(),
            records,
        });
    }

    rank_and_truncate(reduced, sampled, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneity::{AttributeWeights, Scope};
    use crate::record::DedupPolicy;
    use nc_votergen::schema::{FIRST_NAME, LAST_NAME, MIDL_NAME, NCID};

    fn store_with_clusters() -> ClusterStore {
        let mut store = ClusterStore::new();
        let mut import = |ncid: &str, first: &str, midl: &str, last: &str, snap: &str| {
            let mut r = Row::empty();
            r.set(NCID, ncid);
            r.set(FIRST_NAME, first);
            r.set(MIDL_NAME, midl);
            r.set(LAST_NAME, last);
            store.import_row(r, DedupPolicy::Trimmed, snap, 1);
        };
        // Homogeneous cluster (small typo).
        import("H1", "MARY", "ANN", "SMITH", "s1");
        import("H1", "MARY", "ANN", "SMYTH", "s2");
        import("H1", "MARY", "ANN", "SMITHE", "s3");
        // Very heterogeneous cluster (different person-like records).
        import("X1", "MARY", "ELIZABETH", "FIELDS", "s1");
        import("X1", "JOSHUA", "", "BETHEA", "s2");
        import("X1", "CARL", "RAY", "OXENDINE", "s3");
        // Singleton.
        import("S1", "PAT", "", "JONES", "s1");
        store
    }

    /// Entropy weights from one record per cluster, as the paper does —
    /// this concentrates weight on the varying (name) attributes instead
    /// of diluting it across the many empty ones.
    fn scorer_for(store: &ClusterStore) -> HeterogeneityScorer {
        let firsts: Vec<Row> = store
            .cluster_ids()
            .iter()
            .filter_map(|(ncid, _)| store.cluster_rows(ncid).into_iter().next())
            .collect();
        let weights = AttributeWeights::from_rows(Scope::Person, firsts.iter());
        HeterogeneityScorer::new(weights)
    }

    #[test]
    fn low_band_keeps_homogeneous_cluster_intact() {
        let store = store_with_clusters();
        let params = CustomizeParams {
            h_low: 0.0,
            h_high: 0.2,
            sample_clusters: 10,
            output_clusters: 10,
            seed: 1,
        };
        let ds = customize(&store, &scorer_for(&store), &params);
        let h1 = ds.clusters.iter().find(|c| c.ncid == "H1").unwrap();
        assert_eq!(h1.records.len(), 3, "typo-level records stay in band");
        let x1 = ds.clusters.iter().find(|c| c.ncid == "X1").unwrap();
        assert!(x1.records.len() < 3, "heterogeneous records filtered");
    }

    #[test]
    fn high_band_prunes_homogeneous_cluster() {
        let store = store_with_clusters();
        let params = CustomizeParams {
            h_low: 0.3,
            h_high: 1.0,
            sample_clusters: 10,
            output_clusters: 10,
            seed: 1,
        };
        let ds = customize(&store, &scorer_for(&store), &params);
        let h1 = ds.clusters.iter().find(|c| c.ncid == "H1").unwrap();
        assert_eq!(h1.records.len(), 1, "only the first record survives");
    }

    #[test]
    fn output_is_sorted_by_size_and_truncated() {
        let store = store_with_clusters();
        let params = CustomizeParams {
            h_low: 0.0,
            h_high: 1.0,
            sample_clusters: 10,
            output_clusters: 2,
            seed: 2,
        };
        let ds = customize(&store, &scorer_for(&store), &params);
        assert_eq!(ds.clusters.len(), 2);
        assert!(ds.clusters[0].records.len() >= ds.clusters[1].records.len());
        // The singleton is the smallest and must be cut.
        assert!(ds.clusters.iter().all(|c| c.ncid != "S1"));
    }

    #[test]
    fn dataset_statistics() {
        let store = store_with_clusters();
        let params = CustomizeParams {
            h_low: 0.0,
            h_high: 1.0,
            sample_clusters: 10,
            output_clusters: 10,
            seed: 3,
        };
        let ds = customize(&store, &scorer_for(&store), &params);
        assert_eq!(ds.record_count(), 7);
        assert_eq!(ds.clusters.len(), 3);
        assert_eq!(ds.non_singletons(), 2);
        assert_eq!(ds.max_cluster_size(), 3);
        assert!((ds.avg_cluster_size() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(ds.duplicate_pairs(), 3 + 3);
        assert_eq!(ds.labeled_records().len(), 7);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let store = store_with_clusters();
        let mk = |seed| {
            customize(
                &store,
                &scorer_for(&store),
                &CustomizeParams {
                    h_low: 0.0,
                    h_high: 1.0,
                    sample_clusters: 2,
                    output_clusters: 2,
                    seed,
                },
            )
        };
        let a: Vec<String> = mk(5).clusters.iter().map(|c| c.ncid.clone()).collect();
        let b: Vec<String> = mk(5).clusters.iter().map(|c| c.ncid.clone()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn customize_clusters_matches_store_path() {
        let store = store_with_clusters();
        let scorer = scorer_for(&store);
        let clusters: Vec<(String, Vec<Row>)> = store
            .cluster_ids()
            .into_iter()
            .map(|(ncid, _)| {
                let rows = store.cluster_rows(&ncid);
                (ncid, rows)
            })
            .collect();
        for seed in [0, 1, 7] {
            let params = CustomizeParams {
                h_low: 0.0,
                h_high: 0.3,
                sample_clusters: 2,
                output_clusters: 2,
                seed,
            };
            let from_store = customize(&store, &scorer, &params);
            let from_slice = customize_clusters(&clusters, &scorer, &params);
            assert_eq!(from_store.clusters.len(), from_slice.clusters.len());
            for (a, b) in from_store.clusters.iter().zip(&from_slice.clusters) {
                assert_eq!(a.ncid, b.ncid);
                let ta: Vec<String> = a.records.iter().map(Row::to_tsv).collect();
                let tb: Vec<String> = b.records.iter().map(Row::to_tsv).collect();
                assert_eq!(ta, tb);
            }
        }
    }

    #[test]
    fn preset_bounds() {
        assert_eq!(CustomizeParams::nc1(1, 1, 0).h_low, 0.06);
        assert_eq!(CustomizeParams::nc2(1, 1, 0).h_low, 0.2);
        assert_eq!(CustomizeParams::nc3(1, 1, 0).h_high, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid heterogeneity bounds")]
    fn inverted_bounds_panic() {
        let store = store_with_clusters();
        let params = CustomizeParams {
            h_low: 0.5,
            h_high: 0.1,
            sample_clusters: 1,
            output_clusters: 1,
            seed: 0,
        };
        customize(&store, &scorer_for(&store), &params);
    }
}
