//! Snapshot import: sequential and pipelined (producer/consumer).

use nc_votergen::registry::Registry;
use nc_votergen::snapshot::{Snapshot, SnapshotInfo};

use crate::cluster::{ClusterStore, RowOutcome};
use crate::record::DedupPolicy;

/// Per-snapshot import accounting (the raw material of Table 1).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ImportStats {
    /// Snapshot publication date (`YYYY-MM-DD`).
    pub date: String,
    /// Rows contained in the snapshot.
    pub total_rows: u64,
    /// Rows that became new records (not seen in any earlier snapshot).
    pub new_records: u64,
    /// New records that founded a new cluster (a never-seen NCID).
    pub new_clusters: u64,
    /// Malformed lines diverted to quarantine while reading this
    /// snapshot's file (always 0 for in-memory and strict imports).
    #[serde(default)]
    pub quarantined: u64,
}

impl ImportStats {
    /// Zeroed accounting for a snapshot date.
    pub fn zero(date: impl Into<String>) -> Self {
        ImportStats {
            date: date.into(),
            total_rows: 0,
            new_records: 0,
            new_clusters: 0,
            quarantined: 0,
        }
    }

    /// The snapshot's year, if the date has a parseable `YYYY` prefix.
    pub fn year(&self) -> Option<i32> {
        self.date.get(0..4).and_then(|y| y.parse().ok())
    }

    /// Fold another accounting into this one.
    ///
    /// Associative and commutative over every counter, and over the
    /// date too (the aggregate keeps the *later* date), so partial
    /// stats can be combined in any order — per-shard worker stats
    /// merged shard-by-shard, or per-snapshot stats merged into a
    /// per-year row — and the totals never depend on merge order.
    pub fn merge(&mut self, other: &ImportStats) {
        if other.date > self.date {
            self.date = other.date.clone();
        }
        self.total_rows += other.total_rows;
        self.new_records += other.new_records;
        self.new_clusters += other.new_clusters;
        self.quarantined += other.quarantined;
    }
}

/// Import every row of a snapshot into the store, returning the stats.
pub fn import_snapshot(
    store: &mut ClusterStore,
    snapshot: &Snapshot,
    policy: DedupPolicy,
    version: u32,
) -> ImportStats {
    let mut stats = ImportStats::zero(snapshot.date.clone());
    for row in &snapshot.rows {
        stats.total_rows += 1;
        match store.import_row_ref(row, policy, &snapshot.date, version) {
            RowOutcome::NewCluster => {
                stats.new_clusters += 1;
                stats.new_records += 1;
            }
            RowOutcome::NewRecord => stats.new_records += 1,
            RowOutcome::DuplicateDropped => {}
        }
    }
    stats
}

/// Generate and import an archive with pipeline parallelism: a producer
/// thread runs the registry simulation while the consumer imports the
/// previous snapshot (the paper's update process likewise imports
/// snapshots concurrently with statistics work).
///
/// Every snapshot is imported under `version` (use
/// [`crate::version::VersionManager`] to publish versions between calls
/// when importing incrementally).
pub fn import_archive_streaming(
    store: &mut ClusterStore,
    registry: &mut Registry,
    calendar: &[SnapshotInfo],
    policy: DedupPolicy,
    version: u32,
) -> Vec<ImportStats> {
    let mut all_stats = Vec::with_capacity(calendar.len());
    // Bounded channel: at most two snapshots in flight keeps memory flat.
    let (tx, rx) = crossbeam::channel::bounded::<Snapshot>(2);
    crossbeam::thread::scope(|scope| {
        scope.spawn(|_| {
            for info in calendar {
                let snap = registry.generate_snapshot(info);
                if tx.send(snap).is_err() {
                    break;
                }
            }
            drop(tx);
        });
        for snapshot in rx.iter() {
            all_stats.push(import_snapshot(store, &snapshot, policy, version));
        }
    })
    .expect("import pipeline thread panicked");
    all_stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_votergen::config::GeneratorConfig;
    use nc_votergen::snapshot::standard_calendar;

    fn registry(seed: u64, pop: usize) -> Registry {
        Registry::new(GeneratorConfig {
            seed,
            initial_population: pop,
            ..Default::default()
        })
    }

    #[test]
    fn first_snapshot_all_rows_are_new() {
        let mut reg = registry(1, 120);
        let cal = standard_calendar();
        let snap = reg.generate_snapshot(&cal[0]);
        let mut store = ClusterStore::new();
        let stats = import_snapshot(&mut store, &snap, DedupPolicy::Trimmed, 1);
        assert_eq!(stats.total_rows, 120);
        assert_eq!(stats.new_clusters, 120);
        assert_eq!(stats.new_records, 120);
        assert_eq!(stats.year(), Some(2008));
    }

    #[test]
    fn second_snapshot_is_mostly_duplicates() {
        let mut reg = registry(2, 200);
        let cal = standard_calendar();
        let s0 = reg.generate_snapshot(&cal[0]);
        let s1 = reg.generate_snapshot(&cal[1]);
        let mut store = ClusterStore::new();
        import_snapshot(&mut store, &s0, DedupPolicy::Trimmed, 1);
        let stats = import_snapshot(&mut store, &s1, DedupPolicy::Trimmed, 1);
        assert!(stats.total_rows >= 200);
        // The vast majority of rows repeat the previous snapshot.
        assert!(
            (stats.new_records as f64) < stats.total_rows as f64 * 0.5,
            "new {} of {}",
            stats.new_records,
            stats.total_rows
        );
        assert!(stats.new_clusters <= stats.new_records);
    }

    #[test]
    fn streaming_import_matches_sequential() {
        let cal: Vec<_> = standard_calendar().into_iter().take(4).collect();

        let mut reg1 = registry(3, 80);
        let mut store1 = ClusterStore::new();
        let mut seq_stats = Vec::new();
        for info in &cal {
            let snap = reg1.generate_snapshot(info);
            seq_stats.push(import_snapshot(&mut store1, &snap, DedupPolicy::Trimmed, 1));
        }

        let mut reg2 = registry(3, 80);
        let mut store2 = ClusterStore::new();
        let par_stats =
            import_archive_streaming(&mut store2, &mut reg2, &cal, DedupPolicy::Trimmed, 1);

        assert_eq!(seq_stats, par_stats);
        assert_eq!(store1.record_count(), store2.record_count());
        assert_eq!(store1.cluster_count(), store2.cluster_count());
    }

    #[test]
    fn merge_is_order_invariant() {
        let parts = [
            ImportStats { date: "2009-01-01".into(), total_rows: 10, new_records: 4, new_clusters: 1, quarantined: 2 },
            ImportStats { date: "2008-11-04".into(), total_rows: 7, new_records: 7, new_clusters: 7, quarantined: 0 },
            ImportStats { date: "2010-05-04".into(), total_rows: 3, new_records: 0, new_clusters: 0, quarantined: 1 },
        ];

        // Fold in every permutation of three parts: same aggregate.
        let fold = |order: &[usize]| {
            let mut acc = ImportStats::zero("");
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc
        };
        let reference = fold(&[0, 1, 2]);
        for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            assert_eq!(fold(&order), reference);
        }
        assert_eq!(reference.total_rows, 20);
        assert_eq!(reference.new_records, 11);
        assert_eq!(reference.new_clusters, 8);
        assert_eq!(reference.quarantined, 3);
        assert_eq!(reference.date, "2010-05-04", "aggregate keeps the latest date");

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn policy_none_never_drops() {
        let mut reg = registry(4, 50);
        let cal = standard_calendar();
        let mut store = ClusterStore::new();
        let mut total = 0;
        for info in cal.iter().take(3) {
            let snap = reg.generate_snapshot(info);
            let st = import_snapshot(&mut store, &snap, DedupPolicy::None, 1);
            assert_eq!(st.new_records, st.total_rows);
            total += st.total_rows;
        }
        assert_eq!(store.record_count(), total);
    }
}
