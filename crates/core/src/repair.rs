//! Repairing potentially unsound clusters (Section 3.1.1).
//!
//! The paper equips every cluster with plausibility scores so that the
//! user can "remove (or repair) them before using the test dataset".
//! This module implements both actions:
//!
//! * [`filter_clusters`] — drop clusters whose plausibility falls below
//!   a user-chosen threshold (the *remove* action, trading dataset size
//!   against gold-standard risk), and
//! * [`split_cluster`] — the *repair* action: partition a cluster's
//!   records into plausibility-coherent groups by computing connected
//!   components over the pair-plausibility graph. An unsound cluster
//!   like Figure 3's `DR19657` (six records of one person, four of
//!   another) splits into its two true voters, each keeping the gold
//!   label structure intact.

use nc_votergen::schema::Row;

use crate::plausibility::PlausibilityScorer;

/// Outcome of repairing one cluster.
#[derive(Debug, Clone)]
pub struct RepairedCluster {
    /// The original NCID.
    pub ncid: String,
    /// The coherent record groups (singletons possible). Groups are
    /// ordered by the first record's original position.
    pub groups: Vec<Vec<Row>>,
}

impl RepairedCluster {
    /// Whether the repair changed anything.
    pub fn was_split(&self) -> bool {
        self.groups.len() > 1
    }

    /// Synthesize stable sub-ids (`<ncid>#0`, `<ncid>#1`, …) for the
    /// groups, usable as new gold-standard cluster ids.
    pub fn group_ids(&self) -> Vec<String> {
        (0..self.groups.len())
            .map(|i| {
                if self.groups.len() == 1 {
                    self.ncid.clone()
                } else {
                    format!("{}#{i}", self.ncid)
                }
            })
            .collect()
    }
}

/// Split a cluster into plausibility-coherent groups: records are
/// connected when their pair plausibility is ≥ `threshold`; connected
/// components become the repaired groups.
pub fn split_cluster(
    scorer: &PlausibilityScorer,
    ncid: &str,
    records: Vec<Row>,
    threshold: f64,
) -> RepairedCluster {
    let n = records.len();
    if n <= 1 {
        return RepairedCluster {
            ncid: ncid.to_owned(),
            groups: if records.is_empty() { Vec::new() } else { vec![records] },
        };
    }
    // Union-find over records.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if scorer.pair(&records[i], &records[j]) >= threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    // Collect components, preserving first-occurrence order.
    let mut group_of_root: Vec<(usize, usize)> = Vec::new(); // (root, group idx)
    let mut groups: Vec<Vec<Row>> = Vec::new();
    for (i, row) in records.into_iter().enumerate() {
        let root = find(&mut parent, i);
        let idx = match group_of_root.iter().find(|(r, _)| *r == root) {
            Some((_, idx)) => *idx,
            None => {
                group_of_root.push((root, groups.len()));
                groups.push(Vec::new());
                groups.len() - 1
            }
        };
        groups[idx].push(row);
    }
    RepairedCluster {
        ncid: ncid.to_owned(),
        groups,
    }
}

/// The *remove* action: keep only `(ncid, records)` clusters whose
/// cluster plausibility is at least `threshold`. Returns the kept
/// clusters and the number removed.
pub fn filter_clusters(
    scorer: &PlausibilityScorer,
    clusters: Vec<(String, Vec<Row>)>,
    threshold: f64,
) -> (Vec<(String, Vec<Row>)>, usize) {
    let before = clusters.len();
    let kept: Vec<(String, Vec<Row>)> = clusters
        .into_iter()
        .filter(|(_, rows)| scorer.cluster(rows) >= threshold)
        .collect();
    let removed = before - kept.len();
    (kept, removed)
}

/// Repair every cluster: split incoherent ones and return the resulting
/// dataset as `(cluster id, records)` pairs with fresh sub-ids.
pub fn repair_all(
    scorer: &PlausibilityScorer,
    clusters: Vec<(String, Vec<Row>)>,
    threshold: f64,
) -> (Vec<(String, Vec<Row>)>, usize) {
    let mut out = Vec::new();
    let mut splits = 0;
    for (ncid, rows) in clusters {
        let repaired = split_cluster(scorer, &ncid, rows, threshold);
        if repaired.was_split() {
            splits += 1;
        }
        let ids = repaired.group_ids();
        for (id, group) in ids.into_iter().zip(repaired.groups) {
            out.push((id, group));
        }
    }
    (out, splits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_votergen::schema::{AGE, BIRTH_PLACE, FIRST_NAME, LAST_NAME, MIDL_NAME, SEX_CODE, SNAPSHOT_DT};

    fn row(first: &str, midl: &str, last: &str, sex: &str, age: &str) -> Row {
        let mut r = Row::empty();
        r.set(FIRST_NAME, first);
        r.set(MIDL_NAME, midl);
        r.set(LAST_NAME, last);
        r.set(SEX_CODE, sex);
        r.set(AGE, age);
        r.set(SNAPSHOT_DT, "2010-05-04");
        r.set(BIRTH_PLACE, "NORTH CAROLINA");
        r
    }

    /// The Figure 3 unsound cluster: FIELDS records and BETHEA records
    /// under one NCID.
    fn figure3_cluster() -> Vec<Row> {
        vec![
            row("MARY", "ELIZABETH", "FIELDS", "F", "61"),
            row("MARY", "ELIZABETH", "FIELDS", "F", "62"),
            row("MARY", "E.", "FIELDS", "F", "63"),
            row("JOSHUA", "", "BETHEA", "M", "93"),
            row("JOSHUA", "R", "BETHEA", "M", "94"),
        ]
    }

    #[test]
    fn unsound_cluster_splits_into_true_voters() {
        let scorer = PlausibilityScorer::new();
        let repaired = split_cluster(&scorer, "DR19657", figure3_cluster(), 0.8);
        assert!(repaired.was_split());
        assert_eq!(repaired.groups.len(), 2);
        assert_eq!(repaired.groups[0].len(), 3, "the FIELDS records");
        assert_eq!(repaired.groups[1].len(), 2, "the BETHEA records");
        let ids = repaired.group_ids();
        assert_eq!(ids, vec!["DR19657#0", "DR19657#1"]);
    }

    #[test]
    fn sound_cluster_stays_whole() {
        let scorer = PlausibilityScorer::new();
        let records = vec![
            row("DEBRA", "OEHRIE", "WILLIAMS", "F", "45"),
            row("DEBRA", "OEHRLE", "WILLIAMS", "F", "46"),
            row("DEBRA", "ANN", "OEHRLE", "F", "47"),
        ];
        let repaired = split_cluster(&scorer, "DB175272", records, 0.7);
        assert!(!repaired.was_split(), "{:?}", repaired.groups.len());
        assert_eq!(repaired.group_ids(), vec!["DB175272"]);
    }

    #[test]
    fn degenerate_clusters() {
        let scorer = PlausibilityScorer::new();
        let empty = split_cluster(&scorer, "X", vec![], 0.5);
        assert!(empty.groups.is_empty());
        let single = split_cluster(&scorer, "X", vec![row("A", "", "B", "F", "30")], 0.5);
        assert_eq!(single.groups.len(), 1);
        assert!(!single.was_split());
    }

    #[test]
    fn threshold_one_splits_everything_distinct() {
        let scorer = PlausibilityScorer::new();
        let records = vec![
            row("MARY", "", "FIELDS", "F", "61"),
            row("JOSHUA", "", "BETHEA", "M", "93"),
        ];
        // With threshold slightly above their pair score they separate.
        let repaired = split_cluster(&scorer, "X", records, 0.99);
        assert_eq!(repaired.groups.len(), 2);
    }

    #[test]
    fn filter_removes_low_plausibility_clusters() {
        let scorer = PlausibilityScorer::new();
        let clusters = vec![
            ("GOOD".to_owned(), vec![
                row("MARY", "ANN", "SMITH", "F", "40"),
                row("MARY", "ANN", "SMITH", "F", "41"),
            ]),
            ("BAD".to_owned(), figure3_cluster()),
        ];
        let (kept, removed) = filter_clusters(&scorer, clusters, 0.8);
        assert_eq!(removed, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].0, "GOOD");
    }

    #[test]
    fn repair_all_preserves_record_count() {
        let scorer = PlausibilityScorer::new();
        let clusters = vec![
            ("A".to_owned(), figure3_cluster()),
            ("B".to_owned(), vec![row("PAT", "", "JONES", "F", "30")]),
        ];
        let total_before: usize = clusters.iter().map(|(_, r)| r.len()).sum();
        let (repaired, splits) = repair_all(&scorer, clusters, 0.8);
        let total_after: usize = repaired.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(total_before, total_after);
        assert_eq!(splits, 1);
        assert_eq!(repaired.len(), 3, "A split in two + B");
        // Sub-ids are unique.
        let mut ids: Vec<&String> = repaired.iter().map(|(id, _)| id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }
}
