//! Deterministic parallel cluster scoring.
//!
//! The paper precalculates a plausibility and heterogeneity score for
//! every duplicate cluster (Section 6.2–6.3) — embarrassingly parallel
//! work, since each cluster is scored in isolation. This module shards
//! the cluster list over a scoped worker pool: each worker owns one
//! [`Scratch`] (so the similarity kernels allocate nothing per pair)
//! and scores a contiguous shard; the shard results are concatenated in
//! shard order. Because every score is computed with exactly the same
//! arithmetic as the sequential path and the output order is the input
//! order, the parallel result is **bit-identical** to `threads = 1`.

use std::collections::HashSet;

use nc_similarity::Scratch;
use nc_votergen::schema::Row;

use crate::cluster::ClusterStore;
use crate::heterogeneity::HeterogeneityScorer;
use crate::plausibility::PlausibilityScorer;

/// Worker-pool configuration for cluster scoring.
///
/// The default is the `threads: 0` sentinel: "one worker per available
/// hardware thread", resolved lazily by [`ScoringConfig::effective_threads`]
/// via [`std::thread::available_parallelism`]. On a single-core
/// container the pool therefore degrades to the inline sequential path
/// automatically (the `BENCH_scoring` 0.94x case) instead of paying
/// pool overhead for one worker. Keeping the sentinel in the field —
/// rather than eagerly storing the resolved count — means
/// `default() == with_threads(0)` under `PartialEq` and a defaulted
/// config is machine-independent when compared or persisted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoringConfig {
    /// Worker threads; `0` means one per available hardware thread.
    pub threads: usize,
}

impl ScoringConfig {
    /// A configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ScoringConfig { threads }
    }

    /// The number of workers that will actually run: `threads`, or the
    /// hardware parallelism when `threads` is `0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

/// Map `f` over `clusters` with a pool of `config` workers, each owning
/// its own [`Scratch`]. Results come back in input order regardless of
/// the worker count, and `f` must be a pure function of its cluster (it
/// may use the scratch freely — the scratch only changes where working
/// memory lives), so the output is bit-identical for every thread
/// count, including the inline `threads = 1` path.
pub fn map_clusters<C, T, F>(config: &ScoringConfig, clusters: &[C], f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&mut Scratch, &C) -> T + Sync,
{
    let threads = config.effective_threads().min(clusters.len()).max(1);
    if threads <= 1 {
        let mut scratch = Scratch::new();
        return clusters.iter().map(|c| f(&mut scratch, c)).collect();
    }
    // Contiguous shards keep the output a plain concatenation; ceil
    // division so at most `threads` shards exist.
    let shard_len = clusters.len().div_ceil(threads);
    let mut out = Vec::with_capacity(clusters.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = clusters
            .chunks(shard_len)
            .map(|shard| {
                let f = &f;
                scope.spawn(move |_| {
                    let mut scratch = Scratch::new();
                    shard.iter().map(|c| f(&mut scratch, c)).collect::<Vec<T>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("scoring worker panicked"));
        }
    })
    .expect("scoring pool panicked");
    out
}

/// The precalculated scores of one cluster (the per-cluster statistics
/// of Section 6).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterScore {
    /// The cluster's NCID.
    pub ncid: String,
    /// Records in the cluster.
    pub records: usize,
    /// Cluster plausibility (minimum record score; 1 for singletons).
    pub plausibility: f64,
    /// Cluster heterogeneity (mean record score; 0 for singletons).
    pub heterogeneity: f64,
}

/// Score every cluster of a store, sharded over `config` workers.
///
/// Clusters are scored in [`ClusterStore::cluster_ids`] order; the
/// result is bit-identical for every thread count.
pub fn score_store(
    store: &ClusterStore,
    plausibility: &PlausibilityScorer,
    heterogeneity: &HeterogeneityScorer,
    config: &ScoringConfig,
) -> Vec<ClusterScore> {
    let clusters: Vec<(String, Vec<Row>)> = store
        .cluster_ids()
        .into_iter()
        .map(|(ncid, _)| {
            let rows = store.cluster_rows(&ncid);
            (ncid, rows)
        })
        .collect();
    score_clusters(&clusters, plausibility, heterogeneity, config)
}

/// Score pre-materialized clusters, sharded over `config` workers.
///
/// The result is in input order and bit-identical for every thread
/// count — [`score_store`] delegates here, and sharded stores
/// (`nc-shard`) score their merged cluster lists through the same path,
/// which is what makes sharded and unsharded scoring byte-comparable.
pub fn score_clusters(
    clusters: &[(String, Vec<Row>)],
    plausibility: &PlausibilityScorer,
    heterogeneity: &HeterogeneityScorer,
    config: &ScoringConfig,
) -> Vec<ClusterScore> {
    map_clusters(config, clusters, |scratch, (ncid, rows)| ClusterScore {
        ncid: ncid.clone(),
        records: rows.len(),
        plausibility: plausibility.cluster_with(scratch, rows),
        heterogeneity: heterogeneity.cluster_with(scratch, rows),
    })
}

/// Re-score only the clusters named in `dirty`, splicing everything
/// else from `previous` — the incremental half of the change-stream
/// pipeline.
///
/// `previous` must be the score vector of an earlier version of the
/// same cluster list (cluster order only ever appends: new clusters
/// found at version k+1 sort after every cluster of version k by
/// founding sequence). A position is *reused* from `previous` when all
/// of these hold, and re-scored otherwise:
///
/// * the position exists in `previous` with the same NCID (appended
///   clusters always re-score),
/// * its NCID is not in `dirty`,
/// * its record count is unchanged (a defensive check: rows only ever
///   append, so a grown cluster is always dirty — but an
///   under-approximated dirty set must not silently ship stale
///   scores).
///
/// Because per-cluster scoring is a pure function of the cluster's
/// rows, the spliced output is **bit-identical** to a full
/// [`score_clusters`] pass whenever `dirty` covers every changed
/// cluster (property-tested against random churn in `nc-stream`).
/// NCIDs in both `dirty` and the cluster list are the store's trimmed
/// keys; no further normalization is applied.
pub fn score_clusters_incremental(
    clusters: &[(String, Vec<Row>)],
    previous: &[ClusterScore],
    dirty: &HashSet<String>,
    plausibility: &PlausibilityScorer,
    heterogeneity: &HeterogeneityScorer,
    config: &ScoringConfig,
) -> Vec<ClusterScore> {
    let reusable = |i: usize, ncid: &str, rows: &[Row]| {
        previous
            .get(i)
            .is_some_and(|p| p.ncid == ncid && p.records == rows.len() && !dirty.contains(ncid))
    };
    let stale: Vec<&(String, Vec<Row>)> = clusters
        .iter()
        .enumerate()
        .filter(|(i, (ncid, rows))| !reusable(*i, ncid, rows))
        .map(|(_, c)| c)
        .collect();
    // Score through the same map_clusters kernel path as
    // score_clusters, over borrowed clusters (no row clones).
    let mut rescored = map_clusters(config, &stale, |scratch, c| {
        let (ncid, rows) = *c;
        ClusterScore {
            ncid: ncid.clone(),
            records: rows.len(),
            plausibility: plausibility.cluster_with(scratch, rows),
            heterogeneity: heterogeneity.cluster_with(scratch, rows),
        }
    })
    .into_iter();
    let spliced: Vec<ClusterScore> = clusters
        .iter()
        .enumerate()
        .map(|(i, (ncid, rows))| {
            if reusable(i, ncid, rows) {
                previous[i].clone()
            } else {
                rescored.next().expect("one rescored entry per stale cluster")
            }
        })
        .collect();
    debug_assert!(rescored.next().is_none());
    spliced
}

/// Incrementally score a store: like [`score_store`], but clusters not
/// in `dirty` reuse their entry from `previous` *without being
/// materialized at all* — the work avoided is both the scoring kernels
/// and the per-cluster row clones, which is what makes low-churn
/// re-scoring sub-linear in store size.
///
/// Unlike [`score_clusters_incremental`] this variant cannot apply the
/// defensive record-count check without materializing rows, so `dirty`
/// must cover every cluster changed since `previous` was computed (the
/// change stream's founded + revised sets satisfy this by
/// construction). Output is bit-identical to a full [`score_store`]
/// pass.
pub fn score_store_incremental(
    store: &ClusterStore,
    previous: &[ClusterScore],
    dirty: &HashSet<String>,
    plausibility: &PlausibilityScorer,
    heterogeneity: &HeterogeneityScorer,
    config: &ScoringConfig,
) -> Vec<ClusterScore> {
    let ids = store.cluster_ids();
    let reusable = |i: usize, ncid: &str| {
        previous
            .get(i)
            .is_some_and(|p| p.ncid == ncid && !dirty.contains(ncid))
    };
    let stale: Vec<(String, Vec<Row>)> = ids
        .iter()
        .enumerate()
        .filter(|(i, (ncid, _))| !reusable(*i, ncid))
        .map(|(_, (ncid, _))| {
            let rows = store.cluster_rows(ncid);
            (ncid.clone(), rows)
        })
        .collect();
    let mut rescored = score_clusters(&stale, plausibility, heterogeneity, config).into_iter();
    let spliced: Vec<ClusterScore> = ids
        .iter()
        .enumerate()
        .map(|(i, (ncid, _))| {
            if reusable(i, ncid) {
                previous[i].clone()
            } else {
                rescored.next().expect("one rescored entry per stale cluster")
            }
        })
        .collect();
    debug_assert!(rescored.next().is_none());
    spliced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneity::{AttributeWeights, Scope};
    use crate::record::DedupPolicy;
    use nc_votergen::schema::{FIRST_NAME, LAST_NAME, MIDL_NAME, NCID};

    fn store() -> ClusterStore {
        let mut store = ClusterStore::new();
        let mut import = |ncid: &str, first: &str, midl: &str, last: &str, snap: &str| {
            let mut r = Row::empty();
            r.set(NCID, ncid);
            r.set(FIRST_NAME, first);
            r.set(MIDL_NAME, midl);
            r.set(LAST_NAME, last);
            store.import_row(r, DedupPolicy::Trimmed, snap, 1);
        };
        for i in 0..17 {
            let ncid = format!("C{i}");
            import(&ncid, "MARY", "ANN", &format!("SMITH{i}"), "s1");
            if i % 3 != 0 {
                import(&ncid, "MARY", "A.", &format!("SMYTH{i}"), "s2");
            }
            if i % 4 == 0 {
                import(&ncid, "JO", "", &format!("BLOGGS{i}"), "s3");
            }
        }
        store
    }

    fn scorers() -> (PlausibilityScorer, HeterogeneityScorer) {
        (
            PlausibilityScorer::new(),
            HeterogeneityScorer::new(AttributeWeights::uniform(Scope::Person)),
        )
    }

    #[test]
    fn parallel_scores_are_bit_identical_to_sequential() {
        let store = store();
        let (plaus, het) = scorers();
        let seq = score_store(&store, &plaus, &het, &ScoringConfig::with_threads(1));
        for threads in [2, 3, 8, 64] {
            let par = score_store(&store, &plaus, &het, &ScoringConfig::with_threads(threads));
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.ncid, p.ncid, "order must be preserved");
                assert_eq!(s.records, p.records);
                assert_eq!(s.plausibility.to_bits(), p.plausibility.to_bits());
                assert_eq!(s.heterogeneity.to_bits(), p.heterogeneity.to_bits());
            }
        }
    }

    #[test]
    fn scores_match_direct_scorer_calls() {
        let store = store();
        let (plaus, het) = scorers();
        let scores = score_store(&store, &plaus, &het, &ScoringConfig::default());
        assert_eq!(scores.len(), store.cluster_count());
        for score in &scores {
            let rows = store.cluster_rows(&score.ncid);
            assert_eq!(score.records, rows.len());
            assert_eq!(score.plausibility.to_bits(), plaus.cluster(&rows).to_bits());
            assert_eq!(score.heterogeneity.to_bits(), het.cluster(&rows).to_bits());
        }
    }

    #[test]
    fn map_clusters_handles_edge_shapes() {
        let cfg = ScoringConfig::with_threads(4);
        let empty: Vec<u32> = Vec::new();
        assert!(map_clusters(&cfg, &empty, |_, &x: &u32| x).is_empty());
        // Fewer clusters than workers.
        let two = vec![10u32, 20];
        assert_eq!(map_clusters(&cfg, &two, |_, &x| x * 2), vec![20, 40]);
        // More clusters than workers, order preserved.
        let many: Vec<u32> = (0..100).collect();
        let doubled = map_clusters(&cfg, &many, |_, &x| x * 2);
        assert_eq!(doubled, many.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(ScoringConfig::default().effective_threads() >= 1);
        assert_eq!(ScoringConfig::with_threads(3).effective_threads(), 3);
    }

    #[test]
    fn default_is_lazy_auto_sentinel() {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let cfg = ScoringConfig::default();
        assert_eq!(cfg, ScoringConfig::with_threads(0), "default stays machine-independent");
        assert_eq!(cfg.effective_threads(), hw, "sentinel resolves to hardware parallelism");
    }

    fn assert_bits_equal(a: &[ClusterScore], b: &[ClusterScore]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.ncid, y.ncid);
            assert_eq!(x.records, y.records);
            assert_eq!(x.plausibility.to_bits(), y.plausibility.to_bits());
            assert_eq!(x.heterogeneity.to_bits(), y.heterogeneity.to_bits());
        }
    }

    #[test]
    fn incremental_scores_splice_bit_identically() {
        let mut store = store();
        let (plaus, het) = scorers();
        let cfg = ScoringConfig::with_threads(1);
        let before = score_store(&store, &plaus, &het, &cfg);

        // Churn: revise two existing clusters, found one new one.
        let mut import = |ncid: &str, last: &str| {
            let mut r = Row::empty();
            r.set(NCID, ncid);
            r.set(FIRST_NAME, "NEW");
            r.set(LAST_NAME, last);
            store.import_row(r, DedupPolicy::Trimmed, "s4", 2);
        };
        import("C3", "CHANGED3");
        import("C11", "CHANGED11");
        import("C99", "FOUNDED");
        let dirty: HashSet<String> = ["C3".to_owned(), "C11".to_owned(), "C99".to_owned()].into();

        let full = score_store(&store, &plaus, &het, &cfg);
        let inc_store = score_store_incremental(&store, &before, &dirty, &plaus, &het, &cfg);
        assert_bits_equal(&full, &inc_store);

        let clusters: Vec<(String, Vec<Row>)> = store
            .cluster_ids()
            .into_iter()
            .map(|(ncid, _)| {
                let rows = store.cluster_rows(&ncid);
                (ncid, rows)
            })
            .collect();
        let inc = score_clusters_incremental(&clusters, &before, &dirty, &plaus, &het, &cfg);
        assert_bits_equal(&full, &inc);

        // An empty dirty set over an unchanged store reuses everything.
        let clean = score_store_incremental(&store, &full, &HashSet::new(), &plaus, &het, &cfg);
        assert_bits_equal(&full, &clean);

        // The defensive record-count check catches an under-approximated
        // dirty set in the materialized variant.
        let stale_guard =
            score_clusters_incremental(&clusters, &before, &HashSet::new(), &plaus, &het, &cfg);
        assert_bits_equal(&full, &stale_guard);
    }
}
