//! Checkpointed archive import: resume a multi-hour ingest instead of
//! restarting it.
//!
//! The paper's archives span 40 snapshots and half a billion rows; an
//! interrupted import must not throw away hours of work. After each
//! snapshot, [`import_archive_dir_resumable`] persists the cluster
//! store (atomically, with checksums — see [`nc_docstore::persist`])
//! and a small JSON manifest recording exactly which snapshots are
//! complete, under which dedup policy and version. A later run with the
//! same parameters reloads the store, skips the completed snapshots,
//! and continues — producing import statistics identical to an
//! uninterrupted run.
//!
//! A damaged checkpoint (torn store file, unreadable manifest) is
//! discarded and the import restarts from scratch — recovery degrades
//! to correctness, never to silent corruption. Mismatched parameters
//! (different policy or version) are an error instead: resuming under
//! them would fabricate inconsistent data.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use nc_vfs::{StdVfs, Vfs};

use crate::cluster::ClusterStore;
use crate::import::ImportStats;
use crate::record::DedupPolicy;
use crate::tsv::{
    self, ImportOptions, QuarantineReport, TsvError,
};

/// Manifest format version (bump on incompatible changes).
const MANIFEST_FORMAT: u32 = 1;
/// Manifest file name within the state directory.
const MANIFEST_FILE: &str = "manifest.json";
/// Persisted store file name within the state directory.
const STORE_FILE: &str = "store.jsonl";

/// The checkpoint manifest written after every completed snapshot.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct Manifest {
    format: u32,
    policy: String,
    version: u32,
    completed: Vec<ImportStats>,
    quarantine: QuarantineReport,
}

/// Everything produced by a resumable archive import.
#[derive(Debug)]
pub struct ResumeOutcome {
    /// The populated cluster store (finalized).
    pub store: ClusterStore,
    /// Per-snapshot import statistics for the *whole* archive —
    /// checkpointed snapshots first, then the ones imported by this
    /// call. Identical to the statistics of an uninterrupted run.
    pub stats: Vec<ImportStats>,
    /// Aggregate quarantine accounting across all runs.
    pub quarantine: QuarantineReport,
    /// Snapshots skipped because the checkpoint already covered them.
    pub resumed_snapshots: usize,
    /// Snapshots newly imported by this call.
    pub imported_snapshots: usize,
    /// Why an existing checkpoint was discarded, if one was.
    pub checkpoint_discarded: Option<String>,
}

/// Path of the manifest inside a state directory.
pub fn manifest_path(state_dir: &Path) -> PathBuf {
    state_dir.join(MANIFEST_FILE)
}

/// Path of the persisted store inside a state directory.
pub fn store_path(state_dir: &Path) -> PathBuf {
    state_dir.join(STORE_FILE)
}

/// Write `text` to `path` atomically (tmp + fsync + rename), with
/// every mutating syscall issued through `vfs`.
fn write_atomic(path: &Path, text: &str, vfs: &dyn Vfs) -> Result<(), TsvError> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("manifest.json");
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    let mut f = vfs.create(&tmp)?;
    f.write_all(text.as_bytes())?;
    f.sync_file()?;
    drop(f);
    vfs.rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        vfs.sync_dir(parent)?;
    }
    Ok(())
}

/// A restored checkpoint (when one exists) plus the reason a fresh
/// start was forced (when one was).
type Restored = (Option<(ClusterStore, Manifest)>, Option<String>);

/// Attempt to restore `(store, manifest)` from a state directory.
///
/// `Ok(None)` means no (intact) checkpoint exists — start fresh,
/// carrying the reason in the second tuple slot. Parameter mismatches
/// are a hard [`TsvError::Checkpoint`] error.
fn restore(state_dir: &Path, policy: DedupPolicy, version: u32) -> Result<Restored, TsvError> {
    let manifest_file = manifest_path(state_dir);
    if !manifest_file.exists() {
        return Ok((None, None));
    }
    let text = match std::fs::read_to_string(&manifest_file) {
        Ok(t) => t,
        Err(e) => return Ok((None, Some(format!("unreadable manifest: {e}")))),
    };
    let manifest: Manifest = match serde_json::from_str(&text) {
        Ok(m) => m,
        Err(e) => return Ok((None, Some(format!("corrupt manifest: {e}")))),
    };
    if manifest.format != MANIFEST_FORMAT {
        return Ok((
            None,
            Some(format!("manifest format {} unsupported", manifest.format)),
        ));
    }
    // Parameter drift fabricates inconsistent data: refuse loudly.
    if manifest.policy != policy.label() {
        return Err(TsvError::Checkpoint {
            message: format!(
                "checkpoint used policy {:?}, run requests {:?}",
                manifest.policy,
                policy.label()
            ),
        });
    }
    if manifest.version != version {
        return Err(TsvError::Checkpoint {
            message: format!(
                "checkpoint used version {}, run requests {version}",
                manifest.version
            ),
        });
    }
    let collection = match nc_docstore::persist::load("clusters", &store_path(state_dir)) {
        Ok(c) => c,
        Err(e) => return Ok((None, Some(format!("damaged store checkpoint: {e}")))),
    };
    match ClusterStore::from_finalized_collection(collection) {
        Ok(store) => Ok((Some((store, manifest)), None)),
        Err(e) => Ok((None, Some(format!("inconsistent store checkpoint: {e}")))),
    }
}

/// Import an archive directory with a checkpoint after every snapshot.
///
/// On the first run, `state_dir` is created and populated. If the
/// process dies mid-import, calling this again with the same parameters
/// resumes after the last fully imported snapshot; the returned
/// [`ResumeOutcome::stats`] match an uninterrupted run exactly. The
/// snapshot being imported when the crash hit is re-imported from
/// scratch (imports are idempotent at snapshot granularity because the
/// store checkpoint is only advanced after a snapshot completes).
pub fn import_archive_dir_resumable(
    archive_dir: &Path,
    state_dir: &Path,
    policy: DedupPolicy,
    version: u32,
    options: &ImportOptions,
) -> Result<ResumeOutcome, TsvError> {
    import_archive_dir_resumable_with_vfs(archive_dir, state_dir, policy, version, options, &StdVfs)
}

/// [`import_archive_dir_resumable`], with every durability-critical
/// syscall (store checkpoint save, manifest tmp/fsync/rename) issued
/// through `vfs` — the injectable form the crash sweeps drive. A run
/// crashed at any syscall restarts under [`StdVfs`] and recovers to
/// the last completed checkpoint, never a torn in-between.
pub fn import_archive_dir_resumable_with_vfs(
    archive_dir: &Path,
    state_dir: &Path,
    policy: DedupPolicy,
    version: u32,
    options: &ImportOptions,
    vfs: &dyn Vfs,
) -> Result<ResumeOutcome, TsvError> {
    vfs.create_dir_all(state_dir)?;
    let (restored, checkpoint_discarded) = restore(state_dir, policy, version)?;
    let (mut store, mut stats, mut quarantine, resumed_snapshots) = match restored {
        Some((store, manifest)) => {
            let n = manifest.completed.len();
            (store, manifest.completed, manifest.quarantine, n)
        }
        None => (ClusterStore::new(), Vec::new(), QuarantineReport::default(), 0),
    };
    if resumed_snapshots == 0 {
        // Fresh run: truncate the quarantine sink (resumed runs append).
        if let Some(sink) = &options.quarantine_path {
            File::create(sink)?;
        }
    }

    let completed: std::collections::HashSet<String> =
        stats.iter().map(|s| s.date.clone()).collect();
    let mut imported_snapshots = 0;
    for path in tsv::archive_files(archive_dir)? {
        let date = tsv::date_from_file_name(&path).ok_or_else(|| TsvError::BadFileName {
            file: path.clone(),
        })?;
        if completed.contains(&date) {
            continue;
        }
        match tsv::read_snapshot_budgeted(&path, options, quarantine.events())? {
            Some(parsed) => {
                quarantine.lines_quarantined += parsed.quarantined;
                if parsed.remapped {
                    quarantine.remapped_headers += 1;
                }
                let mut st =
                    crate::import::import_snapshot(&mut store, &parsed.snapshot, policy, version);
                st.quarantined = parsed.quarantined;
                quarantine.per_snapshot.push((st.date.clone(), parsed.quarantined));
                stats.push(st);
            }
            None => {
                quarantine.files_quarantined += 1;
                if let Some(budget) = options.error_budget {
                    if quarantine.events() > budget {
                        return Err(TsvError::QuarantineBudget {
                            budget,
                            quarantined: quarantine.events(),
                        });
                    }
                }
                // A quarantined file is a terminal decision for this
                // run; record nothing in `completed` so a later run
                // with a repaired file picks it up.
                continue;
            }
        }
        imported_snapshots += 1;

        // Checkpoint: persist the store, then advance the manifest.
        // Order matters — a manifest must never promise snapshots the
        // store file does not contain.
        store.finalize();
        nc_docstore::persist::save_with(store.collection(), &store_path(state_dir), vfs).map_err(
            |e| TsvError::Checkpoint {
                message: format!("cannot persist store checkpoint: {e}"),
            },
        )?;
        let manifest = Manifest {
            format: MANIFEST_FORMAT,
            policy: policy.label().to_owned(),
            version,
            completed: stats.clone(),
            quarantine: quarantine.clone(),
        };
        let text = serde_json::to_string_pretty(&manifest).map_err(|e| TsvError::Checkpoint {
            message: format!("cannot serialize manifest: {e}"),
        })?;
        write_atomic(&manifest_path(state_dir), &text, vfs)?;
    }
    store.finalize();
    Ok(ResumeOutcome {
        store,
        stats,
        quarantine,
        resumed_snapshots,
        imported_snapshots,
        checkpoint_discarded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_votergen::config::GeneratorConfig;
    use nc_votergen::registry::Registry;
    use nc_votergen::snapshot::standard_calendar;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nc_ckpt_{}_{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn write_archive(dir: &Path, seed: u64, pop: usize, snapshots: usize) {
        let mut reg = Registry::new(GeneratorConfig {
            seed,
            initial_population: pop,
            ..Default::default()
        });
        for info in standard_calendar().iter().take(snapshots) {
            let snap = reg.generate_snapshot(info);
            tsv::write_snapshot(dir, &snap).unwrap();
        }
    }

    #[test]
    fn uninterrupted_run_checkpoints_and_matches_plain_import() {
        let archive = tmp_dir("plain_archive");
        let state = tmp_dir("plain_state");
        write_archive(&archive, 21, 60, 3);

        let mut direct = ClusterStore::new();
        let direct_stats =
            tsv::import_archive_dir(&mut direct, &archive, DedupPolicy::Trimmed, 1).unwrap();

        let out = import_archive_dir_resumable(
            &archive,
            &state,
            DedupPolicy::Trimmed,
            1,
            &ImportOptions::strict(),
        )
        .unwrap();
        assert_eq!(out.stats, direct_stats);
        assert_eq!(out.resumed_snapshots, 0);
        assert_eq!(out.imported_snapshots, 3);
        assert_eq!(out.store.record_count(), direct.record_count());
        assert!(manifest_path(&state).exists());
        assert!(store_path(&state).exists());

        std::fs::remove_dir_all(archive).unwrap();
        std::fs::remove_dir_all(state).unwrap();
    }

    #[test]
    fn interrupted_run_resumes_with_identical_stats() {
        let archive = tmp_dir("resume_archive");
        let state = tmp_dir("resume_state");
        write_archive(&archive, 22, 80, 4);

        // Reference: uninterrupted run over all four snapshots.
        let reference = import_archive_dir_resumable(
            &archive,
            &tmp_dir("resume_ref_state"),
            DedupPolicy::Trimmed,
            1,
            &ImportOptions::strict(),
        )
        .unwrap();

        // "Interrupted" run: import an archive that only contains the
        // first two snapshots, then the full archive resumes on top.
        let partial = tmp_dir("resume_partial");
        std::fs::create_dir_all(&partial).unwrap();
        let mut files = tsv::archive_files(&archive).unwrap();
        files.truncate(2);
        for f in &files {
            std::fs::copy(f, partial.join(f.file_name().unwrap())).unwrap();
        }
        let first = import_archive_dir_resumable(
            &partial,
            &state,
            DedupPolicy::Trimmed,
            1,
            &ImportOptions::strict(),
        )
        .unwrap();
        assert_eq!(first.imported_snapshots, 2);

        let second = import_archive_dir_resumable(
            &archive,
            &state,
            DedupPolicy::Trimmed,
            1,
            &ImportOptions::strict(),
        )
        .unwrap();
        assert_eq!(second.resumed_snapshots, 2);
        assert_eq!(second.imported_snapshots, 2);
        assert_eq!(second.checkpoint_discarded, None);
        assert_eq!(second.stats, reference.stats, "resumed stats must be identical");
        assert_eq!(second.store.record_count(), reference.store.record_count());
        assert_eq!(second.store.cluster_count(), reference.store.cluster_count());

        for d in [archive, state, partial, tmp_dir("resume_ref_state")] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn damaged_store_checkpoint_restarts_cleanly() {
        let archive = tmp_dir("damage_archive");
        let state = tmp_dir("damage_state");
        write_archive(&archive, 23, 50, 2);
        let first = import_archive_dir_resumable(
            &archive,
            &state,
            DedupPolicy::Trimmed,
            1,
            &ImportOptions::strict(),
        )
        .unwrap();

        // Tear the persisted store mid-file.
        let store_file = store_path(&state);
        let bytes = std::fs::read(&store_file).unwrap();
        std::fs::write(&store_file, &bytes[..bytes.len() / 2]).unwrap();

        let second = import_archive_dir_resumable(
            &archive,
            &state,
            DedupPolicy::Trimmed,
            1,
            &ImportOptions::strict(),
        )
        .unwrap();
        assert!(second.checkpoint_discarded.is_some(), "tear must be noticed");
        assert_eq!(second.resumed_snapshots, 0, "restart from scratch");
        assert_eq!(second.stats, first.stats, "restart result is identical");

        std::fs::remove_dir_all(archive).unwrap();
        std::fs::remove_dir_all(state).unwrap();
    }

    #[test]
    fn write_atomic_crash_sweep_leaves_old_or_new_bit_exactly() {
        use nc_vfs::fault::FaultVfs;

        let dir = tmp_dir("atomic_sweep");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        let (old_text, new_text) = ("{\"v\":1}\n", "{\"v\":2,\"grown\":true}\n");

        write_atomic(&path, old_text, &StdVfs).unwrap();
        let recorder = FaultVfs::recorder();
        write_atomic(&path, new_text, &recorder).unwrap();
        let total = recorder.ops();
        let rename_idx = recorder
            .trace()
            .iter()
            .find(|r| r.op == "rename")
            .expect("atomic write must rename")
            .index;

        for k in 0..total {
            std::fs::write(&path, old_text).unwrap();
            let _ = std::fs::remove_file(dir.join("manifest.json.tmp"));
            let vfs = FaultVfs::crash_at(k);
            write_atomic(&path, new_text, &vfs).unwrap_err();
            let after = std::fs::read_to_string(&path).unwrap();
            if k <= rename_idx {
                assert_eq!(after, old_text, "crash at {k}: rename never ran");
            } else {
                assert_eq!(after, new_text, "crash at {k}: rename committed");
            }
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn crash_at_every_syscall_then_resume_matches_uninterrupted_run() {
        use nc_vfs::fault::FaultVfs;

        let archive = tmp_dir("sweep_archive");
        write_archive(&archive, 25, 50, 2);
        let reference = import_archive_dir_resumable(
            &archive,
            &tmp_dir("sweep_ref_state"),
            DedupPolicy::Trimmed,
            1,
            &ImportOptions::strict(),
        )
        .unwrap();

        // Learn the syscall trace of a fresh run, fault-free.
        let recorder = FaultVfs::recorder();
        import_archive_dir_resumable_with_vfs(
            &archive,
            &tmp_dir("sweep_trace_state"),
            DedupPolicy::Trimmed,
            1,
            &ImportOptions::strict(),
            &recorder,
        )
        .unwrap();
        let total = recorder.ops();
        assert!(total > 4, "two snapshots must checkpoint twice: {total} ops");

        for k in 0..total {
            let state = tmp_dir("sweep_state");
            let vfs = FaultVfs::crash_at(k);
            import_archive_dir_resumable_with_vfs(
                &archive,
                &state,
                DedupPolicy::Trimmed,
                1,
                &ImportOptions::strict(),
                &vfs,
            )
            .unwrap_err();
            assert!(vfs.crashed(), "crash point {k} must have fired");

            // A new process over whatever hit the disk resumes (or
            // restarts) and converges on the uninterrupted result.
            let resumed = import_archive_dir_resumable(
                &archive,
                &state,
                DedupPolicy::Trimmed,
                1,
                &ImportOptions::strict(),
            )
            .unwrap();
            assert_eq!(resumed.stats, reference.stats, "crash at {k}");
            assert_eq!(
                resumed.store.record_count(),
                reference.store.record_count(),
                "crash at {k}"
            );
            std::fs::remove_dir_all(&state).unwrap();
        }
        for d in [archive, tmp_dir("sweep_ref_state"), tmp_dir("sweep_trace_state")] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn parameter_drift_is_rejected() {
        let archive = tmp_dir("drift_archive");
        let state = tmp_dir("drift_state");
        write_archive(&archive, 24, 40, 1);
        import_archive_dir_resumable(
            &archive,
            &state,
            DedupPolicy::Trimmed,
            1,
            &ImportOptions::strict(),
        )
        .unwrap();
        let err = import_archive_dir_resumable(
            &archive,
            &state,
            DedupPolicy::Exact,
            1,
            &ImportOptions::strict(),
        )
        .unwrap_err();
        assert!(matches!(err, TsvError::Checkpoint { .. }), "{err}");
        let err = import_archive_dir_resumable(
            &archive,
            &state,
            DedupPolicy::Trimmed,
            2,
            &ImportOptions::strict(),
        )
        .unwrap_err();
        assert!(matches!(err, TsvError::Checkpoint { .. }), "{err}");

        std::fs::remove_dir_all(archive).unwrap();
        std::fs::remove_dir_all(state).unwrap();
    }
}
