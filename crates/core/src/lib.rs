//! The paper's primary contribution: a pipeline that turns a historical,
//! snapshotted voter register into a large labeled test dataset for
//! duplicate detection.
//!
//! The pipeline mirrors Sections 4–5 of *"Generating Realistic Test
//! Datasets for Duplicate Detection at Scale Using Historical Voter
//! Data"* (EDBT 2021):
//!
//! 1. **Import** ([`import`]): snapshots are read row by row; every row
//!    is fingerprinted with [`md5`] over its relevant attributes and
//!    dropped when its duplicate cluster already contains the same
//!    fingerprint. Four removal policies are supported
//!    ([`record::DedupPolicy`]): keep everything, drop exact duplicates,
//!    drop duplicates that are exact after trimming, and drop duplicates
//!    whose *person data* is equivalent (Table 2).
//! 2. **Storage** ([`cluster`]): one aggregate document per voter
//!    (duplicate cluster) in an embedded [`nc_docstore`] collection,
//!    with records nested inside and split into person / district /
//!    election / meta sub-documents.
//! 3. **Statistics** ([`plausibility`], [`heterogeneity`], [`stats`]):
//!    precalculated similarity scores that let users repair unsound
//!    clusters and select data of a chosen dirtiness.
//! 4. **Versioning** ([`version`]): monotone version numbers, snapshot
//!    membership arrays and per-snapshot insert counters that make every
//!    published version reconstructible (Section 5.1–5.2).
//! 5. **Customization** ([`customize`]): heterogeneity-bounded cluster
//!    selection producing datasets like the paper's NC1/NC2/NC3.
//! 6. **Fault tolerance** ([`tsv`], [`checkpoint`]): quarantine-mode
//!    import that diverts malformed archive input instead of aborting,
//!    and checkpointed archive ingest that resumes an interrupted run
//!    after the last completed snapshot.
//! 7. **Serving hooks** ([`snapshot`]): immutable version-pinned
//!    [`snapshot::StoreSnapshot`] exports that the `nc-serve` crate
//!    carves concurrent customized datasets from.
//!
//! # Quickstart
//!
//! ```
//! use nc_core::pipeline::{GenerationConfig, TestDataGenerator};
//! use nc_core::record::DedupPolicy;
//! use nc_votergen::config::GeneratorConfig;
//!
//! let gen_cfg = GeneratorConfig { initial_population: 150, seed: 42, ..Default::default() };
//! let cfg = GenerationConfig {
//!     generator: gen_cfg,
//!     policy: DedupPolicy::Trimmed,
//!     snapshots: 6, // first six snapshots only, for the doctest
//! };
//! let outcome = TestDataGenerator::run(cfg);
//! assert!(outcome.store.cluster_count() >= 150);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod cluster;
pub mod customize;
pub mod heterogeneity;
pub mod import;
pub mod md5;
pub mod pipeline;
pub mod plausibility;
pub mod pollute;
pub mod record;
pub mod repair;
pub mod scoring;
pub mod snapshot;
pub mod stats;
pub mod tsv;
pub mod version;
