//! TSV snapshot files: the archive's on-disk interchange format.
//!
//! "The voter data is originally given as a set of TSV files"
//! (Section 5). This module writes simulated snapshots in that format
//! and imports snapshot files into a [`ClusterStore`], so the pipeline
//! can run against on-disk archives exactly like the real one — one
//! file per snapshot, named `VR_Snapshot_<YYYY-MM-DD>.tsv`, first line
//! the header.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use nc_votergen::schema::{Row, SCHEMA};
use nc_votergen::snapshot::Snapshot;

use crate::cluster::ClusterStore;
use crate::import::ImportStats;
use crate::record::DedupPolicy;

/// Errors of the TSV layer.
#[derive(Debug)]
pub enum TsvError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The header line does not match the schema.
    HeaderMismatch {
        /// The offending file.
        file: PathBuf,
    },
    /// A data line has the wrong number of fields.
    BadLine {
        /// The offending file.
        file: PathBuf,
        /// 1-based line number.
        line: usize,
    },
    /// The file name does not encode a snapshot date.
    BadFileName {
        /// The offending file.
        file: PathBuf,
    },
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::Io(e) => write!(f, "io error: {e}"),
            TsvError::HeaderMismatch { file } => {
                write!(f, "header of {} does not match the schema", file.display())
            }
            TsvError::BadLine { file, line } => {
                write!(f, "malformed line {line} in {}", file.display())
            }
            TsvError::BadFileName { file } => {
                write!(f, "cannot parse snapshot date from {}", file.display())
            }
        }
    }
}

impl std::error::Error for TsvError {}

impl From<std::io::Error> for TsvError {
    fn from(e: std::io::Error) -> Self {
        TsvError::Io(e)
    }
}

/// The canonical file name of a snapshot.
pub fn snapshot_file_name(date: &str) -> String {
    format!("VR_Snapshot_{date}.tsv")
}

/// Extract the snapshot date from a file path created by
/// [`snapshot_file_name`].
pub fn date_from_file_name(path: &Path) -> Option<String> {
    let stem = path.file_stem()?.to_str()?;
    let date = stem.strip_prefix("VR_Snapshot_")?;
    // Sanity: YYYY-MM-DD.
    nc_votergen::date::Date::parse(date)?;
    Some(date.to_owned())
}

/// Write one snapshot as a TSV file into `dir`; returns the file path.
pub fn write_snapshot(dir: &Path, snapshot: &Snapshot) -> Result<PathBuf, TsvError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(snapshot_file_name(&snapshot.date));
    let mut w = BufWriter::new(File::create(&path)?);
    let header: Vec<&str> = SCHEMA.iter().map(|a| a.name).collect();
    w.write_all(header.join("\t").as_bytes())?;
    w.write_all(b"\n")?;
    for row in &snapshot.rows {
        w.write_all(row.to_tsv().as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(path)
}

/// Read a snapshot TSV file back into rows.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, TsvError> {
    let date = date_from_file_name(path).ok_or_else(|| TsvError::BadFileName {
        file: path.to_owned(),
    })?;
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    let expected: Vec<&str> = SCHEMA.iter().map(|a| a.name).collect();
    if header.split('\t').collect::<Vec<_>>() != expected {
        return Err(TsvError::HeaderMismatch {
            file: path.to_owned(),
        });
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let row = Row::from_tsv(&line).ok_or_else(|| TsvError::BadLine {
            file: path.to_owned(),
            line: i + 2,
        })?;
        rows.push(row);
    }
    Ok(Snapshot {
        index: 0,
        date,
        rows,
    })
}

/// List the snapshot files of an archive directory, sorted by date
/// (belatedly published snapshots thus import in calendar order).
pub fn archive_files(dir: &Path) -> Result<Vec<PathBuf>, TsvError> {
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "tsv") {
            if let Some(date) = date_from_file_name(&path) {
                files.push((date, path));
            }
        }
    }
    files.sort();
    Ok(files.into_iter().map(|(_, p)| p).collect())
}

/// Import every snapshot file of an archive directory into a store.
pub fn import_archive_dir(
    store: &mut ClusterStore,
    dir: &Path,
    policy: DedupPolicy,
    version: u32,
) -> Result<Vec<ImportStats>, TsvError> {
    let mut stats = Vec::new();
    for path in archive_files(dir)? {
        let snapshot = read_snapshot(&path)?;
        stats.push(crate::import::import_snapshot(store, &snapshot, policy, version));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_votergen::config::GeneratorConfig;
    use nc_votergen::registry::Registry;
    use nc_votergen::snapshot::standard_calendar;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nc_tsv_{}_{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn two_snapshots(seed: u64) -> (Snapshot, Snapshot) {
        let mut reg = Registry::new(GeneratorConfig {
            seed,
            initial_population: 60,
            ..Default::default()
        });
        let cal = standard_calendar();
        (reg.generate_snapshot(&cal[0]), reg.generate_snapshot(&cal[1]))
    }

    #[test]
    fn file_name_round_trip() {
        let name = snapshot_file_name("2008-11-04");
        assert_eq!(name, "VR_Snapshot_2008-11-04.tsv");
        assert_eq!(
            date_from_file_name(Path::new(&name)).as_deref(),
            Some("2008-11-04")
        );
        assert!(date_from_file_name(Path::new("other.tsv")).is_none());
        assert!(date_from_file_name(Path::new("VR_Snapshot_garbage.tsv")).is_none());
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmp_dir("round_trip");
        let (s0, _) = two_snapshots(1);
        let path = write_snapshot(&dir, &s0).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.date, s0.date);
        assert_eq!(back.rows, s0.rows);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn archive_import_equals_direct_import() {
        let dir = tmp_dir("archive");
        let (s0, s1) = two_snapshots(2);
        // Write out of order; the archive lister must sort by date.
        write_snapshot(&dir, &s1).unwrap();
        write_snapshot(&dir, &s0).unwrap();

        let mut from_files = ClusterStore::new();
        let stats = import_archive_dir(&mut from_files, &dir, DedupPolicy::Trimmed, 1).unwrap();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].date, s0.date, "sorted by date");

        let mut direct = ClusterStore::new();
        crate::import::import_snapshot(&mut direct, &s0, DedupPolicy::Trimmed, 1);
        crate::import::import_snapshot(&mut direct, &s1, DedupPolicy::Trimmed, 1);

        assert_eq!(from_files.record_count(), direct.record_count());
        assert_eq!(from_files.cluster_count(), direct.cluster_count());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn header_mismatch_detected() {
        let dir = tmp_dir("badheader");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(snapshot_file_name("2008-11-04"));
        std::fs::write(&path, "wrong\theader\nA\tB\n").unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(matches!(err, TsvError::HeaderMismatch { .. }), "{err}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bad_line_detected() {
        let dir = tmp_dir("badline");
        let (s0, _) = two_snapshots(3);
        let path = write_snapshot(&dir, &s0).unwrap();
        // Append a malformed line.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "too\tfew\tfields").unwrap();
        drop(f);
        let err = read_snapshot(&path).unwrap_err();
        assert!(matches!(err, TsvError::BadLine { .. }), "{err}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_lines_are_skipped() {
        let dir = tmp_dir("emptylines");
        let (s0, _) = two_snapshots(4);
        let path = write_snapshot(&dir, &s0).unwrap();
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f).unwrap();
        drop(f);
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.rows.len(), s0.rows.len());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
