//! TSV snapshot files: the archive's on-disk interchange format.
//!
//! "The voter data is originally given as a set of TSV files"
//! (Section 5). This module writes simulated snapshots in that format
//! and imports snapshot files into a [`ClusterStore`], so the pipeline
//! can run against on-disk archives exactly like the real one — one
//! file per snapshot, named `VR_Snapshot_<YYYY-MM-DD>.tsv`, first line
//! the header.
//!
//! # Fault tolerance
//!
//! Real registries arrive dirty: torn lines, drifting headers, stray
//! encodings. Import therefore runs in one of two [`ImportMode`]s:
//!
//! * **Strict** (the default) fails fast on the first malformed line or
//!   header — the historical behavior, right for generated archives.
//! * **Quarantine** diverts malformed lines (and whole files with
//!   unmappable headers) to a quarantine sink instead of aborting. A
//!   drifted header — permuted, or with extra/missing columns — is
//!   remapped by column name when possible. An optional error budget
//!   escalates to a hard [`TsvError::QuarantineBudget`] failure once
//!   too much input has been diverted, so a systematically broken
//!   archive still fails loudly rather than importing near-nothing.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read as _, Write};
use std::path::{Path, PathBuf};

use nc_votergen::schema::{self, Row, NCID, NUM_ATTRS, SCHEMA};
use nc_votergen::snapshot::Snapshot;

use crate::cluster::ClusterStore;
use crate::import::ImportStats;
use crate::record::DedupPolicy;

/// Errors of the TSV layer.
#[derive(Debug)]
pub enum TsvError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The header line does not match the schema.
    HeaderMismatch {
        /// The offending file.
        file: PathBuf,
    },
    /// A data line has the wrong number of fields.
    BadLine {
        /// The offending file.
        file: PathBuf,
        /// 1-based line number.
        line: usize,
    },
    /// The file name does not encode a snapshot date.
    BadFileName {
        /// The offending file.
        file: PathBuf,
    },
    /// Quarantine-mode import diverted more input than the configured
    /// error budget allows: the archive is systematically broken.
    QuarantineBudget {
        /// The configured budget (maximum quarantine events).
        budget: u64,
        /// Quarantine events observed when the budget tripped.
        quarantined: u64,
    },
    /// A checkpoint manifest exists but cannot be resumed under the
    /// requested parameters (see [`crate::checkpoint`]).
    Checkpoint {
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::Io(e) => write!(f, "io error: {e}"),
            TsvError::HeaderMismatch { file } => {
                write!(f, "header of {} does not match the schema", file.display())
            }
            TsvError::BadLine { file, line } => {
                write!(f, "malformed line {line} in {}", file.display())
            }
            TsvError::BadFileName { file } => {
                write!(f, "cannot parse snapshot date from {}", file.display())
            }
            TsvError::QuarantineBudget { budget, quarantined } => {
                write!(
                    f,
                    "quarantine error budget exceeded: {quarantined} events > budget {budget}"
                )
            }
            TsvError::Checkpoint { message } => {
                write!(f, "cannot resume from checkpoint: {message}")
            }
        }
    }
}

impl std::error::Error for TsvError {}

impl From<std::io::Error> for TsvError {
    fn from(e: std::io::Error) -> Self {
        TsvError::Io(e)
    }
}

/// The canonical file name of a snapshot.
pub fn snapshot_file_name(date: &str) -> String {
    format!("VR_Snapshot_{date}.tsv")
}

/// Extract the snapshot date from a file path created by
/// [`snapshot_file_name`].
pub fn date_from_file_name(path: &Path) -> Option<String> {
    let stem = path.file_stem()?.to_str()?;
    let date = stem.strip_prefix("VR_Snapshot_")?;
    // Sanity: YYYY-MM-DD.
    nc_votergen::date::Date::parse(date)?;
    Some(date.to_owned())
}

/// Write one snapshot as a TSV file into `dir`; returns the file path.
pub fn write_snapshot(dir: &Path, snapshot: &Snapshot) -> Result<PathBuf, TsvError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(snapshot_file_name(&snapshot.date));
    let mut w = BufWriter::new(File::create(&path)?);
    let header: Vec<&str> = SCHEMA.iter().map(|a| a.name).collect();
    w.write_all(header.join("\t").as_bytes())?;
    w.write_all(b"\n")?;
    for row in &snapshot.rows {
        w.write_all(row.to_tsv().as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(path)
}

/// Read a snapshot TSV file back into rows.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, TsvError> {
    let date = date_from_file_name(path).ok_or_else(|| TsvError::BadFileName {
        file: path.to_owned(),
    })?;
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    let expected: Vec<&str> = SCHEMA.iter().map(|a| a.name).collect();
    if header.split('\t').collect::<Vec<_>>() != expected {
        return Err(TsvError::HeaderMismatch {
            file: path.to_owned(),
        });
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let row = Row::from_tsv(&line).ok_or_else(|| TsvError::BadLine {
            file: path.to_owned(),
            line: i + 2,
        })?;
        rows.push(row);
    }
    Ok(Snapshot {
        index: 0,
        date,
        rows,
    })
}

/// How import reacts to malformed archive input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImportMode {
    /// Abort on the first malformed line or header (historical behavior).
    #[default]
    Strict,
    /// Divert malformed input to the quarantine sink and keep going.
    Quarantine,
}

/// Options controlling fault handling during archive import.
#[derive(Debug, Clone, Default)]
pub struct ImportOptions {
    /// Strict or quarantine handling.
    pub mode: ImportMode,
    /// Maximum quarantine events (lines + whole files) tolerated across
    /// an import before it hard-fails with
    /// [`TsvError::QuarantineBudget`]. `None` = unlimited.
    pub error_budget: Option<u64>,
    /// File receiving quarantined raw lines with provenance comments.
    /// `None` = count only, keep no copies.
    pub quarantine_path: Option<PathBuf>,
}

impl ImportOptions {
    /// Strict mode (fail fast), no sink.
    pub fn strict() -> Self {
        ImportOptions::default()
    }

    /// Quarantine mode with unlimited budget and no sink.
    pub fn quarantine() -> Self {
        ImportOptions {
            mode: ImportMode::Quarantine,
            ..ImportOptions::default()
        }
    }

    /// Set the error budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.error_budget = Some(budget);
        self
    }

    /// Set the quarantine sink file.
    pub fn with_sink(mut self, path: impl Into<PathBuf>) -> Self {
        self.quarantine_path = Some(path.into());
        self
    }
}

/// Aggregate quarantine accounting for one archive import.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct QuarantineReport {
    /// Malformed data lines diverted.
    pub lines_quarantined: u64,
    /// Whole files diverted (unmappable headers).
    pub files_quarantined: u64,
    /// Files imported through a remapped (drifted) header.
    pub remapped_headers: u64,
    /// `(snapshot date, lines quarantined)` per imported snapshot.
    pub per_snapshot: Vec<(String, u64)>,
}

impl QuarantineReport {
    /// Total quarantine events (lines + files).
    pub fn events(&self) -> u64 {
        self.lines_quarantined + self.files_quarantined
    }
}

/// A snapshot read leniently, plus what was diverted on the way.
#[derive(Debug)]
pub struct ParsedSnapshot {
    /// The rows that survived.
    pub snapshot: Snapshot,
    /// Lines diverted to quarantine in this file.
    pub quarantined: u64,
    /// Whether the header had drifted and was remapped by column name.
    pub remapped: bool,
}

/// Append quarantined material to the sink file, with provenance.
struct QuarantineSink<'a> {
    path: Option<&'a Path>,
    writer: Option<BufWriter<File>>,
}

impl<'a> QuarantineSink<'a> {
    fn new(path: Option<&'a Path>) -> Self {
        QuarantineSink { path, writer: None }
    }

    fn write(&mut self, source: &Path, line: Option<usize>, reason: &str, raw: &[u8]) -> Result<(), TsvError> {
        let Some(path) = self.path else { return Ok(()) };
        if self.writer.is_none() {
            let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
            self.writer = Some(BufWriter::new(file));
        }
        let w = self.writer.as_mut().expect("just created");
        match line {
            Some(n) => writeln!(w, "# source={} line={n} reason={reason}", source.display())?,
            None => writeln!(w, "# source={} reason={reason}", source.display())?,
        }
        w.write_all(raw)?;
        w.write_all(b"\n")?;
        Ok(())
    }

    fn finish(mut self) -> Result<(), TsvError> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }
}

/// Map a drifted header onto the schema by column name.
///
/// Returns `Some(column -> attribute)` when every recognizable column
/// maps to a distinct attribute and the NCID column is present;
/// unknown columns map to `None` (dropped). Returns `None` when the
/// header cannot be mapped at all.
fn map_drifted_header(header: &str) -> Option<Vec<Option<usize>>> {
    let cols: Vec<&str> = header.split('\t').collect();
    let mut mapping: Vec<Option<usize>> = Vec::with_capacity(cols.len());
    let mut seen = [false; NUM_ATTRS];
    for col in &cols {
        match schema::attr_id(col.trim()) {
            Some(attr) => {
                if seen[attr] {
                    return None; // duplicated column
                }
                seen[attr] = true;
                mapping.push(Some(attr));
            }
            None => mapping.push(None),
        }
    }
    if !seen[NCID] {
        return None; // rows without an NCID cannot be clustered
    }
    Some(mapping)
}

/// Read one snapshot file under the given options.
///
/// In [`ImportMode::Strict`] this is exactly [`read_snapshot`]. In
/// [`ImportMode::Quarantine`], malformed lines (wrong field count,
/// invalid UTF-8) are diverted — to the sink, if one is configured —
/// and a drifted header is remapped by column name when possible.
/// `Ok(None)` means the whole file was quarantined (unmappable header).
pub fn read_snapshot_lenient(
    path: &Path,
    options: &ImportOptions,
) -> Result<Option<ParsedSnapshot>, TsvError> {
    read_snapshot_budgeted(path, options, 0)
}

/// [`read_snapshot_lenient`] with `prior_events` quarantine events
/// already charged against the budget (archive-level accounting, used
/// by the checkpointed and sharded archive importers).
pub fn read_snapshot_budgeted(
    path: &Path,
    options: &ImportOptions,
    prior_events: u64,
) -> Result<Option<ParsedSnapshot>, TsvError> {
    if options.mode == ImportMode::Strict {
        return read_snapshot(path).map(|snapshot| {
            Some(ParsedSnapshot { snapshot, quarantined: 0, remapped: false })
        });
    }
    let date = date_from_file_name(path).ok_or_else(|| TsvError::BadFileName {
        file: path.to_owned(),
    })?;
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    let mut sink = QuarantineSink::new(options.quarantine_path.as_deref());
    let mut lines = bytes.split(|&b| b == b'\n');

    // Header: exact, remappable, or the whole file is quarantined.
    let header_raw = lines.next().unwrap_or_default();
    let expected: Vec<&str> = SCHEMA.iter().map(|a| a.name).collect();
    let header = std::str::from_utf8(header_raw).unwrap_or("");
    let (mapping, remapped) = if header.split('\t').collect::<Vec<_>>() == expected {
        (None, false)
    } else {
        match map_drifted_header(header) {
            Some(m) => (Some(m), true),
            None => {
                sink.write(path, None, "header-unmappable (file quarantined)", header_raw)?;
                sink.finish()?;
                return Ok(None);
            }
        }
    };

    let mut rows = Vec::new();
    let mut quarantined: u64 = 0;
    let check_budget = |quarantined: u64| -> Result<(), TsvError> {
        if let Some(budget) = options.error_budget {
            let events = prior_events + quarantined;
            if events > budget {
                return Err(TsvError::QuarantineBudget { budget, quarantined: events });
            }
        }
        Ok(())
    };
    for (i, raw) in lines.enumerate() {
        if raw.is_empty() || raw.iter().all(|b| b.is_ascii_whitespace()) {
            continue;
        }
        let lineno = i + 2; // 1-based, after the header
        let Ok(line) = std::str::from_utf8(raw) else {
            quarantined += 1;
            sink.write(path, Some(lineno), "invalid-utf8", raw)?;
            check_budget(quarantined)?;
            continue;
        };
        let row = match &mapping {
            None => Row::from_tsv(line),
            Some(map) => {
                let fields: Vec<&str> = line.split('\t').collect();
                if fields.len() != map.len() {
                    None
                } else {
                    let mut row = Row::empty();
                    for (field, attr) in fields.iter().zip(map.iter()) {
                        if let Some(attr) = attr {
                            row.set(*attr, *field);
                        }
                    }
                    Some(row)
                }
            }
        };
        match row {
            Some(row) => rows.push(row),
            None => {
                quarantined += 1;
                sink.write(path, Some(lineno), "field-count-mismatch", raw)?;
                check_budget(quarantined)?;
            }
        }
    }
    sink.finish()?;
    Ok(Some(ParsedSnapshot {
        snapshot: Snapshot { index: 0, date, rows },
        quarantined,
        remapped,
    }))
}

/// Everything produced by a fault-tolerant archive import.
#[derive(Debug)]
pub struct ArchiveImportOutcome {
    /// Per-snapshot import statistics (quarantine counts included).
    pub stats: Vec<ImportStats>,
    /// Aggregate quarantine accounting.
    pub quarantine: QuarantineReport,
}

/// Import every snapshot file of an archive directory under the given
/// fault-handling options.
///
/// In quarantine mode the sink file (if configured) is truncated at the
/// start of the run and receives every diverted line with provenance
/// comments. The error budget is enforced across the whole run.
pub fn import_archive_dir_with(
    store: &mut ClusterStore,
    dir: &Path,
    policy: DedupPolicy,
    version: u32,
    options: &ImportOptions,
) -> Result<ArchiveImportOutcome, TsvError> {
    if let Some(sink) = &options.quarantine_path {
        // Fresh sink per run; read_snapshot_budgeted appends.
        File::create(sink)?;
    }
    let mut stats = Vec::new();
    let mut report = QuarantineReport::default();
    for path in archive_files(dir)? {
        match read_snapshot_budgeted(&path, options, report.events())? {
            Some(parsed) => {
                report.lines_quarantined += parsed.quarantined;
                if parsed.remapped {
                    report.remapped_headers += 1;
                }
                let mut st =
                    crate::import::import_snapshot(store, &parsed.snapshot, policy, version);
                st.quarantined = parsed.quarantined;
                report
                    .per_snapshot
                    .push((st.date.clone(), parsed.quarantined));
                stats.push(st);
            }
            None => {
                report.files_quarantined += 1;
                if let Some(budget) = options.error_budget {
                    if report.events() > budget {
                        return Err(TsvError::QuarantineBudget {
                            budget,
                            quarantined: report.events(),
                        });
                    }
                }
            }
        }
    }
    Ok(ArchiveImportOutcome { stats, quarantine: report })
}

/// List the snapshot files of an archive directory, sorted by date
/// (belatedly published snapshots thus import in calendar order).
pub fn archive_files(dir: &Path) -> Result<Vec<PathBuf>, TsvError> {
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "tsv") {
            if let Some(date) = date_from_file_name(&path) {
                files.push((date, path));
            }
        }
    }
    files.sort();
    Ok(files.into_iter().map(|(_, p)| p).collect())
}

/// Import every snapshot file of an archive directory into a store,
/// failing fast on malformed input ([`ImportMode::Strict`]).
pub fn import_archive_dir(
    store: &mut ClusterStore,
    dir: &Path,
    policy: DedupPolicy,
    version: u32,
) -> Result<Vec<ImportStats>, TsvError> {
    import_archive_dir_with(store, dir, policy, version, &ImportOptions::strict())
        .map(|outcome| outcome.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_votergen::config::GeneratorConfig;
    use nc_votergen::registry::Registry;
    use nc_votergen::snapshot::standard_calendar;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nc_tsv_{}_{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn two_snapshots(seed: u64) -> (Snapshot, Snapshot) {
        let mut reg = Registry::new(GeneratorConfig {
            seed,
            initial_population: 60,
            ..Default::default()
        });
        let cal = standard_calendar();
        (reg.generate_snapshot(&cal[0]), reg.generate_snapshot(&cal[1]))
    }

    #[test]
    fn file_name_round_trip() {
        let name = snapshot_file_name("2008-11-04");
        assert_eq!(name, "VR_Snapshot_2008-11-04.tsv");
        assert_eq!(
            date_from_file_name(Path::new(&name)).as_deref(),
            Some("2008-11-04")
        );
        assert!(date_from_file_name(Path::new("other.tsv")).is_none());
        assert!(date_from_file_name(Path::new("VR_Snapshot_garbage.tsv")).is_none());
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmp_dir("round_trip");
        let (s0, _) = two_snapshots(1);
        let path = write_snapshot(&dir, &s0).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.date, s0.date);
        assert_eq!(back.rows, s0.rows);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn archive_import_equals_direct_import() {
        let dir = tmp_dir("archive");
        let (s0, s1) = two_snapshots(2);
        // Write out of order; the archive lister must sort by date.
        write_snapshot(&dir, &s1).unwrap();
        write_snapshot(&dir, &s0).unwrap();

        let mut from_files = ClusterStore::new();
        let stats = import_archive_dir(&mut from_files, &dir, DedupPolicy::Trimmed, 1).unwrap();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].date, s0.date, "sorted by date");

        let mut direct = ClusterStore::new();
        crate::import::import_snapshot(&mut direct, &s0, DedupPolicy::Trimmed, 1);
        crate::import::import_snapshot(&mut direct, &s1, DedupPolicy::Trimmed, 1);

        assert_eq!(from_files.record_count(), direct.record_count());
        assert_eq!(from_files.cluster_count(), direct.cluster_count());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn header_mismatch_detected() {
        let dir = tmp_dir("badheader");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(snapshot_file_name("2008-11-04"));
        std::fs::write(&path, "wrong\theader\nA\tB\n").unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(matches!(err, TsvError::HeaderMismatch { .. }), "{err}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bad_line_detected() {
        let dir = tmp_dir("badline");
        let (s0, _) = two_snapshots(3);
        let path = write_snapshot(&dir, &s0).unwrap();
        // Append a malformed line.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "too\tfew\tfields").unwrap();
        drop(f);
        let err = read_snapshot(&path).unwrap_err();
        assert!(matches!(err, TsvError::BadLine { .. }), "{err}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_lines_are_skipped() {
        let dir = tmp_dir("emptylines");
        let (s0, _) = two_snapshots(4);
        let path = write_snapshot(&dir, &s0).unwrap();
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f).unwrap();
        drop(f);
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.rows.len(), s0.rows.len());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Append raw bytes (plus a newline) to a snapshot file.
    fn append_raw(path: &Path, bytes: &[u8]) {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(path).unwrap();
        f.write_all(bytes).unwrap();
        f.write_all(b"\n").unwrap();
    }

    #[test]
    fn lenient_strict_mode_equals_read_snapshot() {
        let dir = tmp_dir("lenient_strict");
        let (s0, _) = two_snapshots(5);
        let path = write_snapshot(&dir, &s0).unwrap();
        let parsed = read_snapshot_lenient(&path, &ImportOptions::strict())
            .unwrap()
            .unwrap();
        assert_eq!(parsed.snapshot.rows, read_snapshot(&path).unwrap().rows);
        assert_eq!(parsed.quarantined, 0);
        assert!(!parsed.remapped);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn quarantine_diverts_bad_lines_and_keeps_good_rows() {
        let dir = tmp_dir("quarantine_lines");
        let (s0, _) = two_snapshots(6);
        let path = write_snapshot(&dir, &s0).unwrap();
        append_raw(&path, b"too\tfew\tfields");
        append_raw(&path, &[0xFF, 0xFE, b'\t', b'x']); // invalid UTF-8
        let sink = dir.join("quarantine.tsv");

        let options = ImportOptions::quarantine().with_sink(&sink);
        let parsed = read_snapshot_lenient(&path, &options).unwrap().unwrap();
        assert_eq!(parsed.snapshot.rows, s0.rows, "good rows survive intact");
        assert_eq!(parsed.quarantined, 2);

        let quarantined = std::fs::read(&sink).unwrap();
        let text = String::from_utf8_lossy(&quarantined);
        assert!(text.contains("field-count-mismatch"), "{text}");
        assert!(text.contains("invalid-utf8"), "{text}");
        assert!(text.contains("too\tfew\tfields"), "raw line preserved");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn strict_mode_still_fails_fast_on_bad_line() {
        let dir = tmp_dir("strict_fails");
        let (s0, _) = two_snapshots(7);
        let path = write_snapshot(&dir, &s0).unwrap();
        append_raw(&path, b"too\tfew\tfields");
        let err = read_snapshot_lenient(&path, &ImportOptions::strict()).unwrap_err();
        assert!(matches!(err, TsvError::BadLine { .. }), "{err}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn drifted_header_is_remapped_by_name() {
        let dir = tmp_dir("drifted_header");
        let (s0, _) = two_snapshots(8);
        // Rebuild the file with an extra unknown trailing column.
        let path = dir.join(snapshot_file_name(&s0.date));
        std::fs::create_dir_all(&dir).unwrap();
        let mut text = String::new();
        let header: Vec<&str> = SCHEMA.iter().map(|a| a.name).collect();
        text.push_str(&header.join("\t"));
        text.push_str("\tlegacy_junk\n");
        for row in &s0.rows {
            text.push_str(&row.to_tsv());
            text.push_str("\textra\n");
        }
        std::fs::write(&path, text).unwrap();

        let parsed = read_snapshot_lenient(&path, &ImportOptions::quarantine())
            .unwrap()
            .unwrap();
        assert!(parsed.remapped);
        assert_eq!(parsed.quarantined, 0);
        assert_eq!(parsed.snapshot.rows, s0.rows, "unknown column dropped");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn unmappable_header_quarantines_whole_file() {
        let dir = tmp_dir("unmappable");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(snapshot_file_name("2008-11-04"));
        std::fs::write(&path, "alpha\tbeta\nA\tB\n").unwrap();
        let sink = dir.join("quarantine.tsv");

        let options = ImportOptions::quarantine().with_sink(&sink);
        assert!(read_snapshot_lenient(&path, &options).unwrap().is_none());
        let text = std::fs::read_to_string(&sink).unwrap();
        assert!(text.contains("header-unmappable"), "{text}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn error_budget_escalates_to_hard_failure() {
        let dir = tmp_dir("budget");
        let (s0, _) = two_snapshots(9);
        let path = write_snapshot(&dir, &s0).unwrap();
        append_raw(&path, b"bad\tline");
        append_raw(&path, b"another\tbad\tline");

        // Budget 2 tolerates both diverted lines...
        let lenient = ImportOptions::quarantine().with_budget(2);
        assert!(read_snapshot_lenient(&path, &lenient).is_ok());
        // ...budget 1 trips on the second.
        let tight = ImportOptions::quarantine().with_budget(1);
        let err = read_snapshot_lenient(&path, &tight).unwrap_err();
        assert!(
            matches!(err, TsvError::QuarantineBudget { budget: 1, quarantined: 2 }),
            "{err}"
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn archive_quarantine_run_equals_clean_run_minus_bad_rows() {
        let clean_dir = tmp_dir("clean_archive");
        let dirty_dir = tmp_dir("dirty_archive");
        let (s0, s1) = two_snapshots(10);
        write_snapshot(&clean_dir, &s0).unwrap();
        write_snapshot(&clean_dir, &s1).unwrap();
        write_snapshot(&dirty_dir, &s0).unwrap();
        let dirty_path = write_snapshot(&dirty_dir, &s1).unwrap();
        append_raw(&dirty_path, b"torn\trow");

        let mut clean = ClusterStore::new();
        let clean_stats =
            import_archive_dir(&mut clean, &clean_dir, DedupPolicy::Trimmed, 1).unwrap();

        let mut dirty = ClusterStore::new();
        let outcome = import_archive_dir_with(
            &mut dirty,
            &dirty_dir,
            DedupPolicy::Trimmed,
            1,
            &ImportOptions::quarantine(),
        )
        .unwrap();
        assert_eq!(outcome.quarantine.lines_quarantined, 1);
        assert_eq!(outcome.stats[1].quarantined, 1);
        assert_eq!(dirty.record_count(), clean.record_count());
        assert_eq!(dirty.cluster_count(), clean.cluster_count());
        // Stats agree except for the quarantine count of the torn file.
        assert_eq!(outcome.stats[0], clean_stats[0]);
        assert_eq!(outcome.stats[1].total_rows, clean_stats[1].total_rows);
        assert_eq!(outcome.stats[1].new_records, clean_stats[1].new_records);

        std::fs::remove_dir_all(clean_dir).unwrap();
        std::fs::remove_dir_all(dirty_dir).unwrap();
    }
}
