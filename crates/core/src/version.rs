//! Versioning and reproducibility (Sections 5.1–5.2).
//!
//! The test dataset grows monotonically: no record is ever removed, so
//! tagging every record with the first version that contained it makes
//! every published version reconstructible by filtering. Users may also
//! restrict evaluation to an arbitrary subset of snapshots using the
//! per-record snapshot-membership arrays.

use std::collections::HashSet;

use nc_votergen::schema::Row;

use crate::cluster::ClusterStore;
use crate::import::ImportStats;

/// Metadata of one published dataset version.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionInfo {
    /// Version number (1-based, monotonically increasing).
    pub number: u32,
    /// Snapshot dates imported by this version.
    pub snapshots: Vec<String>,
    /// Records in the dataset after publishing this version.
    pub records_total: u64,
    /// Clusters in the dataset after publishing this version.
    pub clusters_total: u64,
}

/// Tracks published versions of a growing test dataset.
#[derive(Debug, Clone, Default)]
pub struct VersionManager {
    versions: Vec<VersionInfo>,
}

impl VersionManager {
    /// Create with no published versions.
    pub fn new() -> Self {
        Self::default()
    }

    /// The version number to tag records of the *next* import with.
    pub fn next_version(&self) -> u32 {
        self.versions.len() as u32 + 1
    }

    /// The most recently published version, if any.
    pub fn current(&self) -> Option<&VersionInfo> {
        self.versions.last()
    }

    /// All published versions in order.
    pub fn history(&self) -> &[VersionInfo] {
        &self.versions
    }

    /// Publish a new version after importing `imports` into `store`.
    ///
    /// A version can also be published with no new snapshots ("new
    /// statistics are required" in Figure 2) — pass an empty slice.
    pub fn publish(&mut self, store: &ClusterStore, imports: &[ImportStats]) -> &VersionInfo {
        let info = VersionInfo {
            number: self.next_version(),
            snapshots: imports.iter().map(|s| s.date.clone()).collect(),
            records_total: store.record_count(),
            clusters_total: store.cluster_count() as u64,
        };
        self.versions.push(info);
        self.versions.last().expect("just pushed")
    }

    /// Reconstruct a previous version: clusters restricted to records
    /// whose first containing version is ≤ `version`. Clusters with no
    /// qualifying record are omitted.
    pub fn reconstruct(&self, store: &ClusterStore, version: u32) -> Vec<(String, Vec<Row>)> {
        let mut out = Vec::new();
        for (ncid, _) in store.cluster_ids() {
            let versions = store
                .record_versions(&ncid)
                .expect("cluster has version info");
            // Clusters whose records all qualify — every cluster when
            // reconstructing the current version — keep their
            // materialized rows as-is instead of paying the
            // zip/filter re-collect.
            if versions.iter().all(|&v| v <= version) {
                let rows = store.cluster_rows(&ncid);
                out.push((ncid, rows));
                continue;
            }
            let rows = store.cluster_rows(&ncid);
            let kept: Vec<Row> = rows
                .into_iter()
                .zip(versions.iter())
                .filter(|(_, &v)| v <= version)
                .map(|(r, _)| r)
                .collect();
            if !kept.is_empty() {
                out.push((ncid, kept));
            }
        }
        out
    }

    /// Restrict the dataset to records contained in at least one of the
    /// given snapshots (Section 5.1.2: "limit their evaluation to an
    /// arbitrary subset of snapshots").
    pub fn restrict_to_snapshots(
        store: &ClusterStore,
        snapshots: &HashSet<String>,
    ) -> Vec<(String, Vec<Row>)> {
        let mut out = Vec::new();
        for (ncid, _) in store.cluster_ids() {
            let rows = store.cluster_rows(&ncid);
            let membership = store
                .record_snapshots(&ncid)
                .expect("cluster has snapshot info");
            let kept: Vec<Row> = rows
                .into_iter()
                .zip(membership.iter())
                .filter(|(_, snaps)| snaps.iter().any(|s| snapshots.contains(s)))
                .map(|(r, _)| r)
                .collect();
            if !kept.is_empty() {
                out.push((ncid, kept));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DedupPolicy;
    use nc_votergen::schema::{LAST_NAME, NCID, SNAPSHOT_DT};

    fn row(ncid: &str, last: &str, snap: &str) -> Row {
        let mut r = Row::empty();
        r.set(NCID, ncid);
        r.set(LAST_NAME, last);
        r.set(SNAPSHOT_DT, snap);
        r
    }

    fn import(store: &mut ClusterStore, ncid: &str, last: &str, snap: &str, version: u32) {
        store.import_row(row(ncid, last, snap), DedupPolicy::Trimmed, snap, version);
    }

    #[test]
    fn versions_are_monotone() {
        let mut vm = VersionManager::new();
        let store = ClusterStore::new();
        assert_eq!(vm.next_version(), 1);
        vm.publish(&store, &[]);
        assert_eq!(vm.next_version(), 2);
        assert_eq!(vm.current().unwrap().number, 1);
        assert_eq!(vm.history().len(), 1);
    }

    #[test]
    fn publish_captures_totals_and_snapshots() {
        let mut vm = VersionManager::new();
        let mut store = ClusterStore::new();
        import(&mut store, "A1", "SMITH", "2008-11-04", 1);
        import(&mut store, "A2", "JONES", "2008-11-04", 1);
        let stats = ImportStats {
            date: "2008-11-04".into(),
            total_rows: 2,
            new_records: 2,
            new_clusters: 2,
            quarantined: 0,
        };
        let info = vm.publish(&store, std::slice::from_ref(&stats));
        assert_eq!(info.records_total, 2);
        assert_eq!(info.clusters_total, 2);
        assert_eq!(info.snapshots, vec!["2008-11-04"]);
    }

    #[test]
    fn reconstruct_filters_by_first_version() {
        let mut vm = VersionManager::new();
        let mut store = ClusterStore::new();
        // Version 1: two clusters.
        import(&mut store, "A1", "SMITH", "2008-11-04", 1);
        import(&mut store, "A2", "JONES", "2008-11-04", 1);
        vm.publish(&store, &[]);
        // Version 2: a new record and a new cluster.
        import(&mut store, "A1", "SMYTHE", "2009-01-01", 2);
        import(&mut store, "A3", "DAVIS", "2009-01-01", 2);
        vm.publish(&store, &[]);

        let v1 = vm.reconstruct(&store, 1);
        assert_eq!(v1.len(), 2);
        let a1 = v1.iter().find(|(n, _)| n == "A1").unwrap();
        assert_eq!(a1.1.len(), 1);
        assert_eq!(a1.1[0].get(LAST_NAME), "SMITH");

        let v2 = vm.reconstruct(&store, 2);
        assert_eq!(v2.len(), 3);
        let a1 = v2.iter().find(|(n, _)| n == "A1").unwrap();
        assert_eq!(a1.1.len(), 2);
    }

    #[test]
    fn current_version_is_superset_of_past_versions() {
        let mut vm = VersionManager::new();
        let mut store = ClusterStore::new();
        import(&mut store, "A1", "SMITH", "s1", 1);
        vm.publish(&store, &[]);
        import(&mut store, "A1", "SMYTHE", "s2", 2);
        import(&mut store, "A2", "JONES", "s2", 2);
        vm.publish(&store, &[]);

        let v1: u64 = vm.reconstruct(&store, 1).iter().map(|(_, r)| r.len() as u64).sum();
        let v2: u64 = vm.reconstruct(&store, 2).iter().map(|(_, r)| r.len() as u64).sum();
        assert!(v1 <= v2);
        assert_eq!(v2, store.record_count());
    }

    #[test]
    fn snapshot_restriction() {
        let mut store = ClusterStore::new();
        import(&mut store, "A1", "SMITH", "s1", 1);
        // Same record appears in s2 → membership recorded, not a new record.
        import(&mut store, "A1", "SMITH", "s2", 1);
        import(&mut store, "A1", "SMYTHE", "s3", 1);
        import(&mut store, "A2", "JONES", "s3", 1);

        let only_s1: HashSet<String> = ["s1".to_owned()].into();
        let got = VersionManager::restrict_to_snapshots(&store, &only_s1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.len(), 1);
        assert_eq!(got[0].1[0].get(LAST_NAME), "SMITH");

        let s2_s3: HashSet<String> = ["s2".to_owned(), "s3".to_owned()].into();
        let got = VersionManager::restrict_to_snapshots(&store, &s2_s3);
        let a1 = got.iter().find(|(n, _)| n == "A1").unwrap();
        assert_eq!(a1.1.len(), 2, "SMITH appears in s2, SMYTHE in s3");
    }
}
