//! Data pollution on top of historical data (the paper's future work,
//! Section 8).
//!
//! The paper proposes combining its historical approach with a scalable
//! data-pollution tool (DaPo) "to unite the strengths of having real
//! outdated values and being able to inject additional errors at will".
//! This module implements that combination: it takes a customized test
//! dataset — whose records already carry real outdated values from the
//! snapshot history — and injects *additional*, configurable errors
//! without touching the gold standard. It can also synthesize extra
//! duplicate records (erroneous copies) to densify clusters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nc_votergen::config::ErrorRates;
use nc_votergen::errors;
use nc_votergen::schema::{AttrGroup, Row, SCHEMA};

use crate::customize::CustomDataset;

/// Configuration of the pollution pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PollutionConfig {
    /// Per-value corruption rates applied to existing records.
    pub rates: ErrorRates,
    /// Probability of stray whitespace per value.
    pub whitespace_rate: f64,
    /// Probability per record that its name values get confused between
    /// attributes.
    pub confusion_rate: f64,
    /// Probability per record that an additional erroneous duplicate of
    /// it is appended to its cluster.
    pub duplicate_rate: f64,
    /// Restrict corruption to person attributes (district/election
    /// values stay pristine).
    pub person_attrs_only: bool,
    /// Seed for the pollution RNG.
    pub seed: u64,
}

impl Default for PollutionConfig {
    fn default() -> Self {
        PollutionConfig {
            rates: ErrorRates::default(),
            whitespace_rate: 0.01,
            confusion_rate: 0.01,
            duplicate_rate: 0.0,
            person_attrs_only: true,
            seed: 0xDA90,
        }
    }
}

/// Summary of what a pollution pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollutionStats {
    /// Values corrupted in place.
    pub corrupted_values: u64,
    /// Records whose names were confused.
    pub confused_records: u64,
    /// Extra duplicate records appended.
    pub duplicates_added: u64,
}

/// Corrupt one row in place; returns the number of corrupted values.
fn pollute_row<R: Rng>(rng: &mut R, cfg: &PollutionConfig, row: &mut Row) -> u64 {
    let mut corrupted = 0;
    for (attr, spec) in SCHEMA.iter().enumerate() {
        if cfg.person_attrs_only && spec.group != AttrGroup::Person {
            continue;
        }
        // Never corrupt the NCID — it is the gold standard.
        if spec.name == "ncid" {
            continue;
        }
        let value = row.get(attr).to_owned();
        if value.is_empty() {
            continue;
        }
        let mut new_value = errors::corrupt_value(rng, &cfg.rates, &value);
        if rng.gen_bool(cfg.whitespace_rate) {
            new_value = errors::pad_whitespace(rng, &new_value);
        }
        if new_value != value {
            corrupted += 1;
            row.set(attr, new_value);
        }
    }
    corrupted
}

/// Pollute a customized dataset in place.
///
/// The cluster structure (the gold standard) is preserved: corrupted
/// records keep their cluster membership and synthesized duplicates are
/// appended to the cluster they copy.
pub fn pollute(dataset: &mut CustomDataset, cfg: &PollutionConfig) -> PollutionStats {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stats = PollutionStats::default();
    for cluster in &mut dataset.clusters {
        let mut extra: Vec<Row> = Vec::new();
        for row in &mut cluster.records {
            stats.corrupted_values += pollute_row(&mut rng, cfg, row);
            if rng.gen_bool(cfg.confusion_rate) {
                errors::confuse_values(&mut rng, row);
                stats.confused_records += 1;
            }
            if rng.gen_bool(cfg.duplicate_rate) {
                let mut copy = row.clone();
                // The synthetic duplicate must differ somewhere: force at
                // least one typo-class corruption on top of the rates.
                let forced = ErrorRates {
                    typo: 1.0,
                    ..ErrorRates::none()
                };
                for attr in [
                    nc_votergen::schema::FIRST_NAME,
                    nc_votergen::schema::LAST_NAME,
                ] {
                    let v = copy.get(attr).to_owned();
                    if !v.is_empty() {
                        copy.set(attr, errors::corrupt_value(&mut rng, &forced, &v));
                        break;
                    }
                }
                extra.push(copy);
                stats.duplicates_added += 1;
            }
        }
        cluster.records.extend(extra);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::customize::CustomCluster;
    use nc_votergen::schema::{FIRST_NAME, LAST_NAME, MIDL_NAME, NCID, NC_HOUSE};

    fn dataset() -> CustomDataset {
        let mk = |ncid: &str, first: &str, last: &str| {
            let mut r = Row::empty();
            r.set(NCID, ncid);
            r.set(FIRST_NAME, first);
            r.set(MIDL_NAME, "ANN");
            r.set(LAST_NAME, last);
            r.set(NC_HOUSE, "NC HOUSE DISTRICT 64");
            r
        };
        CustomDataset {
            clusters: vec![
                CustomCluster {
                    ncid: "A1".into(),
                    records: vec![mk("A1", "MARY", "SMITH"), mk("A1", "MARY", "SMYTH")],
                },
                CustomCluster {
                    ncid: "B2".into(),
                    records: vec![mk("B2", "JOHN", "JONES")],
                },
            ],
            sampled: vec!["A1".into(), "B2".into()],
        }
    }

    #[test]
    fn zero_config_is_identity() {
        let mut ds = dataset();
        let before = ds.clusters.clone();
        let stats = pollute(
            &mut ds,
            &PollutionConfig {
                rates: ErrorRates::none(),
                whitespace_rate: 0.0,
                confusion_rate: 0.0,
                duplicate_rate: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(stats, PollutionStats::default());
        for (a, b) in before.iter().zip(&ds.clusters) {
            assert_eq!(a.records, b.records);
        }
    }

    #[test]
    fn heavy_rates_corrupt_values_but_not_ncid() {
        let mut ds = dataset();
        let cfg = PollutionConfig {
            rates: ErrorRates {
                typo: 1.0,
                ..ErrorRates::none()
            },
            confusion_rate: 0.0,
            whitespace_rate: 0.0,
            ..Default::default()
        };
        let stats = pollute(&mut ds, &cfg);
        assert!(stats.corrupted_values > 0);
        for c in &ds.clusters {
            for r in &c.records {
                assert_eq!(r.get(NCID), c.ncid, "NCID untouched");
            }
        }
    }

    #[test]
    fn person_scope_leaves_districts_alone() {
        let mut ds = dataset();
        let cfg = PollutionConfig {
            rates: ErrorRates {
                typo: 1.0,
                ..ErrorRates::none()
            },
            person_attrs_only: true,
            whitespace_rate: 0.0,
            confusion_rate: 0.0,
            ..Default::default()
        };
        pollute(&mut ds, &cfg);
        for c in &ds.clusters {
            for r in &c.records {
                assert_eq!(r.get(NC_HOUSE), "NC HOUSE DISTRICT 64");
            }
        }
    }

    #[test]
    fn duplicates_grow_clusters_and_gold_standard() {
        let mut ds = dataset();
        let before_pairs = ds.duplicate_pairs();
        let cfg = PollutionConfig {
            rates: ErrorRates::none(),
            whitespace_rate: 0.0,
            confusion_rate: 0.0,
            duplicate_rate: 1.0,
            ..Default::default()
        };
        let stats = pollute(&mut ds, &cfg);
        assert_eq!(stats.duplicates_added, 3);
        assert_eq!(ds.record_count(), 6);
        assert!(ds.duplicate_pairs() > before_pairs);
        // The singleton cluster became a real duplicate cluster.
        let b2 = ds.clusters.iter().find(|c| c.ncid == "B2").unwrap();
        assert_eq!(b2.records.len(), 2);
        assert_ne!(b2.records[0], b2.records[1], "copy must differ");
    }

    #[test]
    fn pollution_is_deterministic_in_seed() {
        let run = |seed| {
            let mut ds = dataset();
            pollute(
                &mut ds,
                &PollutionConfig {
                    seed,
                    duplicate_rate: 0.5,
                    ..Default::default()
                },
            );
            ds.clusters
                .iter()
                .flat_map(|c| c.records.iter().map(|r| r.to_tsv()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn confusion_swaps_names() {
        let mut ds = dataset();
        let cfg = PollutionConfig {
            rates: ErrorRates::none(),
            whitespace_rate: 0.0,
            confusion_rate: 1.0,
            duplicate_rate: 0.0,
            ..Default::default()
        };
        let stats = pollute(&mut ds, &cfg);
        assert_eq!(stats.confused_records, 3);
    }
}
