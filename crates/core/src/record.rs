//! Record canonicalization: trimming, fingerprinting and the nested
//! document layout of stored records.

use nc_docstore::value::Document;
use nc_votergen::schema::{self, AttrGroup, AttrId, Row, SCHEMA};

use crate::md5::{md5_str, Digest};

/// The four duplicate-removal policies of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DedupPolicy {
    /// Keep every row ("no" in Table 2).
    None,
    /// Remove rows whose relevant attributes are byte-identical.
    Exact,
    /// Remove rows identical after trimming whitespace — the policy
    /// behind the published 120 M-record dataset.
    Trimmed,
    /// Remove rows whose trimmed *person data* is identical.
    PersonData,
}

impl DedupPolicy {
    /// All policies in Table 2 order.
    pub const ALL: [DedupPolicy; 4] = [
        DedupPolicy::None,
        DedupPolicy::Exact,
        DedupPolicy::Trimmed,
        DedupPolicy::PersonData,
    ];

    /// Human-readable label matching Table 2's first column.
    pub fn label(self) -> &'static str {
        match self {
            DedupPolicy::None => "no",
            DedupPolicy::Exact => "exact",
            DedupPolicy::Trimmed => "trimming",
            DedupPolicy::PersonData => "person data",
        }
    }

    /// The attribute set hashed under this policy (dates and age are
    /// always excluded; Section 4).
    pub fn hash_attrs(self) -> Vec<AttrId> {
        match self {
            DedupPolicy::None | DedupPolicy::Exact | DedupPolicy::Trimmed => {
                schema::hash_attrs_all()
            }
            DedupPolicy::PersonData => schema::hash_attrs_person(),
        }
    }

    /// Whether values are trimmed before hashing.
    pub fn trims(self) -> bool {
        matches!(self, DedupPolicy::Trimmed | DedupPolicy::PersonData)
    }
}

/// Compute the dedup fingerprint of a row under a policy: the MD5 of the
/// concatenation of the relevant attribute values, separated by an
/// unambiguous delimiter.
pub fn fingerprint(row: &Row, policy: DedupPolicy) -> Digest {
    let attrs = policy.hash_attrs();
    let mut input = String::new();
    for &a in &attrs {
        let v = row.get(a);
        if policy.trims() {
            input.push_str(v.trim());
        } else {
            input.push_str(v);
        }
        input.push('\u{1f}'); // unit separator: cannot occur in the data
    }
    md5_str(&input)
}

/// Trim every value of a row in place (the paper's preparation step).
pub fn trim_row(row: &mut Row) {
    for v in row.values.iter_mut() {
        let trimmed = v.trim();
        if trimmed.len() != v.len() {
            *v = trimmed.to_owned();
        }
    }
}

/// Sub-document name of an attribute group.
pub fn group_name(group: AttrGroup) -> &'static str {
    match group {
        AttrGroup::Person => "person",
        AttrGroup::District => "district",
        AttrGroup::Election => "election",
        AttrGroup::Meta => "meta",
    }
}

/// Convert a row to the stored nested document layout: four
/// sub-documents (person/district/election/meta), with missing values
/// omitted so that sparse records stay small.
pub fn row_to_document(row: &Row) -> Document {
    let mut person = Document::new();
    let mut district = Document::new();
    let mut election = Document::new();
    let mut meta = Document::new();
    for (i, attr) in SCHEMA.iter().enumerate() {
        let v = row.get(i);
        if v.is_empty() {
            continue;
        }
        let target = match attr.group {
            AttrGroup::Person => &mut person,
            AttrGroup::District => &mut district,
            AttrGroup::Election => &mut election,
            AttrGroup::Meta => &mut meta,
        };
        target.set(attr.name, v);
    }
    let mut doc = Document::new();
    doc.set("person", person);
    doc.set("district", district);
    doc.set("election", election);
    doc.set("meta", meta);
    doc
}

/// Read an attribute value back out of a stored record document.
/// Returns `None` when the value was missing.
pub fn record_value(doc: &Document, attr: AttrId) -> Option<&str> {
    let a = &SCHEMA[attr];
    doc.get_str(&format!("{}.{}", group_name(a.group), a.name))
}

/// Reconstruct a dense [`Row`] from a stored record document.
pub fn document_to_row(doc: &Document) -> Row {
    let mut row = Row::empty();
    for (i, _) in SCHEMA.iter().enumerate() {
        if let Some(v) = record_value(doc, i) {
            row.set(i, v);
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_votergen::schema::{AGE, FIRST_NAME, LAST_NAME, NCID, NC_HOUSE, SNAPSHOT_DT};

    fn sample_row() -> Row {
        let mut r = Row::empty();
        r.set(NCID, "AA000001");
        r.set(LAST_NAME, "SMITH ");
        r.set(FIRST_NAME, "JOHN");
        r.set(AGE, "44");
        r.set(NC_HOUSE, "64TH HOUSE");
        r.set(SNAPSHOT_DT, "2008-11-04");
        r
    }

    #[test]
    fn policy_labels_match_table2() {
        let labels: Vec<&str> = DedupPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["no", "exact", "trimming", "person data"]);
    }

    #[test]
    fn fingerprint_ignores_dates_and_age() {
        let r1 = sample_row();
        let mut r2 = sample_row();
        r2.set(AGE, "45");
        r2.set(SNAPSHOT_DT, "2009-01-01");
        for policy in [DedupPolicy::Exact, DedupPolicy::Trimmed, DedupPolicy::PersonData] {
            assert_eq!(fingerprint(&r1, policy), fingerprint(&r2, policy), "{policy:?}");
        }
    }

    #[test]
    fn exact_fingerprint_sees_whitespace_trimmed_does_not() {
        let r1 = sample_row();
        let mut r2 = sample_row();
        r2.set(LAST_NAME, "SMITH"); // r1 has a trailing space
        assert_ne!(fingerprint(&r1, DedupPolicy::Exact), fingerprint(&r2, DedupPolicy::Exact));
        assert_eq!(
            fingerprint(&r1, DedupPolicy::Trimmed),
            fingerprint(&r2, DedupPolicy::Trimmed)
        );
    }

    #[test]
    fn person_fingerprint_ignores_districts() {
        let r1 = sample_row();
        let mut r2 = sample_row();
        r2.set(NC_HOUSE, "NC HOUSE DISTRICT 64");
        assert_ne!(
            fingerprint(&r1, DedupPolicy::Trimmed),
            fingerprint(&r2, DedupPolicy::Trimmed)
        );
        assert_eq!(
            fingerprint(&r1, DedupPolicy::PersonData),
            fingerprint(&r2, DedupPolicy::PersonData)
        );
    }

    #[test]
    fn fingerprint_separator_prevents_concatenation_ambiguity() {
        let mut r1 = Row::empty();
        r1.set(LAST_NAME, "AB");
        r1.set(FIRST_NAME, "C");
        let mut r2 = Row::empty();
        r2.set(LAST_NAME, "A");
        r2.set(FIRST_NAME, "BC");
        assert_ne!(
            fingerprint(&r1, DedupPolicy::Exact),
            fingerprint(&r2, DedupPolicy::Exact)
        );
    }

    #[test]
    fn trim_row_strips_whitespace() {
        let mut r = sample_row();
        trim_row(&mut r);
        assert_eq!(r.get(LAST_NAME), "SMITH");
    }

    #[test]
    fn document_layout_is_nested_and_sparse() {
        let doc = row_to_document(&sample_row());
        assert_eq!(doc.get_str("person.last_name"), Some("SMITH "));
        assert_eq!(doc.get_str("district.nc_house_abbrv"), Some("64TH HOUSE"));
        assert_eq!(doc.get_str("meta.snapshot_dt"), Some("2008-11-04"));
        // Missing values are omitted entirely.
        assert!(doc.get_path("person.midl_name").is_none());
        assert!(doc.get_path("election.party_cd").is_none());
    }

    #[test]
    fn record_value_and_round_trip() {
        let row = sample_row();
        let doc = row_to_document(&row);
        assert_eq!(record_value(&doc, LAST_NAME), Some("SMITH "));
        assert_eq!(record_value(&doc, FIRST_NAME), Some("JOHN"));
        assert_eq!(record_value(&doc, NC_HOUSE), Some("64TH HOUSE"));
        assert_eq!(record_value(&doc, nc_votergen::schema::MIDL_NAME), None);
        let back = document_to_row(&doc);
        assert_eq!(back, row);
    }
}
