//! The aggregate-oriented cluster store.
//!
//! One document per voter (duplicate cluster), holding all of the
//! voter's records plus meta data (record fingerprints, per-snapshot
//! insert counters, version and snapshot-membership arrays). This is the
//! storage layout of Section 5, on top of the [`nc_docstore`] substrate.

use std::collections::{HashMap, HashSet};

use nc_docstore::collection::{Collection, DocId};
use nc_docstore::index::IndexKind;
use nc_docstore::value::{Document, Value};
use nc_votergen::schema::Row;
// (Value is used for array construction below.)

use crate::md5::Digest;
use crate::record::{self, DedupPolicy};

/// Outcome of importing one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The row founded a new duplicate cluster (a new NCID).
    NewCluster,
    /// The row was added as a new record of an existing cluster.
    NewRecord,
    /// The row duplicated an existing record and was dropped.
    DuplicateDropped,
}

/// Side state per cluster kept outside the document for import speed.
#[derive(Debug, Default)]
struct ClusterState {
    /// Fingerprints of stored records, in record order.
    hashes: Vec<Digest>,
    /// Fast membership test over `hashes`.
    hash_set: HashSet<Digest>,
    /// Rows ever seen for this NCID (including dropped duplicates).
    rows_seen: u64,
    /// New records inserted per snapshot date.
    snapshot_counts: Vec<(String, u64)>,
    /// Version that introduced each record.
    first_version: Vec<u32>,
    /// Snapshot dates containing each record.
    record_snapshots: Vec<Vec<String>>,
}

/// The cluster store.
#[derive(Debug)]
pub struct ClusterStore {
    collection: Collection,
    ncid_to_doc: HashMap<String, DocId>,
    state: HashMap<DocId, ClusterState>,
    records_total: u64,
    rows_total: u64,
    max_version: u32,
    finalized: bool,
}

impl Default for ClusterStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterStore {
    /// Create an empty store with an NCID index.
    pub fn new() -> Self {
        let mut collection = Collection::new("clusters");
        collection.create_index("ncid", IndexKind::Hash);
        ClusterStore {
            collection,
            ncid_to_doc: HashMap::new(),
            state: HashMap::new(),
            records_total: 0,
            rows_total: 0,
            max_version: 0,
            finalized: false,
        }
    }

    /// Import one snapshot row under a dedup policy.
    ///
    /// `snapshot_date` is the snapshot's publication date and `version`
    /// the dataset version currently being built (both recorded for
    /// reproducibility).
    pub fn import_row(
        &mut self,
        row: Row,
        policy: DedupPolicy,
        snapshot_date: &str,
        version: u32,
    ) -> RowOutcome {
        self.import_row_cow(std::borrow::Cow::Owned(row), policy, snapshot_date, version)
    }

    /// [`ClusterStore::import_row`] over a borrowed row: the row is
    /// only cloned when it is actually kept, so bulk import loops (the
    /// archive streaming path) pay nothing for the dominant
    /// duplicate-dropped case.
    pub fn import_row_ref(
        &mut self,
        row: &Row,
        policy: DedupPolicy,
        snapshot_date: &str,
        version: u32,
    ) -> RowOutcome {
        self.import_row_cow(std::borrow::Cow::Borrowed(row), policy, snapshot_date, version)
    }

    fn import_row_cow(
        &mut self,
        row: std::borrow::Cow<'_, Row>,
        policy: DedupPolicy,
        snapshot_date: &str,
        version: u32,
    ) -> RowOutcome {
        self.rows_total += 1;
        // Fingerprint and NCID need only a borrow: the fingerprint
        // normalizes according to the policy itself, and the NCID is
        // trimmed explicitly.
        let fp = record::fingerprint(&row, policy);
        let ncid = row.ncid().trim().to_owned();
        // Materialize (clone a borrowed row) only on the kept paths.
        let materialize = |row: std::borrow::Cow<'_, Row>| -> Row {
            let mut row = row.into_owned();
            if policy.trims() {
                record::trim_row(&mut row);
            }
            row
        };

        if let Some(&doc_id) = self.ncid_to_doc.get(&ncid) {
            let state = self.state.get_mut(&doc_id).expect("state exists");
            state.rows_seen += 1;
            match state.snapshot_counts.last_mut() {
                Some((d, _)) if d == snapshot_date => {}
                _ => state.snapshot_counts.push((snapshot_date.to_owned(), 0)),
            }
            if policy != DedupPolicy::None && state.hash_set.contains(&fp) {
                // Record the snapshot membership of the matching record.
                if let Some(idx) = state.hashes.iter().position(|h| *h == fp) {
                    let snaps = &mut state.record_snapshots[idx];
                    if snaps.last().map(String::as_str) != Some(snapshot_date) {
                        snaps.push(snapshot_date.to_owned());
                    }
                }
                // rows_seen and the membership arrays changed, so the
                // persisted meta must be rebuilt on the next finalize.
                self.finalized = false;
                return RowOutcome::DuplicateDropped;
            }
            // Append the record to the cluster document.
            let row = materialize(row);
            let rec_doc = record::row_to_document(&row);
            self.collection.update(doc_id, |doc| {
                doc.push_path("records", Value::Doc(rec_doc));
            });
            state.hashes.push(fp);
            state.hash_set.insert(fp);
            state.first_version.push(version);
            self.max_version = self.max_version.max(version);
            state.record_snapshots.push(vec![snapshot_date.to_owned()]);
            if let Some((d, n)) = state.snapshot_counts.last_mut() {
                if d == snapshot_date {
                    *n += 1;
                }
            }
            self.records_total += 1;
            self.finalized = false;
            RowOutcome::NewRecord
        } else {
            let row = materialize(row);
            let rec_doc = record::row_to_document(&row);
            let mut doc = Document::new();
            doc.set("ncid", ncid.clone());
            doc.set("records", Value::Array(vec![Value::Doc(rec_doc)]));
            let doc_id = self.collection.insert(doc);
            self.ncid_to_doc.insert(ncid, doc_id);
            self.state.insert(
                doc_id,
                ClusterState {
                    hashes: vec![fp],
                    hash_set: HashSet::from([fp]),
                    rows_seen: 1,
                    snapshot_counts: vec![(snapshot_date.to_owned(), 1)],
                    first_version: vec![version],
                    record_snapshots: vec![vec![snapshot_date.to_owned()]],
                },
            );
            self.records_total += 1;
            self.max_version = self.max_version.max(version);
            self.finalized = false;
            RowOutcome::NewCluster
        }
    }

    /// Write all accumulated meta data into the cluster documents.
    /// Must be called before persisting or reading meta via documents.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        let ids: Vec<DocId> = self.ncid_to_doc.values().copied().collect();
        for doc_id in ids {
            let state = &self.state[&doc_id];
            let mut meta = Document::new();
            meta.set(
                "hashes",
                Value::Array(state.hashes.iter().map(|h| Value::from(h.to_hex())).collect()),
            );
            meta.set("rows_seen", state.rows_seen as i64);
            let mut counts = Document::new();
            for (d, n) in &state.snapshot_counts {
                counts.set(d.clone(), *n as i64);
            }
            meta.set("snapshot_counts", counts);
            meta.set(
                "record_first_version",
                Value::Array(state.first_version.iter().map(|&v| Value::from(v as i64)).collect()),
            );
            meta.set(
                "record_snapshots",
                Value::Array(
                    state
                        .record_snapshots
                        .iter()
                        .map(|snaps| {
                            Value::Array(snaps.iter().map(|s| Value::from(s.clone())).collect())
                        })
                        .collect(),
                ),
            );
            self.collection.update(doc_id, move |doc| {
                doc.set("meta", meta.clone());
            });
        }
        self.finalized = true;
    }

    /// Number of duplicate clusters (= distinct NCIDs = objects).
    pub fn cluster_count(&self) -> usize {
        self.ncid_to_doc.len()
    }

    /// Number of stored records (after dedup).
    pub fn record_count(&self) -> u64 {
        self.records_total
    }

    /// Number of rows ever imported (before dedup).
    pub fn rows_imported(&self) -> u64 {
        self.rows_total
    }

    /// Iterate over `(ncid, doc_id)` pairs in document order.
    pub fn cluster_ids(&self) -> Vec<(String, DocId)> {
        let mut v: Vec<(String, DocId)> = self
            .ncid_to_doc
            .iter()
            .map(|(n, &d)| (n.clone(), d))
            .collect();
        v.sort_by_key(|(_, d)| *d);
        v
    }

    /// The cluster document for an NCID.
    pub fn cluster_doc(&self, ncid: &str) -> Option<&Document> {
        self.ncid_to_doc
            .get(ncid)
            .and_then(|&id| self.collection.get(id))
    }

    /// The records of a cluster as dense rows.
    pub fn cluster_rows(&self, ncid: &str) -> Vec<Row> {
        let Some(doc) = self.cluster_doc(ncid) else {
            return Vec::new();
        };
        doc.get_array("records")
            .map(|records| {
                records
                    .iter()
                    .filter_map(Value::as_doc)
                    .map(record::document_to_row)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Cluster sizes (record counts per cluster).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        self.state.values().map(|s| s.hashes.len()).collect()
    }

    /// Rows ever seen per cluster (cluster sizes under `DedupPolicy::None`).
    pub fn cluster_rows_seen(&self) -> Vec<u64> {
        self.state.values().map(|s| s.rows_seen).collect()
    }

    /// The highest version stamped on any record in the store (`0` for
    /// an empty store). O(1): maintained on import and rebuilt on load.
    /// When this is ≤ a published version `v`, reconstructing `v` is
    /// equivalent to capturing the live store — the fast path
    /// [`crate::snapshot::StoreSnapshot::capture_version`] relies on.
    pub fn max_record_version(&self) -> u32 {
        self.max_version
    }

    /// The version that introduced each record of a cluster.
    pub fn record_versions(&self, ncid: &str) -> Option<&[u32]> {
        self.ncid_to_doc
            .get(ncid)
            .map(|id| self.state[id].first_version.as_slice())
    }

    /// The snapshot dates containing each record of a cluster.
    pub fn record_snapshots(&self, ncid: &str) -> Option<&[Vec<String>]> {
        self.ncid_to_doc
            .get(ncid)
            .map(|id| self.state[id].record_snapshots.as_slice())
    }

    /// Borrow the underlying collection (e.g. to run aggregation
    /// pipelines over the cluster documents).
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// A read-only query view of the underlying collection. Snapshot
    /// capture and the serving layer read through this so published
    /// cluster documents cannot be mutated by mistake.
    pub fn collection_view(&self) -> nc_docstore::collection::CollectionView<'_> {
        self.collection.view()
    }

    /// Rebuild a store from a collection produced by a *finalized*
    /// store (e.g. persisted with [`nc_docstore::persist::save`] and
    /// reloaded). The side state needed for further imports —
    /// fingerprints, per-snapshot counters, version and snapshot
    /// membership — is reconstructed from each document's `meta`
    /// sub-document, so importing more snapshots into the rebuilt store
    /// behaves exactly as if the original had never been persisted.
    ///
    /// Returns a description of the first inconsistency when the
    /// collection does not look like a finalized cluster store.
    pub fn from_finalized_collection(mut collection: Collection) -> Result<Self, String> {
        // Index definitions are not persisted; re-declare the NCID index.
        collection.create_index("ncid", IndexKind::Hash);
        let mut ncid_to_doc = HashMap::new();
        let mut state = HashMap::new();
        let mut records_total: u64 = 0;
        let mut rows_total: u64 = 0;
        let mut max_version: u32 = 0;
        for (doc_id, doc) in collection.iter_ordered() {
            let ncid = doc
                .get_str("ncid")
                .ok_or_else(|| format!("cluster doc {doc_id}: missing ncid"))?
                .to_owned();
            let n_records = doc.get_array("records").map_or(0, |r| r.len());
            let hash_vals = doc
                .get_array("meta.hashes")
                .ok_or_else(|| format!("cluster {ncid}: missing meta.hashes (store not finalized?)"))?;
            let mut hashes = Vec::with_capacity(hash_vals.len());
            for v in hash_vals {
                let hex = v
                    .as_str()
                    .ok_or_else(|| format!("cluster {ncid}: non-string hash"))?;
                hashes.push(
                    Digest::from_hex(hex)
                        .ok_or_else(|| format!("cluster {ncid}: bad hash {hex:?}"))?,
                );
            }
            if hashes.len() != n_records {
                return Err(format!(
                    "cluster {ncid}: {} hashes for {n_records} records",
                    hashes.len()
                ));
            }
            let rows_seen = doc
                .get_i64("meta.rows_seen")
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("cluster {ncid}: missing meta.rows_seen"))?;
            let mut snapshot_counts = Vec::new();
            if let Some(counts) = doc.get_path("meta.snapshot_counts").and_then(Value::as_doc) {
                for (date, n) in counts.iter() {
                    let n = n
                        .as_i64()
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| format!("cluster {ncid}: bad snapshot count"))?;
                    snapshot_counts.push((date.clone(), n));
                }
            }
            let first_version: Vec<u32> = doc
                .get_array("meta.record_first_version")
                .unwrap_or(&[])
                .iter()
                .map(|v| {
                    v.as_i64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| format!("cluster {ncid}: bad record version"))
                })
                .collect::<Result<_, _>>()?;
            let record_snapshots: Vec<Vec<String>> = doc
                .get_array("meta.record_snapshots")
                .unwrap_or(&[])
                .iter()
                .map(|v| {
                    v.as_array()
                        .ok_or_else(|| format!("cluster {ncid}: bad record snapshots"))
                        .map(|snaps| {
                            snaps
                                .iter()
                                .filter_map(Value::as_str)
                                .map(str::to_owned)
                                .collect()
                        })
                })
                .collect::<Result<_, _>>()?;
            if first_version.len() != hashes.len() || record_snapshots.len() != hashes.len() {
                return Err(format!("cluster {ncid}: meta arrays disagree in length"));
            }
            records_total += hashes.len() as u64;
            rows_total += rows_seen;
            max_version = first_version.iter().copied().fold(max_version, u32::max);
            let hash_set = hashes.iter().copied().collect();
            state.insert(
                doc_id,
                ClusterState {
                    hashes,
                    hash_set,
                    rows_seen,
                    snapshot_counts,
                    first_version,
                    record_snapshots,
                },
            );
            ncid_to_doc.insert(ncid, doc_id);
        }
        Ok(ClusterStore {
            collection,
            ncid_to_doc,
            state,
            records_total,
            rows_total,
            max_version,
            finalized: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_votergen::schema::{AGE, FIRST_NAME, LAST_NAME, NCID, SNAPSHOT_DT};

    fn row(ncid: &str, last: &str, age: &str, snap: &str) -> Row {
        let mut r = Row::empty();
        r.set(NCID, ncid);
        r.set(LAST_NAME, last);
        r.set(FIRST_NAME, "PAT");
        r.set(AGE, age);
        r.set(SNAPSHOT_DT, snap);
        r
    }

    #[test]
    fn first_row_founds_cluster() {
        let mut store = ClusterStore::new();
        let out = store.import_row(row("A1", "SMITH", "40", "2008-11-04"), DedupPolicy::Trimmed, "2008-11-04", 1);
        assert_eq!(out, RowOutcome::NewCluster);
        assert_eq!(store.cluster_count(), 1);
        assert_eq!(store.record_count(), 1);
    }

    #[test]
    fn exact_duplicate_is_dropped_even_with_different_age() {
        let mut store = ClusterStore::new();
        store.import_row(row("A1", "SMITH", "40", "2008-11-04"), DedupPolicy::Trimmed, "2008-11-04", 1);
        let out = store.import_row(row("A1", "SMITH", "41", "2009-01-01"), DedupPolicy::Trimmed, "2009-01-01", 1);
        assert_eq!(out, RowOutcome::DuplicateDropped);
        assert_eq!(store.record_count(), 1);
        assert_eq!(store.rows_imported(), 2);
        // Snapshot membership of the surviving record grew.
        let snaps = store.record_snapshots("A1").unwrap();
        assert_eq!(snaps[0], vec!["2008-11-04", "2009-01-01"]);
    }

    #[test]
    fn changed_value_becomes_new_record() {
        let mut store = ClusterStore::new();
        store.import_row(row("A1", "SMITH", "40", "2008-11-04"), DedupPolicy::Trimmed, "2008-11-04", 1);
        let out = store.import_row(row("A1", "SMYTHE", "40", "2009-01-01"), DedupPolicy::Trimmed, "2009-01-01", 2);
        assert_eq!(out, RowOutcome::NewRecord);
        assert_eq!(store.record_count(), 2);
        assert_eq!(store.record_versions("A1").unwrap(), &[1, 2]);
    }

    #[test]
    fn policy_none_keeps_everything() {
        let mut store = ClusterStore::new();
        for i in 0..5 {
            store.import_row(
                row("A1", "SMITH", "40", &format!("200{i}-01-01")),
                DedupPolicy::None,
                &format!("200{i}-01-01"),
                1,
            );
        }
        assert_eq!(store.record_count(), 5);
        assert_eq!(store.cluster_count(), 1);
    }

    #[test]
    fn trimmed_policy_merges_whitespace_variants() {
        let mut store = ClusterStore::new();
        store.import_row(row("A1", "SMITH", "40", "s1"), DedupPolicy::Trimmed, "s1", 1);
        let out = store.import_row(row("A1", " SMITH ", "40", "s2"), DedupPolicy::Trimmed, "s2", 1);
        assert_eq!(out, RowOutcome::DuplicateDropped);

        let mut store = ClusterStore::new();
        store.import_row(row("A1", "SMITH", "40", "s1"), DedupPolicy::Exact, "s1", 1);
        let out = store.import_row(row("A1", " SMITH ", "40", "s2"), DedupPolicy::Exact, "s2", 1);
        assert_eq!(out, RowOutcome::NewRecord);
    }

    #[test]
    fn trimming_policies_store_trimmed_values() {
        let mut store = ClusterStore::new();
        store.import_row(row("A1", " SMITH ", "40", "s1"), DedupPolicy::Trimmed, "s1", 1);
        let rows = store.cluster_rows("A1");
        assert_eq!(rows[0].get(LAST_NAME), "SMITH");
    }

    #[test]
    fn finalize_writes_meta_into_documents() {
        let mut store = ClusterStore::new();
        store.import_row(row("A1", "SMITH", "40", "2008-11-04"), DedupPolicy::Trimmed, "2008-11-04", 1);
        store.import_row(row("A1", "SMITH", "41", "2009-01-01"), DedupPolicy::Trimmed, "2009-01-01", 1);
        store.import_row(row("A1", "SMYTHE", "41", "2009-01-01"), DedupPolicy::Trimmed, "2009-01-01", 2);
        store.finalize();
        let doc = store.cluster_doc("A1").unwrap();
        assert_eq!(doc.get_i64("meta.rows_seen"), Some(3));
        assert_eq!(doc.get_array("meta.hashes").unwrap().len(), 2);
        assert_eq!(doc.get_i64("meta.snapshot_counts.2008-11-04"), Some(1));
        assert_eq!(doc.get_i64("meta.snapshot_counts.2009-01-01"), Some(1));
        let versions = doc.get_array("meta.record_first_version").unwrap();
        assert_eq!(versions.len(), 2);
        assert_eq!(versions[1].as_i64(), Some(2));
    }

    #[test]
    fn cluster_rows_round_trip() {
        let mut store = ClusterStore::new();
        store.import_row(row("A1", "SMITH", "40", "s1"), DedupPolicy::None, "s1", 1);
        store.import_row(row("A2", "JONES", "50", "s1"), DedupPolicy::None, "s1", 1);
        let rows = store.cluster_rows("A1");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(LAST_NAME), "SMITH");
        assert!(store.cluster_rows("NOPE").is_empty());
        assert_eq!(store.cluster_ids().len(), 2);
    }

    #[test]
    fn finalized_round_trip_preserves_import_behavior() {
        // Build, persist (in memory via the collection), rebuild — then
        // verify the rebuilt store dedups exactly like the original.
        let mut store = ClusterStore::new();
        store.import_row(row("A1", "SMITH", "40", "2008-11-04"), DedupPolicy::Trimmed, "2008-11-04", 1);
        store.import_row(row("A1", "SMYTHE", "40", "2009-01-01"), DedupPolicy::Trimmed, "2009-01-01", 1);
        store.import_row(row("A2", "JONES", "50", "2009-01-01"), DedupPolicy::Trimmed, "2009-01-01", 1);
        store.finalize();

        // Clone the collection by re-inserting documents id-for-id.
        let mut copy = Collection::new("clusters");
        for (_, doc) in store.collection().iter_ordered() {
            copy.insert(doc.clone());
        }
        let mut rebuilt = ClusterStore::from_finalized_collection(copy).unwrap();
        assert_eq!(rebuilt.cluster_count(), store.cluster_count());
        assert_eq!(rebuilt.record_count(), store.record_count());
        assert_eq!(rebuilt.rows_imported(), store.rows_imported());
        assert_eq!(rebuilt.record_versions("A1"), store.record_versions("A1"));
        assert_eq!(rebuilt.record_snapshots("A1"), store.record_snapshots("A1"));

        // An exact duplicate of an already-stored record is still dropped.
        let out = rebuilt.import_row(row("A1", "SMITH", "40", "2010-01-01"), DedupPolicy::Trimmed, "2010-01-01", 2);
        assert_eq!(out, RowOutcome::DuplicateDropped);
        // A genuinely new record still lands in the right cluster.
        let out = rebuilt.import_row(row("A2", "JONES-SMITH", "50", "2010-01-01"), DedupPolicy::Trimmed, "2010-01-01", 2);
        assert_eq!(out, RowOutcome::NewRecord);
        assert_eq!(rebuilt.cluster_count(), 2);
    }

    #[test]
    fn from_finalized_rejects_unfinalized_collection() {
        let mut store = ClusterStore::new();
        store.import_row(row("A1", "SMITH", "40", "s1"), DedupPolicy::Trimmed, "s1", 1);
        // No finalize(): meta is missing.
        let mut copy = Collection::new("clusters");
        for (_, doc) in store.collection().iter_ordered() {
            copy.insert(doc.clone());
        }
        let err = ClusterStore::from_finalized_collection(copy).unwrap_err();
        assert!(err.contains("meta.hashes"), "{err}");
    }

    #[test]
    fn sizes_and_rows_seen() {
        let mut store = ClusterStore::new();
        store.import_row(row("A1", "SMITH", "40", "s1"), DedupPolicy::Trimmed, "s1", 1);
        store.import_row(row("A1", "SMITH", "40", "s2"), DedupPolicy::Trimmed, "s2", 1);
        store.import_row(row("A1", "SMYTHE", "40", "s3"), DedupPolicy::Trimmed, "s3", 1);
        let mut sizes = store.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2]);
        assert_eq!(store.cluster_rows_seen(), vec![3]);
    }
}

#[cfg(test)]
mod review_repro {
    use super::*;
    use crate::record::DedupPolicy;
    use nc_votergen::schema::Row;

    fn row(ncid: &str, last: &str, age: &str, date: &str) -> Row {
        let mut r = Row::empty();
        r.set(nc_votergen::schema::NCID, ncid);
        r.set(nc_votergen::schema::attr_id("last_name").unwrap(), last);
        r.set(nc_votergen::schema::attr_id("age").unwrap(), age);
        let _ = date;
        r
    }

    #[test]
    fn duplicate_only_snapshot_after_finalize_leaves_meta_stale() {
        let mut store = ClusterStore::new();
        store.import_row(row("A1", "SMITH", "40", "s1"), DedupPolicy::Trimmed, "s1", 1);
        store.finalize();
        // Snapshot 2: same row again -> DuplicateDropped only.
        let out = store.import_row(row("A1", "SMITH", "40", "s2"), DedupPolicy::Trimmed, "s2", 1);
        assert_eq!(out, RowOutcome::DuplicateDropped);
        // In-memory state saw snapshot s2...
        assert_eq!(store.record_snapshots("A1").unwrap()[0], vec!["s1".to_string(), "s2".to_string()]);
        store.finalize();
        let doc = store.cluster_doc("A1").unwrap();
        // ...but the persisted meta must too (this is what a checkpoint saves).
        assert_eq!(doc.get_i64("meta.rows_seen"), Some(2), "meta.rows_seen is stale");
        let snaps = doc.get_array("meta.record_snapshots").unwrap();
        assert_eq!(snaps[0].as_array().unwrap().len(), 2, "meta.record_snapshots is stale");
    }
}
