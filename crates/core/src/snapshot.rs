//! Immutable, version-pinned snapshots of a cluster store.
//!
//! The serving layer (`nc-serve`) carves customized datasets out of a
//! *consistent* view of the store while new snapshots keep being
//! imported underneath. A [`StoreSnapshot`] is that view: the clusters
//! of one published [`crate::version`] identifier, fully materialized
//! in [`ClusterStore::cluster_ids`] order, with no reference back into
//! the live store. Because the order matches the live store's, running
//! [`StoreSnapshot::customize`] against a current-version snapshot is
//! bit-identical to [`crate::customize::customize`] on the store
//! itself (see `crates/core/tests/customize_determinism.rs`).

use nc_similarity::{with_thread_scratch, Scratch};
use nc_votergen::schema::{Row, SNAPSHOT_DT};

use crate::cluster::ClusterStore;
use crate::customize::{customize_clusters, CustomDataset, CustomizeParams};
use crate::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use crate::plausibility::PlausibilityScorer;
use crate::version::VersionManager;

/// The scored, queryable facts of one cluster: everything the
/// carve-by-query layer (nc-query) predicates over that is *derived*
/// rather than stored. Computed from the cluster's rows plus the
/// snapshot-scoped scorers — heterogeneity depends on the snapshot-wide
/// entropy weights, so facts are only comparable within one snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterFacts {
    /// The cluster's NCID.
    pub ncid: String,
    /// Number of records in the cluster.
    pub size: usize,
    /// Entropy-weighted heterogeneity ([`HeterogeneityScorer::cluster`]).
    pub heterogeneity: f64,
    /// Duplicate plausibility ([`PlausibilityScorer::cluster`]; minimum
    /// pairwise score, 1.0 for singletons).
    pub plausibility: f64,
    /// Lexicographically smallest non-empty `snapshot_dt` of the rows
    /// (ISO dates, so lexicographic = chronological); empty when no row
    /// carries a snapshot date.
    pub first_snapshot: String,
    /// Lexicographically largest non-empty `snapshot_dt`.
    pub last_snapshot: String,
}

impl ClusterFacts {
    /// Compute facts for one cluster.
    pub fn compute(
        ncid: &str,
        rows: &[Row],
        heterogeneity: &HeterogeneityScorer,
        plausibility: &PlausibilityScorer,
    ) -> Self {
        with_thread_scratch(|s| Self::compute_with(s, ncid, rows, heterogeneity, plausibility))
    }

    /// [`ClusterFacts::compute`] with caller-provided scratch buffers;
    /// bit-identical results.
    pub fn compute_with(
        scratch: &mut Scratch,
        ncid: &str,
        rows: &[Row],
        heterogeneity: &HeterogeneityScorer,
        plausibility: &PlausibilityScorer,
    ) -> Self {
        let mut first = "";
        let mut last = "";
        for row in rows {
            let dt = row.get(SNAPSHOT_DT).trim();
            if dt.is_empty() {
                continue;
            }
            if first.is_empty() || dt < first {
                first = dt;
            }
            if dt > last {
                last = dt;
            }
        }
        ClusterFacts {
            ncid: ncid.to_owned(),
            size: rows.len(),
            heterogeneity: heterogeneity.cluster_with(scratch, rows),
            plausibility: plausibility.cluster_with(scratch, rows),
            first_snapshot: first.to_owned(),
            last_snapshot: last.to_owned(),
        }
    }
}

/// An immutable copy of a cluster store's records, pinned to a dataset
/// version number.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    version: u32,
    clusters: Vec<(String, Vec<Row>)>,
    records: u64,
}

impl StoreSnapshot {
    /// Capture the *current* contents of a store under the given
    /// version identifier (typically `versions.current().number`).
    ///
    /// Clusters are materialized in [`ClusterStore::cluster_ids`]
    /// order, which is what makes snapshot-based customization
    /// bit-identical to the store-based path.
    pub fn capture(store: &ClusterStore, version: u32) -> Self {
        let clusters: Vec<(String, Vec<Row>)> = store
            .cluster_ids()
            .into_iter()
            .map(|(ncid, _)| {
                let rows = store.cluster_rows(&ncid);
                (ncid, rows)
            })
            .collect();
        let records = clusters.iter().map(|(_, r)| r.len() as u64).sum();
        StoreSnapshot {
            version,
            clusters,
            records,
        }
    }

    /// Build a snapshot from already-materialized clusters.
    ///
    /// The caller owns the ordering contract: `clusters` must be in the
    /// order [`ClusterStore::cluster_ids`] would yield for the
    /// equivalent store, or customization loses its bit-identity
    /// guarantee. `nc-shard` uses this for incremental publishes, where
    /// only dirty shards are re-materialized and the per-shard cluster
    /// lists are merged back into global founding order.
    pub fn from_clusters(version: u32, clusters: Vec<(String, Vec<Row>)>) -> Self {
        let records = clusters.iter().map(|(_, r)| r.len() as u64).sum();
        StoreSnapshot {
            version,
            clusters,
            records,
        }
    }

    /// Capture a *previously published* version by reconstruction:
    /// clusters restricted to records whose first containing version is
    /// ≤ `version` (see [`VersionManager::reconstruct`]). Clusters with
    /// no qualifying record are omitted, exactly as a user downloading
    /// that version would have seen the dataset.
    ///
    /// Returns an error when `version` has never been published.
    pub fn capture_version(
        store: &ClusterStore,
        versions: &VersionManager,
        version: u32,
    ) -> Result<Self, String> {
        let published = versions.history().len() as u32;
        if version == 0 || version > published {
            return Err(format!(
                "version {version} not published (history has {published})"
            ));
        }
        // Fast path: when the requested version is the current one and
        // the store holds no rows stamped with a yet-unpublished
        // version, reconstruction would keep every record of every
        // cluster — so reuse the plain capture path and skip the
        // per-cluster version bookkeeping (lookups and per-record
        // scans) entirely. `max_record_version` makes the precondition
        // O(1); benched in `nc-bench benches/version.rs`, which also
        // counts allocator calls on both paths.
        if version == published && store.max_record_version() <= version {
            return Ok(Self::capture(store, version));
        }
        let clusters = versions.reconstruct(store, version);
        let records = clusters.iter().map(|(_, r)| r.len() as u64).sum();
        Ok(StoreSnapshot {
            version,
            clusters,
            records,
        })
    }

    /// The pinned version identifier.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The snapshot's clusters, in capture order.
    pub fn clusters(&self) -> &[(String, Vec<Row>)] {
        &self.clusters
    }

    /// Number of clusters in the snapshot.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Number of records in the snapshot.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Entropy-weighted heterogeneity scorer for this snapshot, built
    /// the way the paper does: attribute weights from one record per
    /// cluster so duplicates do not distort the uniqueness estimate.
    /// Deterministic for a given snapshot.
    pub fn entropy_scorer(&self, scope: Scope) -> HeterogeneityScorer {
        let firsts = self.clusters.iter().filter_map(|(_, rows)| rows.first());
        HeterogeneityScorer::new(AttributeWeights::from_rows(scope, firsts))
    }

    /// Scored facts for the cluster at `index` (capture order). `None`
    /// past the end. The caller provides the scorers so repeated calls
    /// share the snapshot-scoped entropy weights; use
    /// [`StoreSnapshot::entropy_scorer`] to build them.
    pub fn cluster_facts(
        &self,
        index: usize,
        heterogeneity: &HeterogeneityScorer,
        plausibility: &PlausibilityScorer,
    ) -> Option<ClusterFacts> {
        let (ncid, rows) = self.clusters.get(index)?;
        Some(ClusterFacts::compute(ncid, rows, heterogeneity, plausibility))
    }

    /// Run the customization recipe against this snapshot (borrowed —
    /// the snapshot is never consumed, so concurrent carve requests can
    /// share one snapshot behind an `Arc`).
    pub fn customize(
        &self,
        scorer: &HeterogeneityScorer,
        params: &CustomizeParams,
    ) -> CustomDataset {
        customize_clusters(&self.clusters, scorer, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::customize::customize;
    use crate::import::ImportStats;
    use crate::record::DedupPolicy;
    use nc_votergen::schema::{FIRST_NAME, LAST_NAME, MIDL_NAME, NCID};

    fn import(store: &mut ClusterStore, ncid: &str, first: &str, midl: &str, last: &str, snap: &str, version: u32) {
        let mut r = Row::empty();
        r.set(NCID, ncid);
        r.set(FIRST_NAME, first);
        r.set(MIDL_NAME, midl);
        r.set(LAST_NAME, last);
        store.import_row(r, DedupPolicy::Trimmed, snap, version);
    }

    fn stats(date: &str) -> ImportStats {
        ImportStats {
            date: date.into(),
            total_rows: 0,
            new_records: 0,
            new_clusters: 0,
            quarantined: 0,
        }
    }

    fn two_version_store() -> (ClusterStore, VersionManager) {
        let mut store = ClusterStore::new();
        let mut versions = VersionManager::new();
        import(&mut store, "H1", "MARY", "ANN", "SMITH", "s1", 1);
        import(&mut store, "H1", "MARY", "ANN", "SMYTH", "s1", 1);
        import(&mut store, "X1", "CARL", "RAY", "OXENDINE", "s1", 1);
        versions.publish(&store, std::slice::from_ref(&stats("s1")));
        import(&mut store, "H1", "MARY", "ANN", "SMITHE", "s2", 2);
        import(&mut store, "N1", "PAT", "", "JONES", "s2", 2);
        versions.publish(&store, std::slice::from_ref(&stats("s2")));
        (store, versions)
    }

    #[test]
    fn capture_matches_store_contents() {
        let (store, versions) = two_version_store();
        let snap = StoreSnapshot::capture(&store, versions.current().unwrap().number);
        assert_eq!(snap.version(), 2);
        assert_eq!(snap.cluster_count(), store.cluster_count());
        assert_eq!(snap.record_count(), store.record_count());
        // Capture order is cluster_ids order.
        let ids: Vec<String> = store.cluster_ids().into_iter().map(|(n, _)| n).collect();
        let snap_ids: Vec<String> = snap.clusters().iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(ids, snap_ids);
    }

    #[test]
    fn capture_version_reconstructs_past() {
        let (store, versions) = two_version_store();
        let v1 = StoreSnapshot::capture_version(&store, &versions, 1).unwrap();
        assert_eq!(v1.version(), 1);
        assert_eq!(v1.cluster_count(), 2, "N1 did not exist at version 1");
        assert_eq!(v1.record_count(), 3);
        let v2 = StoreSnapshot::capture_version(&store, &versions, 2).unwrap();
        assert_eq!(v2.record_count(), store.record_count());
    }

    #[test]
    fn capture_version_fast_path_matches_reconstruction() {
        let (store, versions) = two_version_store();
        // The fast path fires at the current version (no unpublished
        // rows in this store); its output must be byte-identical to an
        // explicit reconstruction of the same version.
        let fast = StoreSnapshot::capture_version(&store, &versions, 2).unwrap();
        let slow = StoreSnapshot::from_clusters(2, versions.reconstruct(&store, 2));
        assert_eq!(fast.clusters(), slow.clusters());
        assert_eq!(fast.record_count(), slow.record_count());

        // With unpublished rows in the store the fast path must NOT
        // fire: version 2 may no longer include the version-3 row.
        let (mut store, versions) = two_version_store();
        import(&mut store, "H1", "MARY", "ANN", "SMIJTH", "s3", 3);
        let v2 = StoreSnapshot::capture_version(&store, &versions, 2).unwrap();
        assert_eq!(v2.clusters(), slow.clusters(), "unpublished row excluded");
    }

    #[test]
    fn capture_version_rejects_unpublished() {
        let (store, versions) = two_version_store();
        assert!(StoreSnapshot::capture_version(&store, &versions, 0).is_err());
        assert!(StoreSnapshot::capture_version(&store, &versions, 3).is_err());
    }

    #[test]
    fn snapshot_customize_is_bit_identical_to_store_customize() {
        let (store, versions) = two_version_store();
        let snap = StoreSnapshot::capture(&store, versions.current().unwrap().number);
        let scorer = snap.entropy_scorer(Scope::Person);
        for seed in [1u64, 5, 9] {
            let params = CustomizeParams {
                h_low: 0.0,
                h_high: 1.0,
                sample_clusters: 3,
                output_clusters: 3,
                seed,
            };
            let direct = customize(&store, &scorer, &params);
            let snapped = snap.customize(&scorer, &params);
            assert_eq!(direct.clusters.len(), snapped.clusters.len());
            for (a, b) in direct.clusters.iter().zip(&snapped.clusters) {
                assert_eq!(a.ncid, b.ncid);
                let ta: Vec<String> = a.records.iter().map(Row::to_tsv).collect();
                let tb: Vec<String> = b.records.iter().map(Row::to_tsv).collect();
                assert_eq!(ta, tb);
            }
        }
    }
}
