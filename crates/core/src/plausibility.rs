//! Plausibility scoring (Section 6.2).
//!
//! All records of one cluster are *assumed* to be duplicates; the
//! plausibility score only reflects significant contradictions to that
//! assumption. The measure therefore compensates hard for benign
//! differences: word confusions between the name attributes, missing and
//! abbreviated values do not reduce similarity at all. Only attributes
//! that rarely change and are identifying/discriminating participate:
//! the three names, the sex code, the year of birth (derived from
//! snapshot date − age) and the place of birth.

use nc_similarity::damerau::ExtendedDamerauLevenshtein;
use nc_similarity::gen_jaccard::GeneralizedJaccard;
use nc_similarity::{with_thread_scratch, Scratch};
use nc_votergen::schema::{
    Row, AGE, BIRTH_PLACE, FIRST_NAME, LAST_NAME, MIDL_NAME, SEX_CODE, SNAPSHOT_DT,
};

/// Weights of the paper: names 0.5, sex / year of birth / birth place
/// 0.15 each (normalized to a weighted average).
const W_NAME: f64 = 0.5;
const W_SEX: f64 = 0.15;
const W_YOB: f64 = 0.15;
const W_BIRTHPLACE: f64 = 0.15;

/// The plausibility scorer.
#[derive(Debug, Clone)]
pub struct PlausibilityScorer {
    name_measure: GeneralizedJaccard<ExtendedDamerauLevenshtein>,
}

impl Default for PlausibilityScorer {
    fn default() -> Self {
        Self::new()
    }
}

impl PlausibilityScorer {
    /// Create the scorer with the paper's configuration.
    pub fn new() -> Self {
        PlausibilityScorer {
            name_measure: GeneralizedJaccard::new(ExtendedDamerauLevenshtein::new()),
        }
    }

    /// Name similarity: Generalized Jaccard over the (first, middle,
    /// last) triple with the extended Damerau–Levenshtein token measure,
    /// which captures confused name order, typos, abbreviations and
    /// missing names.
    pub fn name_similarity(&self, a: &Row, b: &Row) -> f64 {
        with_thread_scratch(|s| self.name_similarity_with(s, a, b))
    }

    /// [`PlausibilityScorer::name_similarity`] with caller-provided
    /// scratch buffers; bit-identical scores.
    pub fn name_similarity_with(&self, scratch: &mut Scratch, a: &Row, b: &Row) -> f64 {
        let ta = [a.get(FIRST_NAME).trim(), a.get(MIDL_NAME).trim(), a.get(LAST_NAME).trim()];
        let tb = [b.get(FIRST_NAME).trim(), b.get(MIDL_NAME).trim(), b.get(LAST_NAME).trim()];
        self.name_measure.sim_tokens_with(scratch, &ta, &tb)
    }

    /// Sex similarity: 1 on agreement, undesignated (`U`) or missing;
    /// 0 on contradiction.
    pub fn sex_similarity(a: &Row, b: &Row) -> f64 {
        let sa = a.get(SEX_CODE).trim();
        let sb = b.get(SEX_CODE).trim();
        if sa.is_empty() || sb.is_empty() || sa == "U" || sb == "U" || sa == sb {
            1.0
        } else {
            0.0
        }
    }

    /// Year of birth from a record: `year(snapshot_dt) − age`. `None`
    /// when the age or snapshot date is missing or unparseable.
    pub fn year_of_birth(row: &Row) -> Option<i32> {
        let year: i32 = row.get(SNAPSHOT_DT).trim().get(0..4)?.parse().ok()?;
        let age: i32 = row.get(AGE).trim().parse().ok()?;
        Some(year - age)
    }

    /// Year-of-birth similarity with the paper's tolerance of 1 and a
    /// hard zero at a 10-year difference:
    /// `1 − min(1, max(0, |Δ| − 1) / 10)`.
    pub fn yob_similarity(a: &Row, b: &Row) -> f64 {
        match (Self::year_of_birth(a), Self::year_of_birth(b)) {
            (Some(ya), Some(yb)) => {
                let delta = (ya - yb).abs() as f64;
                1.0 - ((delta - 1.0).max(0.0) / 10.0).min(1.0)
            }
            // A missing value is no contradiction.
            _ => 1.0,
        }
    }

    /// Birth-place similarity: extended Damerau–Levenshtein (missing or
    /// prefix ⇒ 1).
    pub fn birthplace_similarity(a: &Row, b: &Row) -> f64 {
        with_thread_scratch(|s| Self::birthplace_similarity_with(s, a, b))
    }

    /// [`PlausibilityScorer::birthplace_similarity`] with
    /// caller-provided scratch buffers; bit-identical scores.
    pub fn birthplace_similarity_with(scratch: &mut Scratch, a: &Row, b: &Row) -> f64 {
        ExtendedDamerauLevenshtein::new()
            .sim_with(scratch, a.get(BIRTH_PLACE), b.get(BIRTH_PLACE))
    }

    /// Plausibility of a record pair: the weighted average of the four
    /// component similarities.
    pub fn pair(&self, a: &Row, b: &Row) -> f64 {
        with_thread_scratch(|s| self.pair_with(s, a, b))
    }

    /// [`PlausibilityScorer::pair`] with caller-provided scratch
    /// buffers; bit-identical scores.
    pub fn pair_with(&self, scratch: &mut Scratch, a: &Row, b: &Row) -> f64 {
        let total = W_NAME + W_SEX + W_YOB + W_BIRTHPLACE;
        (W_NAME * self.name_similarity_with(scratch, a, b)
            + W_SEX * Self::sex_similarity(a, b)
            + W_YOB * Self::yob_similarity(a, b)
            + W_BIRTHPLACE * Self::birthplace_similarity_with(scratch, a, b))
            / total
    }

    /// Plausibility of each record: its minimal pair score against the
    /// other records of the cluster. Singleton clusters score 1.
    pub fn record_scores(&self, records: &[Row]) -> Vec<f64> {
        with_thread_scratch(|s| self.record_scores_with(s, records))
    }

    /// [`PlausibilityScorer::record_scores`] with caller-provided
    /// scratch buffers; bit-identical scores.
    pub fn record_scores_with(&self, scratch: &mut Scratch, records: &[Row]) -> Vec<f64> {
        let n = records.len();
        if n <= 1 {
            return vec![1.0; n];
        }
        let mut mins = vec![1.0f64; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let s = self.pair_with(scratch, &records[i], &records[j]);
                mins[i] = mins[i].min(s);
                mins[j] = mins[j].min(s);
            }
        }
        mins
    }

    /// Plausibility of a cluster: the minimum over its records — one
    /// record referring to another voter already makes the cluster
    /// unsound.
    pub fn cluster(&self, records: &[Row]) -> f64 {
        with_thread_scratch(|s| self.cluster_with(s, records))
    }

    /// [`PlausibilityScorer::cluster`] with caller-provided scratch
    /// buffers; bit-identical scores.
    pub fn cluster_with(&self, scratch: &mut Scratch, records: &[Row]) -> f64 {
        self.record_scores_with(scratch, records)
            .into_iter()
            .fold(1.0, f64::min)
    }

    /// All pairwise plausibility scores of a cluster (i < j order).
    pub fn pair_scores(&self, records: &[Row]) -> Vec<f64> {
        with_thread_scratch(|s| self.pair_scores_with(s, records))
    }

    /// [`PlausibilityScorer::pair_scores`] with caller-provided
    /// scratch buffers; bit-identical scores.
    pub fn pair_scores_with(&self, scratch: &mut Scratch, records: &[Row]) -> Vec<f64> {
        let n = records.len();
        let mut out = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                out.push(self.pair_with(scratch, &records[i], &records[j]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(first: &str, midl: &str, last: &str, sex: &str, age: &str, snap: &str, bp: &str) -> Row {
        let mut r = Row::empty();
        r.set(FIRST_NAME, first);
        r.set(MIDL_NAME, midl);
        r.set(LAST_NAME, last);
        r.set(SEX_CODE, sex);
        r.set(AGE, age);
        r.set(SNAPSHOT_DT, snap);
        r.set(BIRTH_PLACE, bp);
        r
    }

    fn scorer() -> PlausibilityScorer {
        PlausibilityScorer::new()
    }

    #[test]
    fn identical_records_score_one() {
        let a = row("DEBRA", "OEHRIE", "WILLIAMS", "F", "45", "2008-11-04", "NORTH CAROLINA");
        assert_eq!(scorer().pair(&a, &a.clone()), 1.0);
    }

    #[test]
    fn figure3_sound_cluster_scores_high() {
        // Voter DB175272: names mixed up plus a middle-name typo — the
        // paper reports plausibility 0.81; we expect clearly > 0.7.
        let r1 = row("DEBRA", "OEHRIE", "WILLIAMS", "F", "45", "2008-11-04", "NORTH CAROLINA");
        let r3 = row("DEBRA", "ANN", "OEHRLE", "F", "49", "2012-11-06", "NORTH CAROLINA");
        let s = scorer().pair(&r1, &r3);
        assert!(s > 0.6, "{s}");
        assert!(s < 1.0, "{s}");
    }

    #[test]
    fn figure3_unsound_cluster_scores_low() {
        // Voter DR19657: two obviously different persons under one NCID —
        // the paper reports 0.33.
        let r4 = row("MARY", "ELIZABETH", "FIELDS", "F", "61", "2010-05-04", "VIRGINIA");
        let r5 = row("JOSHUA", "ELIZABETH", "BETHEA", "M", "93", "2010-05-04", "NEW YORK");
        let s = scorer().pair(&r4, &r5);
        assert!(s < 0.55, "{s}");
    }

    #[test]
    fn name_order_confusion_is_compensated() {
        let a = row("DEBRA", "OEHRIE", "WILLIAMS", "F", "45", "2008-11-04", "");
        let b = row("WILLIAMS", "DEBRA", "OEHRIE", "F", "45", "2008-11-04", "");
        let s = scorer().name_similarity(&a, &b);
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn abbreviation_and_missing_names_do_not_hurt() {
        let a = row("KIMBERLY", "ANN", "SMITH", "F", "30", "2010-01-01", "");
        let b = row("K.", "", "SMITH", "F", "30", "2010-01-01", "");
        let s = scorer().name_similarity(&a, &b);
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn sex_contradiction_costs() {
        let a = row("PAT", "", "SMITH", "M", "30", "2010-01-01", "");
        let b = row("PAT", "", "SMITH", "F", "30", "2010-01-01", "");
        assert_eq!(PlausibilityScorer::sex_similarity(&a, &b), 0.0);
        let u = row("PAT", "", "SMITH", "U", "30", "2010-01-01", "");
        assert_eq!(PlausibilityScorer::sex_similarity(&a, &u), 1.0);
        let m = row("PAT", "", "SMITH", "", "30", "2010-01-01", "");
        assert_eq!(PlausibilityScorer::sex_similarity(&a, &m), 1.0);
    }

    #[test]
    fn yob_tolerance_and_cutoff() {
        let base = |age: &str, snap: &str| row("P", "", "S", "F", age, snap, "");
        // Same YoB.
        assert_eq!(
            PlausibilityScorer::yob_similarity(&base("40", "2010-01-01"), &base("42", "2012-01-01")),
            1.0
        );
        // Off by one: tolerated.
        assert_eq!(
            PlausibilityScorer::yob_similarity(&base("40", "2010-01-01"), &base("41", "2012-01-01")),
            1.0
        );
        // Off by two: small penalty.
        let s = PlausibilityScorer::yob_similarity(&base("40", "2010-01-01"), &base("38", "2010-01-01"));
        assert!((s - 0.9).abs() < 1e-9, "{s}");
        // Off by eleven+: zero.
        assert_eq!(
            PlausibilityScorer::yob_similarity(&base("40", "2010-01-01"), &base("60", "2010-01-01")),
            0.0
        );
        // Missing age: no contradiction.
        assert_eq!(
            PlausibilityScorer::yob_similarity(&base("", "2010-01-01"), &base("40", "2010-01-01")),
            1.0
        );
    }

    #[test]
    fn yob_derivation() {
        let r = row("P", "", "S", "F", "45", "2008-11-04", "");
        assert_eq!(PlausibilityScorer::year_of_birth(&r), Some(1963));
        let bad = row("P", "", "S", "F", "4X", "2008-11-04", "");
        assert_eq!(PlausibilityScorer::year_of_birth(&bad), None);
    }

    #[test]
    fn cluster_score_is_min_over_records() {
        let r1 = row("DEBRA", "OEHRIE", "WILLIAMS", "F", "45", "2008-01-01", "NC");
        let r2 = row("DEBRA", "OEHRIE", "WILLIAMS", "F", "46", "2009-01-01", "NC");
        let r5 = row("JOSHUA", "", "BETHEA", "M", "93", "2009-01-01", "NY");
        let sc = scorer();
        let good = sc.cluster(&[r1.clone(), r2.clone()]);
        let bad = sc.cluster(&[r1, r2, r5]);
        assert!(good > 0.95, "{good}");
        assert!(bad < 0.6, "{bad}");
    }

    #[test]
    fn singleton_cluster_is_fully_plausible() {
        let r = row("A", "", "B", "F", "30", "2010-01-01", "");
        assert_eq!(scorer().cluster(std::slice::from_ref(&r)), 1.0);
        assert_eq!(scorer().record_scores(&[r]), vec![1.0]);
        assert_eq!(scorer().cluster(&[]), 1.0);
    }

    #[test]
    fn pair_scores_count() {
        let r = |n: &str| row(n, "", "S", "F", "30", "2010-01-01", "");
        let scores = scorer().pair_scores(&[r("A"), r("B"), r("C")]);
        assert_eq!(scores.len(), 3);
    }
}
