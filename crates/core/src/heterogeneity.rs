//! Heterogeneity (dirtiness) scoring (Section 6.3).
//!
//! Unlike plausibility, heterogeneity wants to see *every* difference
//! between two duplicate records — but weigh benign differences (casing,
//! token order) lower than real ones. Every two values are therefore
//! compared four ways — {original, lowercased} × {sequential
//! Damerau–Levenshtein, hybrid Monge–Elkan} — and the four scores are
//! averaged. Record heterogeneity is the entropy-weighted average of the
//! inverse value similarities; attribute entropies are computed from one
//! record per cluster so duplicates do not distort the uniqueness
//! estimate.

use std::sync::OnceLock;

use nc_similarity::damerau::DamerauLevenshtein;
use nc_similarity::entropy::{normalize_weights, EntropyAccumulator};
use nc_similarity::monge_elkan::MongeElkan;
use nc_similarity::{with_thread_scratch, Scratch};
use nc_votergen::schema::{AttrGroup, AttrId, Row, NUM_ATTRS, SCHEMA};

/// Which attributes participate in the heterogeneity score. The paper
/// stores two heterogeneity maps per record: one over all attributes and
/// one over the personal attributes only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// All non-meta attributes.
    All,
    /// Person attributes only.
    Person,
}

impl Scope {
    /// The attribute ids in this scope. Meta attributes (snapshot/load/
    /// cancellation dates) never participate; time-varying values (age,
    /// registration date) are also excluded, matching the hash-attribute
    /// exclusions of Section 4.
    ///
    /// The schema is static, so the filtered list is computed once per
    /// scope and handed out as a shared slice.
    pub fn attrs(self) -> &'static [AttrId] {
        static ALL: OnceLock<Vec<AttrId>> = OnceLock::new();
        static PERSON: OnceLock<Vec<AttrId>> = OnceLock::new();
        let cell = match self {
            Scope::All => &ALL,
            Scope::Person => &PERSON,
        };
        cell.get_or_init(|| {
            SCHEMA
                .iter()
                .enumerate()
                .filter(|(_, a)| {
                    !a.hash_excluded
                        && match self {
                            Scope::All => a.group != AttrGroup::Meta,
                            Scope::Person => a.group == AttrGroup::Person,
                        }
                })
                .map(|(i, _)| i)
                .collect()
        })
    }
}

/// Per-attribute entropy weights for heterogeneity scoring.
#[derive(Debug, Clone)]
pub struct AttributeWeights {
    /// Normalized weight per schema attribute (zero outside the scope).
    weights: Vec<f64>,
    attrs: &'static [AttrId],
}

impl AttributeWeights {
    /// Compute entropy weights from representative rows (the paper uses
    /// one record per cluster to avoid duplicate distortion).
    pub fn from_rows<'a, I>(scope: Scope, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a Row>,
    {
        let attrs = scope.attrs();
        let mut accs: Vec<EntropyAccumulator> =
            (0..attrs.len()).map(|_| EntropyAccumulator::new()).collect();
        for row in rows {
            for (k, &a) in attrs.iter().enumerate() {
                accs[k].observe(row.get(a).trim());
            }
        }
        let entropies: Vec<f64> = accs.iter().map(EntropyAccumulator::entropy).collect();
        let normalized = normalize_weights(&entropies);
        let mut weights = vec![0.0; NUM_ATTRS];
        for (k, &a) in attrs.iter().enumerate() {
            weights[a] = normalized[k];
        }
        AttributeWeights { weights, attrs }
    }

    /// Uniform weights over a scope (used when no data is available).
    pub fn uniform(scope: Scope) -> Self {
        let attrs = scope.attrs();
        let w = 1.0 / attrs.len() as f64;
        let mut weights = vec![0.0; NUM_ATTRS];
        for &a in attrs {
            weights[a] = w;
        }
        AttributeWeights { weights, attrs }
    }

    /// The weight of an attribute.
    pub fn weight(&self, attr: AttrId) -> f64 {
        self.weights[attr]
    }

    /// Attributes in scope, by descending weight (most unique first) —
    /// used by the detection experiment to pick its blocking keys.
    pub fn attrs_by_weight(&self) -> Vec<AttrId> {
        let mut v = self.attrs.to_vec();
        v.sort_by(|&a, &b| self.weights[b].total_cmp(&self.weights[a]));
        v
    }
}

/// A record's scope attributes normalized once for scoring: every
/// value trimmed, plus its lowercased form. The paper's four-way value
/// comparison needs both casings of both values for every pair, so
/// caching them per *record* turns the `O(n²)` per-pair `to_lowercase`
/// of a cluster into `O(n)` work at view-build time.
#[derive(Debug, Clone)]
pub struct ScoredRecordView<'a> {
    /// Trimmed value per scope attribute (index-parallel to the
    /// scorer's attribute list).
    trimmed: Vec<&'a str>,
    /// Lowercased trimmed value per scope attribute.
    lower: Vec<String>,
}

/// The heterogeneity scorer.
#[derive(Debug, Clone)]
pub struct HeterogeneityScorer {
    weights: AttributeWeights,
    damerau: DamerauLevenshtein,
    monge_elkan: MongeElkan<DamerauLevenshtein>,
}

impl HeterogeneityScorer {
    /// Create a scorer with the given weights.
    pub fn new(weights: AttributeWeights) -> Self {
        HeterogeneityScorer {
            weights,
            damerau: DamerauLevenshtein::new(),
            monge_elkan: MongeElkan::new(DamerauLevenshtein::new()),
        }
    }

    /// Precompute the normalized view of a record for this scorer's
    /// scope (see [`ScoredRecordView`]).
    pub fn view<'a>(&self, row: &'a Row) -> ScoredRecordView<'a> {
        let attrs = self.weights.attrs;
        let mut trimmed = Vec::with_capacity(attrs.len());
        let mut lower = Vec::with_capacity(attrs.len());
        for &attr in attrs {
            let t = row.get(attr).trim();
            trimmed.push(t);
            lower.push(t.to_lowercase());
        }
        ScoredRecordView { trimmed, lower }
    }

    /// The four-way mean over pre-normalized inputs (`a`/`b` trimmed,
    /// `la`/`lb` their lowercased forms).
    fn value_similarity_parts(
        &self,
        scratch: &mut Scratch,
        a: &str,
        la: &str,
        b: &str,
        lb: &str,
    ) -> f64 {
        (self.damerau.sim_with(scratch, a, b)
            + self.damerau.sim_with(scratch, la, lb)
            + self.monge_elkan.sim_with(scratch, a, b)
            + self.monge_elkan.sim_with(scratch, la, lb))
            / 4.0
    }

    /// The four-way value similarity: mean of {cased, lowercased} ×
    /// {Damerau–Levenshtein, Monge–Elkan}.
    pub fn value_similarity(&self, a: &str, b: &str) -> f64 {
        with_thread_scratch(|s| self.value_similarity_with(s, a, b))
    }

    /// [`HeterogeneityScorer::value_similarity`] against caller-provided
    /// scratch buffers; bit-identical scores.
    pub fn value_similarity_with(&self, scratch: &mut Scratch, a: &str, b: &str) -> f64 {
        let (a, b) = (a.trim(), b.trim());
        if a == b {
            return 1.0;
        }
        let la = a.to_lowercase();
        let lb = b.to_lowercase();
        self.value_similarity_parts(scratch, a, &la, b, &lb)
    }

    /// Heterogeneity of a record pair: the weighted average of the
    /// inverse value similarities across the scope's attributes.
    pub fn pair(&self, a: &Row, b: &Row) -> f64 {
        with_thread_scratch(|s| self.pair_with(s, &self.view(a), &self.view(b)))
    }

    /// [`HeterogeneityScorer::pair`] over precomputed views with
    /// caller-provided scratch buffers; bit-identical scores. Both
    /// views must come from this scorer (same scope).
    pub fn pair_with(
        &self,
        scratch: &mut Scratch,
        a: &ScoredRecordView<'_>,
        b: &ScoredRecordView<'_>,
    ) -> f64 {
        let mut acc = 0.0;
        let mut total_w = 0.0;
        for (k, &attr) in self.weights.attrs.iter().enumerate() {
            let w = self.weights.weights[attr];
            if w == 0.0 {
                continue;
            }
            let (ta, tb) = (a.trimmed[k], b.trimmed[k]);
            // `ta == tb` covers the both-empty case of the row-based
            // path; equal values short-circuit to similarity 1 exactly
            // as `value_similarity` does.
            let sim = if ta == tb {
                1.0
            } else {
                self.value_similarity_parts(scratch, ta, &a.lower[k], tb, &b.lower[k])
            };
            acc += w * (1.0 - sim);
            total_w += w;
        }
        if total_w == 0.0 {
            0.0
        } else {
            acc / total_w
        }
    }

    /// Heterogeneity of each record: the average of its pair scores
    /// against the other records.
    pub fn record_scores(&self, records: &[Row]) -> Vec<f64> {
        with_thread_scratch(|s| self.record_scores_with(s, records))
    }

    /// [`HeterogeneityScorer::record_scores`] with caller-provided
    /// scratch buffers; bit-identical scores.
    pub fn record_scores_with(&self, scratch: &mut Scratch, records: &[Row]) -> Vec<f64> {
        let n = records.len();
        if n <= 1 {
            return vec![0.0; n];
        }
        let views: Vec<ScoredRecordView<'_>> = records.iter().map(|r| self.view(r)).collect();
        let mut sums = vec![0.0f64; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let h = self.pair_with(scratch, &views[i], &views[j]);
                sums[i] += h;
                sums[j] += h;
            }
        }
        sums.iter().map(|s| s / (n - 1) as f64).collect()
    }

    /// Heterogeneity of a cluster: the average of its record scores.
    /// Clusters of size < 2 score 0 (the paper excludes them).
    pub fn cluster(&self, records: &[Row]) -> f64 {
        with_thread_scratch(|s| self.cluster_with(s, records))
    }

    /// [`HeterogeneityScorer::cluster`] with caller-provided scratch
    /// buffers; bit-identical scores.
    pub fn cluster_with(&self, scratch: &mut Scratch, records: &[Row]) -> f64 {
        let scores = self.record_scores_with(scratch, records);
        if scores.is_empty() {
            return 0.0;
        }
        scores.iter().sum::<f64>() / scores.len() as f64
    }

    /// All pairwise heterogeneity scores (i < j order).
    pub fn pair_scores(&self, records: &[Row]) -> Vec<f64> {
        with_thread_scratch(|s| self.pair_scores_with(s, records))
    }

    /// [`HeterogeneityScorer::pair_scores`] with caller-provided
    /// scratch buffers; bit-identical scores.
    pub fn pair_scores_with(&self, scratch: &mut Scratch, records: &[Row]) -> Vec<f64> {
        let n = records.len();
        let views: Vec<ScoredRecordView<'_>> = records.iter().map(|r| self.view(r)).collect();
        let mut out = Vec::with_capacity(n.saturating_sub(1) * n / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                out.push(self.pair_with(scratch, &views[i], &views[j]));
            }
        }
        out
    }

    /// Borrow the weights in use.
    pub fn weights(&self) -> &AttributeWeights {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_votergen::schema::{BIRTH_PLACE, FIRST_NAME, LAST_NAME, MIDL_NAME, NCID, RES_CITY, SEX_CODE};

    fn scorer(scope: Scope) -> HeterogeneityScorer {
        HeterogeneityScorer::new(AttributeWeights::uniform(scope))
    }

    fn person(first: &str, midl: &str, last: &str, city: &str) -> Row {
        let mut r = Row::empty();
        r.set(NCID, "X1");
        r.set(FIRST_NAME, first);
        r.set(MIDL_NAME, midl);
        r.set(LAST_NAME, last);
        r.set(SEX_CODE, "F");
        r.set(BIRTH_PLACE, "NORTH CAROLINA");
        r.set(RES_CITY, city);
        r
    }

    #[test]
    fn identical_records_have_zero_heterogeneity() {
        let r = person("MARY", "ANN", "SMITH", "RALEIGH");
        assert_eq!(scorer(Scope::Person).pair(&r, &r.clone()), 0.0);
    }

    #[test]
    fn small_difference_small_heterogeneity() {
        let s = scorer(Scope::Person);
        let a = person("MARY", "ANN", "SMITH", "RALEIGH");
        let b = person("MARY", "ANN", "SMYTH", "RALEIGH");
        let h = s.pair(&a, &b);
        assert!(h > 0.0 && h < 0.1, "{h}");
    }

    #[test]
    fn big_difference_big_heterogeneity() {
        let s = scorer(Scope::Person);
        let a = person("MARY", "ELIZABETH", "FIELDS", "RALEIGH");
        let b = person("JOSHUA", "", "BETHEA", "DURHAM");
        let small = s.pair(&a, &person("MARY", "ELIZABETH", "FIELDS", "DURHAM"));
        let big = s.pair(&a, &b);
        assert!(big > small * 2.0, "big={big} small={small}");
    }

    #[test]
    fn case_difference_is_milder_than_replacement() {
        // Section 6.3: "difference in upper and lower case … less
        // significant than replacing the original strings with
        // completely different letters". The lowercased comparisons cap
        // the case-flip penalty at 0.5 per value, while a replacement
        // drives the value similarity toward 0.
        let s = scorer(Scope::Person);
        let case_flip = 1.0 - s.value_similarity("SMITH", "smith");
        let replacement = 1.0 - s.value_similarity("SMITH", "VBQXZ");
        assert!((case_flip - 0.5).abs() < 1e-9, "{case_flip}");
        assert!(replacement > 0.9, "{replacement}");
        assert!(case_flip < replacement);
    }

    #[test]
    fn token_order_difference_is_mild() {
        let s = scorer(Scope::Person);
        let a = person("ANH THI", "", "NGUYEN", "RALEIGH");
        let b = person("THI ANH", "", "NGUYEN", "RALEIGH");
        let transposed = s.pair(&a, &b);
        let replaced = s.pair(&a, &person("BOB JAMES", "", "NGUYEN", "RALEIGH"));
        assert!(transposed < replaced, "{transposed} vs {replaced}");
    }

    #[test]
    fn both_missing_is_homogeneous() {
        let s = scorer(Scope::Person);
        let a = person("MARY", "", "SMITH", "RALEIGH");
        let b = person("MARY", "", "SMITH", "RALEIGH");
        assert_eq!(s.pair(&a, &b), 0.0);
    }

    #[test]
    fn one_missing_counts_fully() {
        let s = scorer(Scope::Person);
        let a = person("MARY", "ANN", "SMITH", "RALEIGH");
        let b = person("MARY", "", "SMITH", "RALEIGH");
        assert!(s.pair(&a, &b) > 0.0);
    }

    #[test]
    fn cluster_and_record_scores() {
        let s = scorer(Scope::Person);
        let a = person("MARY", "ANN", "SMITH", "RALEIGH");
        let b = person("MARY", "ANN", "SMYTH", "RALEIGH");
        let c = person("MARY", "A.", "SMITH", "RALEIGH");
        let records = vec![a, b, c];
        let rs = s.record_scores(&records);
        assert_eq!(rs.len(), 3);
        let cl = s.cluster(&records);
        let mean = rs.iter().sum::<f64>() / 3.0;
        assert!((cl - mean).abs() < 1e-12);
        // Degenerate sizes.
        assert_eq!(s.cluster(&records[..1]), 0.0);
        assert_eq!(s.cluster(&[]), 0.0);
    }

    #[test]
    fn entropy_weights_favor_unique_attributes() {
        // last_name varies, sex_code is constant → last_name must carry
        // more weight.
        let rows: Vec<Row> = (0..50)
            .map(|i| person(&format!("NAME{i}"), "", &format!("LAST{i}"), "RALEIGH"))
            .collect();
        let w = AttributeWeights::from_rows(Scope::Person, rows.iter());
        assert!(w.weight(LAST_NAME) > w.weight(SEX_CODE));
        assert!(w.weight(LAST_NAME) > 0.0);
        // Sorted attr list starts with a high-entropy attribute.
        let sorted = w.attrs_by_weight();
        assert!(w.weight(sorted[0]) >= w.weight(*sorted.last().unwrap()));
    }

    #[test]
    fn scope_person_ignores_district_differences() {
        let s = scorer(Scope::Person);
        let mut a = person("MARY", "ANN", "SMITH", "RALEIGH");
        let mut b = person("MARY", "ANN", "SMITH", "RALEIGH");
        a.set(nc_votergen::schema::NC_HOUSE, "64TH HOUSE");
        b.set(nc_votergen::schema::NC_HOUSE, "NC HOUSE DISTRICT 64");
        assert_eq!(s.pair(&a, &b), 0.0);
        let s_all = scorer(Scope::All);
        assert!(s_all.pair(&a, &b) > 0.0);
    }

    #[test]
    fn weights_sum_to_one_in_scope() {
        let w = AttributeWeights::uniform(Scope::All);
        let sum: f64 = Scope::All.attrs().iter().map(|&a| w.weight(a)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
