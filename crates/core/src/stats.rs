//! Dataset statistics: the computations behind Tables 1 and 2 and the
//! distribution figures.

use std::collections::BTreeMap;

use crate::cluster::ClusterStore;
use crate::import::ImportStats;

/// One row of Table 1: snapshot statistics aggregated per year.
#[derive(Debug, Clone, PartialEq)]
pub struct YearStats {
    /// Calendar year.
    pub year: i32,
    /// Snapshots published in that year.
    pub snapshots: usize,
    /// Total rows across the year's snapshots.
    pub total_rows: u64,
    /// Rows that became new records.
    pub new_records: u64,
    /// New records that founded new clusters.
    pub new_objects: u64,
}

impl YearStats {
    /// `new_records / total_rows` (the paper's "new record rate").
    pub fn new_record_rate(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.new_records as f64 / self.total_rows as f64
        }
    }

    /// `new_objects / new_records` (the paper's "new object rate").
    pub fn new_object_rate(&self) -> f64 {
        if self.new_records == 0 {
            0.0
        } else {
            self.new_objects as f64 / self.new_records as f64
        }
    }
}

/// Aggregate per-snapshot import stats into Table 1's per-year rows.
pub fn snapshot_table(imports: &[ImportStats]) -> Vec<YearStats> {
    let mut by_year: BTreeMap<i32, (usize, ImportStats)> = BTreeMap::new();
    for s in imports {
        // Snapshots with unparseable dates carry no year; skip them
        // rather than silently aggregating under a bogus year 0.
        let Some(year) = s.year() else { continue };
        let (snapshots, agg) = by_year
            .entry(year)
            .or_insert_with(|| (0, ImportStats::zero("")));
        *snapshots += 1;
        agg.merge(s);
    }
    by_year
        .into_iter()
        .map(|(year, (snapshots, agg))| YearStats {
            year,
            snapshots,
            total_rows: agg.total_rows,
            new_records: agg.new_records,
            new_objects: agg.new_clusters,
        })
        .collect()
}

/// One row of Table 2: the outcome of one dedup policy.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationStats {
    /// Policy label ("no" / "exact" / "trimming" / "person data").
    pub policy: &'static str,
    /// Clusters (objects) in the dataset.
    pub clusters: u64,
    /// Records kept.
    pub records: u64,
    /// Duplicate pairs among kept records: Σ over clusters of C(n, 2).
    pub duplicate_pairs: u64,
    /// Average cluster size.
    pub avg_cluster_size: f64,
    /// Maximum cluster size.
    pub max_cluster_size: u64,
    /// Rows dropped as duplicates.
    pub removed_records: u64,
    /// Fraction of rows removed.
    pub removed_record_rate: f64,
    /// Duplicate pairs removed relative to the no-removal baseline.
    pub removed_pairs: u64,
    /// Fraction of baseline pairs removed.
    pub removed_pair_rate: f64,
}

/// Number of unordered pairs within a cluster of size `n`.
pub fn pairs_in_cluster(n: u64) -> u64 {
    n * n.saturating_sub(1) / 2
}

/// Compute a Table 2 row for a store built under one policy.
pub fn generation_table_row(store: &ClusterStore, policy_label: &'static str) -> GenerationStats {
    let sizes = store.cluster_sizes();
    let rows_seen = store.cluster_rows_seen();
    let records: u64 = sizes.iter().map(|&s| s as u64).sum();
    let clusters = sizes.len() as u64;
    let duplicate_pairs: u64 = sizes.iter().map(|&s| pairs_in_cluster(s as u64)).sum();
    let baseline_pairs: u64 = rows_seen.iter().map(|&s| pairs_in_cluster(s)).sum();
    let rows_total: u64 = store.rows_imported();
    let max_cluster_size = sizes.iter().map(|&s| s as u64).max().unwrap_or(0);
    let removed_records = rows_total - records;
    let removed_pairs = baseline_pairs - duplicate_pairs;
    GenerationStats {
        policy: policy_label,
        clusters,
        records,
        duplicate_pairs,
        avg_cluster_size: if clusters == 0 {
            0.0
        } else {
            records as f64 / clusters as f64
        },
        max_cluster_size,
        removed_records,
        removed_record_rate: if rows_total == 0 {
            0.0
        } else {
            removed_records as f64 / rows_total as f64
        },
        removed_pairs,
        removed_pair_rate: if baseline_pairs == 0 {
            0.0
        } else {
            removed_pairs as f64 / baseline_pairs as f64
        },
    }
}

/// Figure 1: number of clusters per cluster size.
pub fn cluster_size_histogram(store: &ClusterStore) -> BTreeMap<usize, u64> {
    let mut hist = BTreeMap::new();
    for s in store.cluster_sizes() {
        *hist.entry(s).or_insert(0u64) += 1;
    }
    hist
}

/// A fixed-width histogram over `[0, 1]` scores (Figures 4a–4c).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreDistribution {
    /// Number of equal-width bins over `[0, 1]`.
    pub bins: usize,
    /// Counts per bin; scores of exactly `1.0` land in the last bin.
    pub counts: Vec<u64>,
    /// Number of observations.
    pub n: u64,
    /// Sum of observations (for the mean).
    pub sum: f64,
    /// Minimum observed score.
    pub min: f64,
    /// Maximum observed score.
    pub max: f64,
}

impl ScoreDistribution {
    /// Create an empty distribution with `bins` bins.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0);
        ScoreDistribution {
            bins,
            counts: vec![0; bins],
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one score (clamped to `[0, 1]`).
    pub fn observe(&mut self, score: f64) {
        let s = score.clamp(0.0, 1.0);
        let idx = ((s * self.bins as f64) as usize).min(self.bins - 1);
        self.counts[idx] += 1;
        self.n += 1;
        self.sum += s;
        self.min = self.min.min(s);
        self.max = self.max.max(s);
    }

    /// Mean observed score (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Fraction of observations with score ≥ `threshold`.
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let start = ((threshold.clamp(0.0, 1.0) * self.bins as f64) as usize).min(self.bins - 1);
        let c: u64 = self.counts[start..].iter().sum();
        c as f64 / self.n as f64
    }

    /// Fraction of observations with score < `threshold` (bin
    /// resolution).
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        1.0 - self.fraction_at_least(threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DedupPolicy;
    use nc_votergen::schema::{LAST_NAME, NCID, Row};

    fn import(store: &mut ClusterStore, ncid: &str, last: &str, snap: &str) {
        let mut r = Row::empty();
        r.set(NCID, ncid);
        r.set(LAST_NAME, last);
        store.import_row(r, DedupPolicy::Trimmed, snap, 1);
    }

    #[test]
    fn pairs_formula() {
        assert_eq!(pairs_in_cluster(0), 0);
        assert_eq!(pairs_in_cluster(1), 0);
        assert_eq!(pairs_in_cluster(2), 1);
        assert_eq!(pairs_in_cluster(5), 10);
        assert_eq!(pairs_in_cluster(38), 703);
    }

    #[test]
    fn snapshot_table_aggregates_by_year() {
        let imports = vec![
            ImportStats { date: "2008-11-04".into(), total_rows: 100, new_records: 100, new_clusters: 100, quarantined: 0 },
            ImportStats { date: "2009-01-01".into(), total_rows: 110, new_records: 20, new_clusters: 5, quarantined: 0 },
            ImportStats { date: "2010-05-04".into(), total_rows: 120, new_records: 30, new_clusters: 10, quarantined: 0 },
            ImportStats { date: "2010-11-02".into(), total_rows: 125, new_records: 15, new_clusters: 5, quarantined: 0 },
        ];
        let table = snapshot_table(&imports);
        assert_eq!(table.len(), 3);
        let y2010 = &table[2];
        assert_eq!(y2010.year, 2010);
        assert_eq!(y2010.snapshots, 2);
        assert_eq!(y2010.total_rows, 245);
        assert_eq!(y2010.new_records, 45);
        assert_eq!(y2010.new_objects, 15);
        assert!((y2010.new_object_rate() - 15.0 / 45.0).abs() < 1e-12);
        assert!((y2010.new_record_rate() - 45.0 / 245.0).abs() < 1e-12);
    }

    #[test]
    fn generation_row_counts_removals() {
        let mut store = ClusterStore::new();
        // Cluster A: 3 rows, 2 distinct records.
        import(&mut store, "A", "SMITH", "s1");
        import(&mut store, "A", "SMITH", "s2");
        import(&mut store, "A", "SMYTHE", "s3");
        // Cluster B: 2 identical rows.
        import(&mut store, "B", "JONES", "s1");
        import(&mut store, "B", "JONES", "s2");
        let row = generation_table_row(&store, "trimming");
        assert_eq!(row.clusters, 2);
        assert_eq!(row.records, 3);
        assert_eq!(row.duplicate_pairs, 1); // C(2,2)=1 + C(1,2)=0
        assert_eq!(row.removed_records, 2);
        assert_eq!(row.max_cluster_size, 2);
        assert!((row.avg_cluster_size - 1.5).abs() < 1e-12);
        // Baseline pairs: C(3,2) + C(2,2) = 3 + 1 = 4 → removed 3.
        assert_eq!(row.removed_pairs, 3);
        assert!((row.removed_pair_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_sizes() {
        let mut store = ClusterStore::new();
        import(&mut store, "A", "X", "s1");
        import(&mut store, "A", "Y", "s1");
        import(&mut store, "B", "X", "s1");
        let hist = cluster_size_histogram(&store);
        assert_eq!(hist.get(&1), Some(&1));
        assert_eq!(hist.get(&2), Some(&1));
    }

    #[test]
    fn score_distribution_bins_and_stats() {
        let mut d = ScoreDistribution::new(10);
        for s in [0.0, 0.05, 0.5, 0.95, 1.0, 1.0] {
            d.observe(s);
        }
        assert_eq!(d.n, 6);
        assert_eq!(d.counts[0], 2); // 0.0 and 0.05
        assert_eq!(d.counts[5], 1); // 0.5
        assert_eq!(d.counts[9], 3); // 0.95, 1.0, 1.0
        assert!((d.mean() - (0.0 + 0.05 + 0.5 + 0.95 + 2.0) / 6.0).abs() < 1e-12);
        assert_eq!(d.min, 0.0);
        assert_eq!(d.max, 1.0);
        assert!((d.fraction_at_least(0.9) - 0.5).abs() < 1e-12);
        assert!((d.fraction_below(0.9) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn score_distribution_clamps() {
        let mut d = ScoreDistribution::new(4);
        d.observe(-0.5);
        d.observe(1.5);
        assert_eq!(d.counts[0], 1);
        assert_eq!(d.counts[3], 1);
        assert_eq!(d.min, 0.0);
        assert_eq!(d.max, 1.0);
    }
}
