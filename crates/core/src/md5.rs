//! MD5 (RFC 1321), implemented from scratch.
//!
//! The paper fingerprints every record with MD5 over the concatenation
//! of its relevant attribute values to detect (near-)exact duplicates
//! during import (Section 4). Cryptographic strength is irrelevant here —
//! a collision merely drops one duplicate record — but the 128-bit digest
//! makes accidental collisions vanishingly unlikely.

/// Per-round shift amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Binary integer parts of `abs(sin(i + 1)) * 2^32`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391,
];

/// A 128-bit MD5 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 16]);

impl Digest {
    /// Lowercase hex rendering (32 characters).
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parse a 32-character hex rendering back into a digest (the
    /// inverse of [`Digest::to_hex`]; accepts either case).
    pub fn from_hex(s: &str) -> Option<Digest> {
        let bytes = s.as_bytes();
        if bytes.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            out[i] = (hi * 16 + lo) as u8;
        }
        Some(Digest(out))
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Compute the MD5 digest of a byte string.
pub fn md5(input: &[u8]) -> Digest {
    let mut a0: u32 = 0x67452301;
    let mut b0: u32 = 0xefcdab89;
    let mut c0: u32 = 0x98badcfe;
    let mut d0: u32 = 0x10325476;

    // Message padding: 0x80, zeros, then the 64-bit bit length.
    let bit_len = (input.len() as u64).wrapping_mul(8);
    let mut msg = input.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in chunk.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | (!b & d), i),
                16..=31 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    Digest(out)
}

/// MD5 of a string.
pub fn md5_str(input: &str) -> Digest {
    md5(input.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 Appendix A.5 test suite.
    #[test]
    fn rfc1321_test_vectors() {
        let cases = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(md5_str(input).to_hex(), expected, "input: {input:?}");
        }
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 55/56/64-byte padding edges.
        for len in [54, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let s = "x".repeat(len);
            let d = md5_str(&s);
            // Digest must be deterministic and 16 bytes.
            assert_eq!(md5_str(&s), d);
            assert_eq!(d.to_hex().len(), 32);
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(md5_str("SMITH|JOHN"), md5_str("SMITH|JOHN "));
        assert_ne!(md5_str("a|b"), md5_str("a|b|"));
    }

    #[test]
    fn display_matches_hex() {
        let d = md5_str("abc");
        assert_eq!(format!("{d}"), d.to_hex());
    }

    #[test]
    fn binary_input_supported() {
        let d = md5(&[0u8, 255, 128, 7]);
        assert_eq!(d.to_hex().len(), 32);
    }

    #[test]
    fn hex_round_trip() {
        let d = md5(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex(&d.to_hex().to_uppercase()), Some(d));
        assert_eq!(Digest::from_hex("short"), None);
        assert_eq!(Digest::from_hex(&"zz".repeat(16)), None);
    }
}
