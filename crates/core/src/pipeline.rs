//! The end-to-end generation pipeline: simulate (or read) an archive,
//! import it under a dedup policy, publish a version.

use std::collections::HashSet;
use std::path::Path;

use nc_votergen::config::GeneratorConfig;
use nc_votergen::registry::Registry;
use nc_votergen::snapshot::standard_calendar;

use crate::checkpoint;
use crate::cluster::ClusterStore;
use crate::heterogeneity::HeterogeneityScorer;
use crate::import::{import_archive_streaming, ImportStats};
use crate::plausibility::PlausibilityScorer;
use crate::record::DedupPolicy;
use crate::scoring::{self, ClusterScore};
use crate::tsv::{self, ImportOptions, QuarantineReport, TsvError};
use crate::version::VersionManager;

pub use crate::scoring::ScoringConfig;

/// Configuration of one full generation run.
#[derive(Debug, Clone)]
pub struct GenerationConfig {
    /// The synthetic-archive generator configuration.
    pub generator: GeneratorConfig,
    /// Dedup policy applied during import.
    pub policy: DedupPolicy,
    /// Number of snapshots to use from the standard calendar (≤ 40).
    pub snapshots: usize,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        GenerationConfig {
            generator: GeneratorConfig::default(),
            policy: DedupPolicy::Trimmed,
            snapshots: 40,
        }
    }
}

/// Everything produced by a generation run.
#[derive(Debug)]
pub struct GenerationOutcome {
    /// The populated cluster store (finalized).
    pub store: ClusterStore,
    /// Version history (one version published for the whole run).
    pub versions: VersionManager,
    /// Per-snapshot import statistics.
    pub imports: Vec<ImportStats>,
    /// NCIDs known (by construction) to be reused for different persons —
    /// the ground truth for plausibility evaluation.
    pub unsound_ncids: HashSet<String>,
}

impl GenerationOutcome {
    /// Precalculate the per-cluster plausibility and heterogeneity
    /// statistics of Section 6 over `scoring.threads` workers. The
    /// result is in [`ClusterStore::cluster_ids`] order and
    /// bit-identical for every thread count (see [`crate::scoring`]).
    pub fn cluster_scores(
        &self,
        heterogeneity: &HeterogeneityScorer,
        scoring: &ScoringConfig,
    ) -> Vec<ClusterScore> {
        scoring::score_store(&self.store, &PlausibilityScorer::new(), heterogeneity, scoring)
    }
}

/// Everything produced by an on-disk archive run.
#[derive(Debug)]
pub struct ArchiveRunOutcome {
    /// The populated cluster store (finalized).
    pub store: ClusterStore,
    /// Version history (one version published for the whole run).
    pub versions: VersionManager,
    /// Per-snapshot import statistics.
    pub imports: Vec<ImportStats>,
    /// Aggregate quarantine accounting (empty under strict mode).
    pub quarantine: QuarantineReport,
    /// Snapshots skipped because a checkpoint already covered them.
    pub resumed_snapshots: usize,
    /// Why an existing checkpoint was discarded, if one was.
    pub checkpoint_discarded: Option<String>,
}

/// The pipeline driver.
#[derive(Debug)]
pub struct TestDataGenerator;

impl TestDataGenerator {
    /// Run the full pipeline: generate the archive, import every
    /// snapshot under the policy, publish version 1 and finalize the
    /// store's document meta data.
    pub fn run(config: GenerationConfig) -> GenerationOutcome {
        let calendar: Vec<_> = standard_calendar()
            .into_iter()
            .take(config.snapshots.clamp(1, 40))
            .collect();
        let mut registry = Registry::new(config.generator.clone());
        let mut store = ClusterStore::new();
        let mut versions = VersionManager::new();
        let version = versions.next_version();
        let imports = import_archive_streaming(
            &mut store,
            &mut registry,
            &calendar,
            config.policy,
            version,
        );
        versions.publish(&store, &imports);
        store.finalize();
        GenerationOutcome {
            unsound_ncids: registry.unsound_ncids().clone(),
            store,
            versions,
            imports,
        }
    }

    /// Run the pipeline incrementally, publishing one version per
    /// snapshot (the update process of Figure 2).
    pub fn run_incremental(config: GenerationConfig) -> GenerationOutcome {
        let calendar: Vec<_> = standard_calendar()
            .into_iter()
            .take(config.snapshots.clamp(1, 40))
            .collect();
        let mut registry = Registry::new(config.generator.clone());
        let mut store = ClusterStore::new();
        let mut versions = VersionManager::new();
        let mut imports = Vec::new();
        for info in &calendar {
            let version = versions.next_version();
            let snap = registry.generate_snapshot(info);
            let stats = crate::import::import_snapshot(&mut store, &snap, config.policy, version);
            versions.publish(&store, std::slice::from_ref(&stats));
            imports.push(stats);
        }
        store.finalize();
        GenerationOutcome {
            unsound_ncids: registry.unsound_ncids().clone(),
            store,
            versions,
            imports,
        }
    }

    /// Run the pipeline over an on-disk archive directory, with
    /// fault-tolerant ingest and optional checkpointing.
    ///
    /// With `state_dir = Some(..)` a checkpoint (store + manifest) is
    /// persisted after every imported snapshot, so an interrupted run
    /// resumes after the last completed snapshot when called again with
    /// the same parameters (see [`checkpoint`]). With `None`, the
    /// archive is imported in one pass without checkpoints. Quarantine
    /// handling and the error budget follow `options`.
    pub fn run_archive(
        archive_dir: &Path,
        state_dir: Option<&Path>,
        policy: DedupPolicy,
        options: &ImportOptions,
    ) -> Result<ArchiveRunOutcome, TsvError> {
        let mut versions = VersionManager::new();
        let version = versions.next_version();
        match state_dir {
            Some(state) => {
                let out = checkpoint::import_archive_dir_resumable(
                    archive_dir,
                    state,
                    policy,
                    version,
                    options,
                )?;
                versions.publish(&out.store, &out.stats);
                Ok(ArchiveRunOutcome {
                    store: out.store,
                    versions,
                    imports: out.stats,
                    quarantine: out.quarantine,
                    resumed_snapshots: out.resumed_snapshots,
                    checkpoint_discarded: out.checkpoint_discarded,
                })
            }
            None => {
                let mut store = ClusterStore::new();
                let outcome =
                    tsv::import_archive_dir_with(&mut store, archive_dir, policy, version, options)?;
                versions.publish(&store, &outcome.stats);
                store.finalize();
                Ok(ArchiveRunOutcome {
                    store,
                    versions,
                    imports: outcome.stats,
                    quarantine: outcome.quarantine,
                    resumed_snapshots: 0,
                    checkpoint_discarded: None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64, pop: usize, snapshots: usize) -> GenerationConfig {
        GenerationConfig {
            generator: GeneratorConfig {
                seed,
                initial_population: pop,
                ..Default::default()
            },
            policy: DedupPolicy::Trimmed,
            snapshots,
        }
    }

    #[test]
    fn full_run_produces_clusters_and_version() {
        let out = TestDataGenerator::run(cfg(11, 120, 5));
        assert!(out.store.cluster_count() >= 120);
        assert_eq!(out.imports.len(), 5);
        assert_eq!(out.versions.history().len(), 1);
        assert_eq!(
            out.versions.current().unwrap().records_total,
            out.store.record_count()
        );
    }

    #[test]
    fn dedup_compresses_relative_to_rows() {
        let out = TestDataGenerator::run(cfg(12, 150, 8));
        let rows = out.store.rows_imported();
        let records = out.store.record_count();
        assert!(rows > records * 2, "rows {rows} vs records {records}");
    }

    #[test]
    fn incremental_run_versions_every_snapshot() {
        let out = TestDataGenerator::run_incremental(cfg(13, 80, 4));
        assert_eq!(out.versions.history().len(), 4);
        let totals: Vec<u64> = out
            .versions
            .history()
            .iter()
            .map(|v| v.records_total)
            .collect();
        assert!(totals.windows(2).all(|w| w[0] <= w[1]), "{totals:?}");
    }

    #[test]
    fn incremental_and_batch_agree_on_final_state() {
        let a = TestDataGenerator::run(cfg(14, 60, 3));
        let b = TestDataGenerator::run_incremental(cfg(14, 60, 3));
        assert_eq!(a.store.record_count(), b.store.record_count());
        assert_eq!(a.store.cluster_count(), b.store.cluster_count());
    }

    #[test]
    fn cluster_scores_are_thread_count_invariant() {
        use crate::heterogeneity::{AttributeWeights, Scope};
        let out = TestDataGenerator::run(cfg(18, 60, 3));
        let het = HeterogeneityScorer::new(AttributeWeights::uniform(Scope::Person));
        let seq = out.cluster_scores(&het, &ScoringConfig::with_threads(1));
        let par = out.cluster_scores(&het, &ScoringConfig::with_threads(4));
        assert_eq!(seq.len(), out.store.cluster_count());
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.ncid, p.ncid);
            assert_eq!(s.plausibility.to_bits(), p.plausibility.to_bits());
            assert_eq!(s.heterogeneity.to_bits(), p.heterogeneity.to_bits());
        }
    }

    #[test]
    fn snapshots_capped_at_calendar_length() {
        let out = TestDataGenerator::run(cfg(15, 30, 500));
        assert_eq!(out.imports.len(), 40);
    }

    fn write_archive(dir: &std::path::Path, seed: u64, pop: usize, snapshots: usize) {
        let mut reg = Registry::new(GeneratorConfig {
            seed,
            initial_population: pop,
            ..Default::default()
        });
        for info in standard_calendar().iter().take(snapshots) {
            let snap = reg.generate_snapshot(info);
            tsv::write_snapshot(dir, &snap).unwrap();
        }
    }

    #[test]
    fn archive_run_matches_in_memory_run() {
        let dir = std::env::temp_dir()
            .join(format!("nc_pipe_archive_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_archive(&dir, 16, 50, 3);

        let mem = TestDataGenerator::run(cfg(16, 50, 3));
        let disk = TestDataGenerator::run_archive(
            &dir,
            None,
            DedupPolicy::Trimmed,
            &ImportOptions::strict(),
        )
        .unwrap();
        assert_eq!(disk.imports, mem.imports);
        assert_eq!(disk.store.record_count(), mem.store.record_count());
        assert_eq!(disk.store.cluster_count(), mem.store.cluster_count());
        assert_eq!(disk.quarantine, QuarantineReport::default());
        assert_eq!(
            disk.versions.current().unwrap().records_total,
            disk.store.record_count()
        );

        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn archive_run_with_state_dir_checkpoints_and_agrees() {
        let dir = std::env::temp_dir()
            .join(format!("nc_pipe_ckpt_archive_{}", std::process::id()));
        let state = std::env::temp_dir()
            .join(format!("nc_pipe_ckpt_state_{}", std::process::id()));
        for d in [&dir, &state] {
            let _ = std::fs::remove_dir_all(d);
        }
        write_archive(&dir, 17, 40, 2);

        let plain = TestDataGenerator::run_archive(
            &dir,
            None,
            DedupPolicy::Trimmed,
            &ImportOptions::strict(),
        )
        .unwrap();
        let ckpt = TestDataGenerator::run_archive(
            &dir,
            Some(&state),
            DedupPolicy::Trimmed,
            &ImportOptions::strict(),
        )
        .unwrap();
        assert_eq!(ckpt.imports, plain.imports);
        assert_eq!(ckpt.resumed_snapshots, 0);
        assert!(checkpoint::manifest_path(&state).exists());

        // A second run resumes entirely from the checkpoint.
        let resumed = TestDataGenerator::run_archive(
            &dir,
            Some(&state),
            DedupPolicy::Trimmed,
            &ImportOptions::strict(),
        )
        .unwrap();
        assert_eq!(resumed.resumed_snapshots, 2);
        assert_eq!(resumed.imports, plain.imports);
        assert_eq!(resumed.store.record_count(), plain.store.record_count());

        for d in [dir, state] {
            std::fs::remove_dir_all(d).unwrap();
        }
    }
}
