//! Property tests: customization is a pure function of
//! `(seed, params, store version)` — the same inputs always carve the
//! same `CustomDataset`, and the borrowed-snapshot path
//! (`customize_clusters` / `StoreSnapshot::customize`, which the serve
//! layer is built on) is bit-identical to `customize` on the store.

use nc_core::cluster::ClusterStore;
use nc_core::customize::{customize, customize_clusters, CustomDataset, CustomizeParams};
use nc_core::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use nc_core::record::DedupPolicy;
use nc_core::snapshot::StoreSnapshot;
use nc_votergen::schema::{Row, FIRST_NAME, LAST_NAME, MIDL_NAME, NCID, RES_CITY};
use proptest::prelude::*;

const FIRSTS: [&str; 6] = ["MARY", "JAMES", "PATRICIA", "ROBERT", "LINDA", "MICHAEL"];
const LASTS: [&str; 6] = ["SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA"];
const CITIES: [&str; 4] = ["RALEIGH", "DURHAM", "CARY", "APEX"];

/// A deterministic store: `stamp` varies which names land where, index
/// arithmetic varies the per-cluster record count (1–4) and how much
/// records within a cluster differ (exercising all heterogeneity
/// bands) — no RNG, so the store is a pure function of its arguments.
fn build_store(stamp: u64, clusters: usize) -> ClusterStore {
    let mut store = ClusterStore::new();
    for c in 0..clusters {
        let k = stamp as usize + c;
        let size = 1 + k % 4;
        for r in 0..size {
            let mut row = Row::empty();
            row.set(NCID, format!("P{c:04}"));
            // Record 0 is the base; later records drift further away.
            let drift = r * (1 + k % 3);
            row.set(FIRST_NAME, FIRSTS[(k + drift) % FIRSTS.len()]);
            row.set(MIDL_NAME, if (k + r).is_multiple_of(3) { "LEE" } else { "" });
            row.set(LAST_NAME, LASTS[(k + drift / 2) % LASTS.len()]);
            row.set(RES_CITY, CITIES[(k + r) % CITIES.len()]);
            store.import_row(row, DedupPolicy::Trimmed, &format!("s{r}"), 1 + r as u32);
        }
    }
    store
}

/// The scorer derivation used throughout the repo (and by the serve
/// layer): entropy weights from one record per cluster, person scope.
fn scorer_for(store: &ClusterStore) -> HeterogeneityScorer {
    let firsts: Vec<_> = store
        .cluster_ids()
        .iter()
        .filter_map(|(n, _)| store.cluster_rows(n).into_iter().next())
        .collect();
    HeterogeneityScorer::new(AttributeWeights::from_rows(Scope::Person, firsts.iter()))
}

/// Bit-exact rendering of a dataset for comparison: NCIDs plus every
/// record as its TSV line, in order.
fn render(ds: &CustomDataset) -> Vec<String> {
    ds.clusters
        .iter()
        .flat_map(|c| {
            std::iter::once(format!("# {}", c.ncid)).chain(c.records.iter().map(Row::to_tsv))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same `(seed, params, store)` → identical dataset, every time.
    #[test]
    fn customize_is_deterministic(
        stamp in 0u64..40,
        seed in 0u64..1_000,
        lo_tenths in 0u32..8,
        width_tenths in 0u32..10,
        sample in 1usize..40,
        output in 1usize..25,
    ) {
        let store = build_store(stamp, 30);
        let scorer = scorer_for(&store);
        let params = CustomizeParams {
            h_low: f64::from(lo_tenths) / 10.0,
            h_high: (f64::from(lo_tenths) + f64::from(width_tenths)) / 10.0,
            sample_clusters: sample,
            output_clusters: output,
            seed,
        };
        let a = customize(&store, &scorer, &params);
        let b = customize(&store, &scorer, &params);
        prop_assert_eq!(render(&a), render(&b));
    }

    /// The borrowed-clusters path (what a serve snapshot runs) is
    /// bit-identical to customizing the store directly.
    #[test]
    fn snapshot_path_matches_store_path(
        stamp in 0u64..40,
        seed in 0u64..1_000,
        sample in 1usize..40,
        output in 1usize..25,
    ) {
        let store = build_store(stamp, 30);
        let scorer = scorer_for(&store);
        let params = CustomizeParams {
            h_low: 0.0,
            h_high: 0.6,
            sample_clusters: sample,
            output_clusters: output,
            seed,
        };
        let direct = customize(&store, &scorer, &params);

        // Through the raw clusters slice…
        let clusters: Vec<(String, Vec<Row>)> = store
            .cluster_ids()
            .into_iter()
            .map(|(ncid, _)| {
                let rows = store.cluster_rows(&ncid);
                (ncid, rows)
            })
            .collect();
        let via_slice = customize_clusters(&clusters, &scorer, &params);
        prop_assert_eq!(render(&direct), render(&via_slice));

        // …and through a captured snapshot with its own derived scorer
        // (the serve layer's exact path).
        let snapshot = StoreSnapshot::capture(&store, 1);
        let via_snapshot = snapshot.customize(&snapshot.entropy_scorer(Scope::Person), &params);
        prop_assert_eq!(render(&direct), render(&via_snapshot));
    }

    /// Two snapshots captured from the same store version carve
    /// identically — a cached serve result can never drift from a
    /// fresh one.
    #[test]
    fn recaptured_snapshots_carve_identically(
        stamp in 0u64..40,
        seed in 0u64..1_000,
    ) {
        let store = build_store(stamp, 25);
        let params = CustomizeParams {
            h_low: 0.1,
            h_high: 0.9,
            sample_clusters: 20,
            output_clusters: 12,
            seed,
        };
        let snap_a = StoreSnapshot::capture(&store, 3);
        let snap_b = StoreSnapshot::capture(&store, 3);
        let a = snap_a.customize(&snap_a.entropy_scorer(Scope::Person), &params);
        let b = snap_b.customize(&snap_b.entropy_scorer(Scope::Person), &params);
        prop_assert_eq!(render(&a), render(&b));
    }
}

/// Different seeds must be able to produce different samples (the RNG
/// is actually wired through) — a plain sanity check, not a property.
#[test]
fn seeds_influence_sampling() {
    let store = build_store(7, 30);
    let scorer = scorer_for(&store);
    let carve = |seed| {
        customize(
            &store,
            &scorer,
            &CustomizeParams {
                h_low: 0.0,
                h_high: 1.0,
                sample_clusters: 5,
                output_clusters: 5,
                seed,
            },
        )
    };
    let distinct: std::collections::HashSet<Vec<String>> =
        (0..20).map(|s| render(&carve(s))).collect();
    assert!(distinct.len() > 1, "all 20 seeds carved the same sample");
}
