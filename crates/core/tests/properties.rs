//! Property-based tests on the core pipeline invariants.

use nc_core::cluster::{ClusterStore, RowOutcome};
use nc_core::md5::md5_str;
use nc_core::record::{fingerprint, trim_row, DedupPolicy};
use nc_core::stats::pairs_in_cluster;
use nc_votergen::schema::{Row, AGE, FIRST_NAME, LAST_NAME, NCID, SNAPSHOT_DT};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Z]{0,10}").unwrap()
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (word(), word(), "[A-Z]{2}[0-9]{3}", "[0-9]{1,3}").prop_map(|(first, last, ncid, age)| {
        let mut r = Row::empty();
        r.set(NCID, ncid);
        r.set(FIRST_NAME, first);
        r.set(LAST_NAME, last);
        r.set(AGE, age);
        r.set(SNAPSHOT_DT, "2010-01-01");
        r
    })
}

proptest! {
    /// MD5 is deterministic and 32 hex characters.
    #[test]
    fn md5_shape(s in ".{0,200}") {
        let d1 = md5_str(&s);
        let d2 = md5_str(&s);
        prop_assert_eq!(d1, d2);
        let hex = d1.to_hex();
        prop_assert_eq!(hex.len(), 32);
        prop_assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }

    /// Distinct inputs virtually never collide (sanity check over small
    /// random inputs).
    #[test]
    fn md5_injective_on_small_inputs(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        if a != b {
            prop_assert_ne!(md5_str(&a), md5_str(&b));
        }
    }

    /// Fingerprints ignore age and snapshot date under every policy.
    #[test]
    fn fingerprint_ignores_time_attributes(
        row in row_strategy(),
        age2 in "[0-9]{1,3}",
        date2 in "20[0-2][0-9]-0[1-9]-0[1-9]",
    ) {
        let mut other = row.clone();
        other.set(AGE, age2);
        other.set(SNAPSHOT_DT, date2);
        for policy in [DedupPolicy::Exact, DedupPolicy::Trimmed, DedupPolicy::PersonData] {
            prop_assert_eq!(fingerprint(&row, policy), fingerprint(&other, policy));
        }
    }

    /// Trimmed fingerprints are invariant under added whitespace.
    #[test]
    fn trimmed_fingerprint_ignores_padding(row in row_strategy()) {
        let mut padded = row.clone();
        let v = padded.get(LAST_NAME).to_owned();
        padded.set(LAST_NAME, format!("  {v} "));
        prop_assert_eq!(
            fingerprint(&row, DedupPolicy::Trimmed),
            fingerprint(&padded, DedupPolicy::Trimmed)
        );
        // The Exact policy distinguishes them (unless the name is empty).
        if !v.is_empty() {
            prop_assert_ne!(
                fingerprint(&row, DedupPolicy::Exact),
                fingerprint(&padded, DedupPolicy::Exact)
            );
        }
    }

    /// Importing the same row twice is idempotent under any
    /// deduplicating policy.
    #[test]
    fn import_is_idempotent(row in row_strategy(), n in 2usize..6) {
        for policy in [DedupPolicy::Exact, DedupPolicy::Trimmed, DedupPolicy::PersonData] {
            let mut store = ClusterStore::new();
            let first = store.import_row(row.clone(), policy, "s1", 1);
            prop_assert_eq!(first, RowOutcome::NewCluster);
            for _ in 1..n {
                let out = store.import_row(row.clone(), policy, "s2", 1);
                prop_assert_eq!(out, RowOutcome::DuplicateDropped);
            }
            prop_assert_eq!(store.record_count(), 1);
            prop_assert_eq!(store.rows_imported(), n as u64);
        }
    }

    /// Clusters partition the imported rows: record counts per cluster
    /// sum to the store's record count, and rows seen sum to the rows
    /// imported.
    #[test]
    fn cluster_accounting_is_consistent(rows in proptest::collection::vec(row_strategy(), 1..30)) {
        let mut store = ClusterStore::new();
        for row in rows {
            store.import_row(row, DedupPolicy::Trimmed, "s1", 1);
        }
        let sizes: u64 = store.cluster_sizes().iter().map(|&s| s as u64).sum();
        prop_assert_eq!(sizes, store.record_count());
        let seen: u64 = store.cluster_rows_seen().iter().sum();
        prop_assert_eq!(seen, store.rows_imported());
        prop_assert!(store.record_count() <= store.rows_imported());
    }

    /// trim_row is idempotent.
    #[test]
    fn trim_is_idempotent(row in row_strategy()) {
        let mut once = row.clone();
        trim_row(&mut once);
        let mut twice = once.clone();
        trim_row(&mut twice);
        prop_assert_eq!(once, twice);
    }

    /// The pair-count formula matches the naive loop.
    #[test]
    fn pairs_formula_matches_loop(n in 0u64..200) {
        let mut count = 0u64;
        for i in 0..n {
            for _ in (i + 1)..n {
                count += 1;
            }
        }
        prop_assert_eq!(pairs_in_cluster(n), count);
    }
}
