//! Parallel scoring determinism: the sharded worker pool must produce
//! bit-identical scores for every thread count.

use nc_core::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use nc_core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_core::plausibility::PlausibilityScorer;
use nc_core::record::DedupPolicy;
use nc_core::scoring::{score_store, ClusterScore, ScoringConfig};
use nc_votergen::config::GeneratorConfig;
use proptest::prelude::*;

/// Generate a registry and score it at a given thread count.
fn scores_at(seed: u64, population: usize, snapshots: usize, threads: usize) -> Vec<ClusterScore> {
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed,
            initial_population: population,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots,
    });
    let plaus = PlausibilityScorer::new();
    let het = HeterogeneityScorer::new(AttributeWeights::uniform(Scope::Person));
    score_store(
        &outcome.store,
        &plaus,
        &het,
        &ScoringConfig::with_threads(threads),
    )
}

/// Assert two score lists are bit-identical (not just approximately
/// equal: the parallel path promises the same arithmetic).
fn assert_bit_identical(seq: &[ClusterScore], par: &[ClusterScore], threads: usize) {
    assert_eq!(seq.len(), par.len(), "cluster count at {threads} threads");
    for (s, p) in seq.iter().zip(par) {
        assert_eq!(s.ncid, p.ncid, "cluster order at {threads} threads");
        assert_eq!(s.records, p.records);
        assert_eq!(
            s.plausibility.to_bits(),
            p.plausibility.to_bits(),
            "plausibility of {} at {threads} threads",
            s.ncid
        );
        assert_eq!(
            s.heterogeneity.to_bits(),
            p.heterogeneity.to_bits(),
            "heterogeneity of {} at {threads} threads",
            s.ncid
        );
    }
}

#[test]
fn fixed_seed_scores_are_thread_count_invariant() {
    let seq = scores_at(77, 120, 4, 1);
    assert!(!seq.is_empty());
    for threads in [2, 8] {
        let par = scores_at(77, 120, 4, threads);
        assert_bit_identical(&seq, &par, threads);
    }
}

proptest! {
    // Generation dominates the cost of each case, so keep the
    // populations small; the cluster shapes still vary widely with the
    // seed (singletons, long histories, polluted records).
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_registries_score_identically_across_thread_counts(
        seed in 0u64..1000,
        population in 40usize..80,
        snapshots in 2usize..5,
    ) {
        let seq = scores_at(seed, population, snapshots, 1);
        prop_assert!(!seq.is_empty());
        for threads in [2usize, 8] {
            let par = scores_at(seed, population, snapshots, threads);
            prop_assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(&par) {
                prop_assert_eq!(&s.ncid, &p.ncid);
                prop_assert_eq!(s.records, p.records);
                prop_assert_eq!(s.plausibility.to_bits(), p.plausibility.to_bits());
                prop_assert_eq!(s.heterogeneity.to_bits(), p.heterogeneity.to_bits());
            }
        }
    }
}
