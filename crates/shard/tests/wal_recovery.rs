//! Crash-recovery integration tests for the shard engine: kill the
//! ingest mid-archive (torn WAL tails, lost manifests, bit rot), reopen
//! the state directory, resume over the same archive, and require the
//! final store to be **byte-identical** to an uninterrupted run — for
//! shard counts 1, 3 and 8, with exact loss reporting along the way.

use std::fs;
use std::path::{Path, PathBuf};

use nc_core::import::ImportStats;
use nc_core::record::DedupPolicy;
use nc_core::tsv::{self, ImportOptions, TsvError};
use nc_docstore::faults::{inject, Fault};
use nc_shard::{ShardEngine, ShardEngineConfig};
use nc_votergen::config::GeneratorConfig;
use nc_votergen::registry::Registry;
use nc_votergen::snapshot::standard_calendar;

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const SNAPSHOTS: usize = 3;

fn tmp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("nc_shard_recovery_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write a small archive of TSV snapshot files.
fn write_archive(dir: &Path, seed: u64, population: usize) -> Vec<String> {
    let mut registry = Registry::new(GeneratorConfig {
        seed,
        initial_population: population,
        ..Default::default()
    });
    standard_calendar()
        .iter()
        .take(SNAPSHOTS)
        .map(|info| {
            let snap = registry.generate_snapshot(info);
            tsv::write_snapshot(dir, &snap).unwrap();
            snap.date.clone()
        })
        .collect()
}

fn config(shards: usize) -> ShardEngineConfig {
    ShardEngineConfig {
        // Tiny segments so rotation happens even in these small runs.
        segment_bytes: 16 << 10,
        ..ShardEngineConfig::new(shards, DedupPolicy::Trimmed, 1)
    }
}

/// Everything observable about an engine's state, byte-exact.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    cluster_ids: Vec<String>,
    rows: Vec<Vec<String>>,
    record_count: u64,
    rows_imported: u64,
    completed: Vec<ImportStats>,
}

fn fingerprint(engine: &ShardEngine) -> Fingerprint {
    let store = engine.store();
    let cluster_ids: Vec<String> = store.cluster_ids().into_iter().map(|(n, _)| n).collect();
    let rows = cluster_ids
        .iter()
        .map(|n| store.cluster_rows(n).iter().map(|r| r.to_tsv()).collect())
        .collect();
    Fingerprint {
        cluster_ids,
        rows,
        record_count: store.record_count(),
        rows_imported: store.rows_imported(),
        completed: engine.completed().to_vec(),
    }
}

/// Reference: one uninterrupted ingest of the whole archive.
fn reference_run(archive: &Path, shards: usize, tag: &str) -> Fingerprint {
    let state = tmp_dir(&format!("ref_{tag}_{shards}"));
    let mut engine = ShardEngine::open(&state, config(shards)).unwrap();
    let outcome = engine
        .ingest_archive(archive, &ImportOptions::strict())
        .unwrap();
    assert_eq!(outcome.stats.len(), SNAPSHOTS);
    assert_eq!(outcome.resumed, 0);
    let print = fingerprint(&engine);
    drop(engine);
    fs::remove_dir_all(state).unwrap();
    print
}

/// Path of the highest-numbered WAL segment of one shard.
fn last_segment(state: &Path, shard: usize) -> PathBuf {
    let dir = state.join(format!("shard-{shard}"));
    let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segs.sort();
    segs.pop().expect("shard has a WAL segment")
}

#[test]
fn reopen_replays_to_the_identical_store() {
    let archive = tmp_dir("archive_reopen");
    write_archive(&archive, 901, 120);
    for shards in SHARD_COUNTS {
        let state = tmp_dir(&format!("state_reopen_{shards}"));
        let mut engine = ShardEngine::open(&state, config(shards)).unwrap();
        engine
            .ingest_archive(&archive, &ImportOptions::strict())
            .unwrap();
        let before = fingerprint(&engine);
        drop(engine);

        // A new process over the same state dir replays the WALs.
        let mut reopened = ShardEngine::open(&state, config(shards)).unwrap();
        assert!(
            reopened.recovery().is_clean(),
            "clean shutdown, clean replay: {:?}",
            reopened.recovery()
        );
        assert_eq!(reopened.recovery().snapshots_applied, SNAPSHOTS * shards);
        assert_eq!(fingerprint(&reopened), before, "shards={shards}");

        // Re-ingesting the same archive is a no-op resume.
        let outcome = reopened
            .ingest_archive(&archive, &ImportOptions::strict())
            .unwrap();
        assert!(outcome.stats.is_empty());
        assert_eq!(outcome.resumed, SNAPSHOTS);
        assert_eq!(fingerprint(&reopened), before);
        fs::remove_dir_all(state).unwrap();
    }
    fs::remove_dir_all(archive).unwrap();
}

#[test]
fn torn_tail_is_dropped_with_exact_byte_accounting_and_resume_matches() {
    let archive = tmp_dir("archive_torn");
    write_archive(&archive, 902, 120);
    for shards in SHARD_COUNTS {
        let reference = reference_run(&archive, shards, "torn");
        let state = tmp_dir(&format!("state_torn_{shards}"));

        // Partial run: only the first two snapshots exist yet.
        let partial = tmp_dir(&format!("partial_torn_{shards}"));
        for path in tsv::archive_files(&archive).unwrap().into_iter().take(2) {
            fs::copy(&path, partial.join(path.file_name().unwrap())).unwrap();
        }
        let mut engine = ShardEngine::open(&state, config(shards)).unwrap();
        engine
            .ingest_archive(&partial, &ImportOptions::strict())
            .unwrap();
        drop(engine);

        // Crash mid-third-snapshot: a torn, unframed partial record at
        // the tail of every shard's log.
        let garbage = b"R\t999999\tTORN-MID-WRITE";
        for shard in 0..shards {
            inject(
                &last_segment(&state, shard),
                &Fault::AppendPartial(garbage.to_vec()),
            )
            .unwrap();
        }

        let mut recovered = ShardEngine::open(&state, config(shards)).unwrap();
        let recovery = recovered.recovery().clone();
        assert_eq!(recovery.torn_tails, shards, "every shard had a tear");
        assert_eq!(
            recovery.bytes_discarded,
            (garbage.len() * shards) as u64,
            "loss accounting is exact to the byte"
        );
        assert_eq!(recovery.rows_discarded, 0, "no parsed rows were lost");
        assert_eq!(recovery.snapshots_applied, 2 * shards);
        assert_eq!(recovered.completed().len(), 2);

        // Resume over the full archive: only the third snapshot runs,
        // and the result is byte-identical to the uninterrupted run.
        let outcome = recovered
            .ingest_archive(&archive, &ImportOptions::strict())
            .unwrap();
        assert_eq!(outcome.resumed, 2);
        assert_eq!(outcome.stats.len(), 1);
        assert_eq!(fingerprint(&recovered), reference, "shards={shards}");

        for dir in [&state, &partial] {
            fs::remove_dir_all(dir).unwrap();
        }
    }
    fs::remove_dir_all(archive).unwrap();
}

#[test]
fn wal_committed_but_unmanifested_snapshot_rolls_back_with_exact_row_counts() {
    let archive = tmp_dir("archive_rollback");
    write_archive(&archive, 903, 120);
    for shards in SHARD_COUNTS {
        let reference = reference_run(&archive, shards, "rollback");
        let state = tmp_dir(&format!("state_rollback_{shards}"));

        let partial = tmp_dir(&format!("partial_rollback_{shards}"));
        for path in tsv::archive_files(&archive).unwrap().into_iter().take(2) {
            fs::copy(&path, partial.join(path.file_name().unwrap())).unwrap();
        }
        let mut engine = ShardEngine::open(&state, config(shards)).unwrap();
        engine
            .ingest_archive(&partial, &ImportOptions::strict())
            .unwrap();
        drop(engine);
        // Keep the two-snapshot manifest, ingest the third snapshot,
        // then restore the old manifest — exactly the state a crash
        // between WAL commit and manifest write leaves behind.
        let manifest_bytes = fs::read(state.join("manifest.tsv")).unwrap();
        let mut engine = ShardEngine::open(&state, config(shards)).unwrap();
        engine
            .ingest_archive(&archive, &ImportOptions::strict())
            .unwrap();
        drop(engine);
        fs::write(state.join("manifest.tsv"), &manifest_bytes).unwrap();

        let third_rows = reference.completed[2].total_rows;
        let mut recovered = ShardEngine::open(&state, config(shards)).unwrap();
        let recovery = recovered.recovery().clone();
        assert_eq!(
            recovery.rows_discarded, third_rows,
            "rollback reports exactly the third snapshot's rows, shards={shards}"
        );
        assert_eq!(recovery.torn_tails, 0, "no physical damage involved");
        assert!(recovery.bytes_discarded > 0);
        assert!(recovery
            .details
            .iter()
            .any(|d| d.contains("never committed to the manifest")));
        assert_eq!(recovered.completed().len(), 2);

        // Resume re-imports the third snapshot; the double-ingest never
        // happened as far as the store can tell.
        let outcome = recovered
            .ingest_archive(&archive, &ImportOptions::strict())
            .unwrap();
        assert_eq!(outcome.resumed, 2);
        assert_eq!(fingerprint(&recovered), reference, "shards={shards}");

        for dir in [&state, &partial] {
            fs::remove_dir_all(dir).unwrap();
        }
    }
    fs::remove_dir_all(archive).unwrap();
}

#[test]
fn mid_log_bit_rot_discards_state_and_a_fresh_run_matches() {
    let archive = tmp_dir("archive_bitrot");
    write_archive(&archive, 904, 120);
    let shards = 3;
    let reference = reference_run(&archive, shards, "bitrot");
    let state = tmp_dir("state_bitrot");

    let mut engine = ShardEngine::open(&state, config(shards)).unwrap();
    engine
        .ingest_archive(&archive, &ImportOptions::strict())
        .unwrap();
    drop(engine);

    // Rot a byte early in shard 0's first segment — *before* the last
    // committed snapshot, so the log can no longer honour the manifest.
    inject(
        &state.join("shard-0").join("wal-000000.log"),
        &Fault::FlipBit { offset: 40, bit: 3 },
    )
    .unwrap();

    let mut recovered = ShardEngine::open(&state, config(shards)).unwrap();
    let reason = recovered
        .discarded()
        .expect("damaged history must be discarded, not partially replayed");
    assert!(reason.contains("shard-0"), "{reason}");
    assert_eq!(recovered.store().cluster_count(), 0, "fresh start");
    assert_eq!(recovered.completed().len(), 0);

    // The discard is total, so a full re-ingest reproduces the
    // reference exactly.
    let outcome = recovered
        .ingest_archive(&archive, &ImportOptions::strict())
        .unwrap();
    assert_eq!(outcome.resumed, 0);
    assert_eq!(outcome.stats.len(), SNAPSHOTS);
    assert_eq!(fingerprint(&recovered), reference);

    // And the repaired state replays cleanly from here on.
    drop(recovered);
    let reopened = ShardEngine::open(&state, config(shards)).unwrap();
    assert!(reopened.recovery().is_clean());
    assert_eq!(fingerprint(&reopened), reference);

    fs::remove_dir_all(state).unwrap();
    fs::remove_dir_all(archive).unwrap();
}

#[test]
fn damaged_manifest_restarts_cleanly() {
    let archive = tmp_dir("archive_badmanifest");
    write_archive(&archive, 905, 100);
    let shards = 3;
    let reference = reference_run(&archive, shards, "badmanifest");
    let state = tmp_dir("state_badmanifest");

    let mut engine = ShardEngine::open(&state, config(shards)).unwrap();
    engine
        .ingest_archive(&archive, &ImportOptions::strict())
        .unwrap();
    drop(engine);
    inject(
        &state.join("manifest.tsv"),
        &Fault::FlipBit { offset: 12, bit: 0 },
    )
    .unwrap();

    let mut recovered = ShardEngine::open(&state, config(shards)).unwrap();
    assert!(recovered.discarded().is_some());
    let outcome = recovered
        .ingest_archive(&archive, &ImportOptions::strict())
        .unwrap();
    assert_eq!(outcome.resumed, 0);
    assert_eq!(fingerprint(&recovered), reference);

    fs::remove_dir_all(state).unwrap();
    fs::remove_dir_all(archive).unwrap();
}

#[test]
fn parameter_drift_is_a_hard_error() {
    let archive = tmp_dir("archive_drift");
    write_archive(&archive, 906, 80);
    let state = tmp_dir("state_drift");
    let mut engine = ShardEngine::open(&state, config(3)).unwrap();
    engine
        .ingest_archive(&archive, &ImportOptions::strict())
        .unwrap();
    drop(engine);

    // Different shard count, policy or version must refuse to resume:
    // the logs' row routing and dedup outcomes depend on all three.
    for bad in [
        config(8),
        ShardEngineConfig {
            segment_bytes: 16 << 10,
            ..ShardEngineConfig::new(3, DedupPolicy::Exact, 1)
        },
        ShardEngineConfig {
            segment_bytes: 16 << 10,
            ..ShardEngineConfig::new(3, DedupPolicy::Trimmed, 2)
        },
    ] {
        match ShardEngine::open(&state, bad) {
            Err(TsvError::Checkpoint { message }) => {
                assert!(message.contains("reopened with"), "{message}")
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
    }
    // The original parameters still open fine.
    let engine = ShardEngine::open(&state, config(3)).unwrap();
    assert!(engine.recovery().is_clean());

    fs::remove_dir_all(state).unwrap();
    fs::remove_dir_all(archive).unwrap();
}
