//! Syscall-level crash sweep over the shard engine's commit sequence.
//!
//! The scenario: a state directory holding two committed snapshots
//! ingests a third. Every durability-critical syscall of that ingest —
//! WAL appends, fsyncs, segment creation, the manifest's tmp + fsync +
//! rename + dir-fsync — goes through a [`FaultVfs`]. The sweep learns
//! the trace length fault-free, then crashes at *every* operation
//! index K and asserts the recovery invariant: reopening with the real
//! filesystem lands bit-exactly on the pre-ingest state or the
//! committed state, never a third one, and resuming over the same
//! archive always converges on the uninterrupted run's fingerprint.
//!
//! The crash sweep runs with parallel fan-out (op interleaving varies,
//! the invariant must hold for every prefix of every interleaving);
//! the pinned-fault tests use one shard, whose inline ingest path
//! numbers syscalls deterministically. Pure TSV on disk — runs for
//! real under the offline `.verify` stub harness.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nc_core::import::ImportStats;
use nc_core::record::DedupPolicy;
use nc_core::tsv::{self, ImportOptions, TsvError};
use nc_shard::{ShardEngine, ShardEngineConfig};
use nc_vfs::fault::{FaultVfs, InjectedFault};
use nc_votergen::config::GeneratorConfig;
use nc_votergen::registry::Registry;
use nc_votergen::snapshot::standard_calendar;

const SNAPSHOTS: usize = 3;

fn tmp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("nc_shard_sweep_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_archive(dir: &Path, seed: u64, population: usize) -> Vec<String> {
    let mut registry = Registry::new(GeneratorConfig {
        seed,
        initial_population: population,
        ..Default::default()
    });
    standard_calendar()
        .iter()
        .take(SNAPSHOTS)
        .map(|info| {
            let snap = registry.generate_snapshot(info);
            tsv::write_snapshot(dir, &snap).unwrap();
            snap.date.clone()
        })
        .collect()
}

fn config(shards: usize) -> ShardEngineConfig {
    ShardEngineConfig {
        // Tiny segments so the sweep also crosses segment rotation.
        segment_bytes: 8 << 10,
        ..ShardEngineConfig::new(shards, DedupPolicy::Trimmed, 1)
    }
}

/// Everything observable about an engine's state, byte-exact.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    cluster_ids: Vec<String>,
    rows: Vec<Vec<String>>,
    record_count: u64,
    rows_imported: u64,
    completed: Vec<ImportStats>,
}

fn fingerprint(engine: &ShardEngine) -> Fingerprint {
    let store = engine.store();
    let cluster_ids: Vec<String> = store.cluster_ids().into_iter().map(|(n, _)| n).collect();
    let rows = cluster_ids
        .iter()
        .map(|n| store.cluster_rows(n).iter().map(|r| r.to_tsv()).collect())
        .collect();
    Fingerprint {
        cluster_ids,
        rows,
        record_count: store.record_count(),
        rows_imported: store.rows_imported(),
        completed: engine.completed().to_vec(),
    }
}

/// Recursively copy a state directory (fresh trial per crash point).
fn copy_dir(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &dst);
        } else {
            fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// The shared scenario: an archive of three snapshots, a base state
/// holding the first two committed, and the pre/post fingerprints.
struct Scenario {
    archive: PathBuf,
    base: PathBuf,
    pre: Fingerprint,
    post: Fingerprint,
    dates: Vec<String>,
    shards: usize,
}

impl Drop for Scenario {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.archive);
        let _ = fs::remove_dir_all(&self.base);
    }
}

fn scenario(tag: &str, seed: u64, shards: usize) -> Scenario {
    let archive = tmp_dir(&format!("{tag}_archive"));
    let dates = write_archive(&archive, seed, 100);

    let partial = tmp_dir(&format!("{tag}_partial"));
    for path in tsv::archive_files(&archive).unwrap().into_iter().take(2) {
        fs::copy(&path, partial.join(path.file_name().unwrap())).unwrap();
    }
    let base = tmp_dir(&format!("{tag}_base"));
    let mut engine = ShardEngine::open(&base, config(shards)).unwrap();
    engine
        .ingest_archive(&partial, &ImportOptions::strict())
        .unwrap();
    let pre = fingerprint(&engine);
    drop(engine);
    fs::remove_dir_all(partial).unwrap();

    let full = tmp_dir(&format!("{tag}_full"));
    let mut engine = ShardEngine::open(&full, config(shards)).unwrap();
    engine
        .ingest_archive(&archive, &ImportOptions::strict())
        .unwrap();
    let post = fingerprint(&engine);
    drop(engine);
    fs::remove_dir_all(full).unwrap();

    Scenario {
        archive,
        base,
        pre,
        post,
        dates,
        shards,
    }
}

/// Fault-free recorder run of the third-snapshot ingest over a copy of
/// the base state. Returns the recorder (trace + op count).
fn record_ingest(s: &Scenario, tag: &str) -> FaultVfs {
    let state = tmp_dir(tag);
    copy_dir(&s.base, &state);
    let recorder = FaultVfs::recorder();
    let mut engine =
        ShardEngine::open_with_vfs(&state, config(s.shards), Arc::new(recorder.clone())).unwrap();
    engine
        .ingest_archive(&s.archive, &ImportOptions::strict())
        .unwrap();
    assert_eq!(fingerprint(&engine), s.post);
    drop(engine);
    fs::remove_dir_all(&state).unwrap();
    recorder
}

#[test]
fn crash_at_every_syscall_recovers_pre_or_post_commit_never_a_third_state() {
    let s = scenario("crash", 911, 3);
    let recorder = record_ingest(&s, "crash_recorder");
    let total = recorder.ops();
    let trace = recorder.trace();
    assert!(
        trace.iter().any(|r| r.op == "rename") && trace.iter().any(|r| r.op == "sync_dir"),
        "the manifest commit must appear in the trace: {trace:?}"
    );

    let (mut landed_pre, mut landed_post) = (0u64, 0u64);
    for k in 0..total {
        let state = tmp_dir("crash_trial");
        copy_dir(&s.base, &state);

        let vfs = FaultVfs::crash_at(k);
        let failed = match ShardEngine::open_with_vfs(&state, config(s.shards), Arc::new(vfs.clone()))
        {
            Ok(mut engine) => engine
                .ingest_archive(&s.archive, &ImportOptions::strict())
                .is_err(),
            Err(_) => true,
        };
        assert!(failed, "crash at {k} of {total} must surface an error");

        // A new process over whatever hit the disk: the recovery must
        // land on exactly the pre- or post-commit state.
        let mut reopened = ShardEngine::open(&state, config(s.shards)).unwrap();
        let print = fingerprint(&reopened);
        if print == s.pre {
            landed_pre += 1;
        } else if print == s.post {
            landed_post += 1;
        } else {
            panic!(
                "crash at {k} recovered to a third state: {} clusters, completed {:?}",
                print.cluster_ids.len(),
                print.completed.iter().map(|c| &c.date).collect::<Vec<_>>()
            );
        }

        // And resuming over the same archive always converges.
        reopened
            .ingest_archive(&s.archive, &ImportOptions::strict())
            .unwrap();
        assert_eq!(fingerprint(&reopened), s.post, "resume after crash at {k}");
        drop(reopened);
        fs::remove_dir_all(&state).unwrap();
    }
    assert!(
        landed_pre > 0 && landed_post > 0,
        "sweep crossed the commit point (pre={landed_pre}, post={landed_post})"
    );
}

#[test]
fn enospc_mid_wal_append_rolls_back_with_loss_accounting_and_resumes() {
    // One shard: the inline ingest path numbers syscalls
    // deterministically, so a pinned fault hits the same WAL write in
    // the recorder run and the trial run.
    let s = scenario("enospc", 912, 1);
    let recorder = record_ingest(&s, "enospc_recorder");
    let wal_write = recorder
        .trace()
        .iter()
        .find(|r| r.op == "write" && r.path.to_string_lossy().contains("wal-"))
        .expect("ingest must write WAL data")
        .index;

    for fault in [InjectedFault::Enospc, InjectedFault::ShortWrite] {
        let state = tmp_dir("enospc_trial");
        copy_dir(&s.base, &state);

        let vfs = FaultVfs::recorder().fail_op(wal_write, fault);
        let mut engine =
            ShardEngine::open_with_vfs(&state, config(s.shards), Arc::new(vfs.clone())).unwrap();
        let err = engine
            .ingest_archive(&s.archive, &ImportOptions::strict())
            .unwrap_err();
        assert!(err.to_string().contains("os error 28"), "{fault:?}: {err}");

        // The engine rolled itself back (the fault schedule is spent,
        // so the recovery reopen inside the rollback succeeded) and
        // filed a typed post-mortem.
        assert!(engine.poisoned().is_none());
        let report = engine.last_failure().expect("rollback must file a report");
        assert_eq!(report.snapshot, s.dates[2], "the third snapshot failed");
        assert!(report.cause.contains("os error 28"), "{}", report.cause);
        assert!(
            report.rows_rolled_back > 0,
            "in-flight rows applied before the fault are accounted: {report:?}"
        );
        assert!(
            report.rows_rolled_back <= s.post.completed[2].total_rows,
            "never more than the failed snapshot's rows: {report:?}"
        );
        if fault == InjectedFault::ShortWrite {
            // Half the buffer landed: a physically torn line plus
            // uncommitted parsed rows, both byte-accounted.
            assert_eq!(report.recovery.torn_tails, 1, "{:?}", report.recovery);
            assert!(report.recovery.bytes_discarded > 0, "{:?}", report.recovery);
            assert!(report.recovery.rows_discarded > 0, "{:?}", report.recovery);
        }
        assert_eq!(fingerprint(&engine), s.pre, "rolled back to the last commit");

        // The salvaged segment keeps serving: the same engine resumes
        // over the same archive and converges on the reference.
        let outcome = engine
            .ingest_archive(&s.archive, &ImportOptions::strict())
            .unwrap();
        assert_eq!(outcome.resumed, 2);
        assert_eq!(outcome.stats.len(), 1);
        assert_eq!(fingerprint(&engine), s.post, "{fault:?}");
        drop(engine);
        fs::remove_dir_all(&state).unwrap();
    }
}

#[test]
fn fsync_and_rename_failures_on_the_manifest_keep_the_old_commit() {
    let s = scenario("manifest", 913, 1);
    let recorder = record_ingest(&s, "manifest_recorder");
    let trace = recorder.trace();
    let manifest_sync = trace
        .iter()
        .find(|r| r.op == "sync_file" && r.path.to_string_lossy().contains("manifest"))
        .expect("manifest save must fsync its tmp")
        .index;
    let manifest_rename = trace
        .iter()
        .find(|r| r.op == "rename")
        .expect("manifest save must rename")
        .index;

    for (index, fault) in [
        (manifest_sync, InjectedFault::SyncFail),
        (manifest_rename, InjectedFault::RenameFail),
    ] {
        let state = tmp_dir("manifest_trial");
        copy_dir(&s.base, &state);
        let vfs = FaultVfs::recorder().fail_op(index, fault);
        let mut engine =
            ShardEngine::open_with_vfs(&state, config(s.shards), Arc::new(vfs.clone())).unwrap();
        engine
            .ingest_archive(&s.archive, &ImportOptions::strict())
            .unwrap_err();

        // The manifest never switched: the rollback lands on the old
        // commit, and the WAL-committed-but-unmanifested third
        // snapshot is discarded with exact row accounting.
        let report = engine.last_failure().expect("rollback must file a report");
        assert_eq!(
            report.recovery.rows_discarded, s.post.completed[2].total_rows,
            "{fault:?}: exactly the third snapshot's rows roll back"
        );
        assert_eq!(fingerprint(&engine), s.pre, "{fault:?}");

        // Resume converges.
        engine
            .ingest_archive(&s.archive, &ImportOptions::strict())
            .unwrap();
        assert_eq!(fingerprint(&engine), s.post, "{fault:?}");
        drop(engine);
        fs::remove_dir_all(&state).unwrap();
    }
}

#[test]
fn reopen_failure_poisons_the_engine_deterministically() {
    let s = scenario("poison", 914, 1);

    // Learn how many syscalls the open itself issues, then crash just
    // past them: the engine opens, the ingest crashes, and the
    // rollback's recovery reopen fails too — the engine must poison
    // itself instead of pretending to have recovered.
    let probe_state = tmp_dir("poison_probe");
    copy_dir(&s.base, &probe_state);
    let probe = FaultVfs::recorder();
    let engine =
        ShardEngine::open_with_vfs(&probe_state, config(s.shards), Arc::new(probe.clone()))
            .unwrap();
    let open_ops = probe.ops();
    drop(engine);
    fs::remove_dir_all(&probe_state).unwrap();

    let state = tmp_dir("poison_trial");
    copy_dir(&s.base, &state);
    let vfs = FaultVfs::crash_at(open_ops + 1);
    let mut engine =
        ShardEngine::open_with_vfs(&state, config(s.shards), Arc::new(vfs.clone())).unwrap();
    engine
        .ingest_archive(&s.archive, &ImportOptions::strict())
        .unwrap_err();
    let reason = engine
        .poisoned()
        .expect("reopen under a crashed vfs must poison");
    assert!(reason.contains("recovery"), "{reason}");
    assert!(engine.last_failure().is_none(), "no recovered state to report");

    // Every further ingest refuses with a typed error, not silence.
    match engine.ingest_archive(&s.archive, &ImportOptions::strict()) {
        Err(TsvError::Checkpoint { message }) => {
            assert!(message.contains("poisoned"), "{message}")
        }
        other => panic!("poisoned engine must refuse, got {other:?}"),
    }
    drop(engine);

    // The on-disk state is still recoverable by a healthy process.
    let recovered = ShardEngine::open(&state, config(s.shards)).unwrap();
    assert_eq!(fingerprint(&recovered), s.pre);
    drop(recovered);
    fs::remove_dir_all(&state).unwrap();
}
